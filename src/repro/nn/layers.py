"""Basic layers: linear maps, layer norm, dropout and feed-forward blocks.

These are the building blocks of both the DESAlign encoder (per-modality FC
layers, Eq. 8; transformer feed-forward, Eq. 12) and the baselines.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, dropout as dropout_fn, layer_norm as layer_norm_fn
from . import init
from .module import Module, Parameter

__all__ = ["Linear", "DiagonalLinear", "LayerNorm", "Dropout", "FeedForward", "Sequential", "ReLU"]


class Linear(Module):
    """Fully connected layer ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator,
                 bias: bool = True):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.glorot_uniform(rng, in_features, out_features))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class DiagonalLinear(Module):
    """Diagonal weight matrix transform used by the GAT structure encoder.

    The paper follows Yang et al. (2015) in restricting the structural
    linear transform ``W_g`` to a diagonal matrix (Sec. IV-A(1)), which
    keeps the structural channel from over-parameterising and over-smoothing.
    """

    def __init__(self, features: int):
        super().__init__()
        self.features = features
        self.weight = Parameter(init.ones((features,)))

    def forward(self, x: Tensor) -> Tensor:
        return x * self.weight


class LayerNorm(Module):
    """Layer normalisation with learned gain and bias (used in CAW, Eq. 11-12)."""

    def __init__(self, features: int, eps: float = 1e-5):
        super().__init__()
        self.eps = eps
        self.gain = Parameter(init.ones((features,)))
        self.bias = Parameter(init.zeros((features,)))

    def forward(self, x: Tensor) -> Tensor:
        return layer_norm_fn(x, self.gain, self.bias, eps=self.eps)


class Dropout(Module):
    """Inverted dropout driven by an explicit RNG for reproducibility."""

    def __init__(self, rate: float, rng: np.random.Generator):
        super().__init__()
        self.rate = rate
        self._rng = rng

    def forward(self, x: Tensor) -> Tensor:
        return dropout_fn(x, self.rate, self.training, self._rng)


class ReLU(Module):
    """ReLU activation as a module for use inside :class:`Sequential`."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._layers: list[Module] = []
        for index, module in enumerate(modules):
            self._layers.append(module)
            self._modules[str(index)] = module

    def forward(self, x: Tensor) -> Tensor:
        for layer in self._layers:
            x = layer(x)
        return x

    def __len__(self) -> int:
        return len(self._layers)

    def __getitem__(self, index: int) -> Module:
        return self._layers[index]


class FeedForward(Module):
    """Transformer feed-forward block with residual connection and layer norm.

    Implements Eq. 12 of the paper:
    ``LN(ReLU(x W1 + b1) W2 + b2 + x)``.
    """

    def __init__(self, features: int, hidden: int, rng: np.random.Generator,
                 dropout_rate: float = 0.0):
        super().__init__()
        self.inner = Linear(features, hidden, rng)
        self.outer = Linear(hidden, features, rng)
        self.norm = LayerNorm(features)
        self.dropout = Dropout(dropout_rate, rng)

    def forward(self, x: Tensor) -> Tensor:
        hidden = self.inner(x).relu()
        hidden = self.dropout(hidden)
        return self.norm(self.outer(hidden) + x)
