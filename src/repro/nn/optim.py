"""Optimisers, learning-rate schedules and training utilities.

The paper trains with AdamW (beta1=0.9, beta2=0.999), a cosine warm-up
schedule over the first 15% of steps, gradient accumulation and early
stopping (Sec. V-A(4)).  All of those pieces live here so that DESAlign and
the baselines share identical optimisation machinery.
"""

from __future__ import annotations

import numpy as np

from .module import Parameter

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "CosineWarmupSchedule",
    "GradientClipper",
    "EarlyStopping",
]


class Optimizer:
    """Base optimiser over a list of parameters."""

    def __init__(self, parameters: list[Parameter], lr: float):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.parameters = list(parameters)
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: list[Parameter], lr: float, momentum: float = 0.0):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            velocity *= self.momentum
            velocity -= self.lr * param.grad
            param.data = param.data + velocity


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2015)."""

    def __init__(self, parameters: list[Parameter], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def _update(self, param: Parameter, m: np.ndarray, v: np.ndarray,
                grad: np.ndarray) -> np.ndarray:
        m *= self.beta1
        m += (1 - self.beta1) * grad
        v *= self.beta2
        v += (1 - self.beta2) * grad ** 2
        m_hat = m / (1 - self.beta1 ** self._step)
        v_hat = v / (1 - self.beta2 ** self._step)
        return self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def step(self) -> None:
        self._step += 1
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            param.data = param.data - self._update(param, m, v, grad)


class AdamW(Adam):
    """AdamW: Adam with decoupled weight decay (the paper's optimiser)."""

    def __init__(self, parameters: list[Parameter], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 1e-2):
        super().__init__(parameters, lr=lr, betas=betas, eps=eps, weight_decay=0.0)
        self.decoupled_weight_decay = weight_decay

    def step(self) -> None:
        self._step += 1
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            update = self._update(param, m, v, param.grad)
            param.data = param.data - update - self.lr * self.decoupled_weight_decay * param.data


class CosineWarmupSchedule:
    """Cosine decay with linear warm-up over the first ``warmup_fraction`` of steps."""

    def __init__(self, optimizer: Optimizer, total_steps: int,
                 warmup_fraction: float = 0.15, min_lr_fraction: float = 0.01):
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.total_steps = total_steps
        self.warmup_steps = max(1, int(round(total_steps * warmup_fraction)))
        self.min_lr = self.base_lr * min_lr_fraction
        self._step = 0

    def current_lr(self) -> float:
        if self._step < self.warmup_steps:
            return self.base_lr * (self._step + 1) / self.warmup_steps
        progress = (self._step - self.warmup_steps) / max(1, self.total_steps - self.warmup_steps)
        progress = min(1.0, progress)
        cosine = 0.5 * (1.0 + np.cos(np.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cosine

    def step(self) -> float:
        """Advance the schedule and install the new learning rate."""
        lr = self.current_lr()
        self.optimizer.lr = lr
        self._step += 1
        return lr


class GradientClipper:
    """Clip the global gradient norm of a parameter list."""

    def __init__(self, max_norm: float):
        if max_norm <= 0:
            raise ValueError("max_norm must be positive")
        self.max_norm = max_norm

    def clip(self, parameters: list[Parameter]) -> float:
        """Scale gradients in place; returns the pre-clip global norm."""
        total = 0.0
        for param in parameters:
            if param.grad is not None:
                total += float(np.sum(param.grad ** 2))
        norm = float(np.sqrt(total))
        if norm > self.max_norm and norm > 0:
            scale = self.max_norm / norm
            for param in parameters:
                if param.grad is not None:
                    param.grad = param.grad * scale
        return norm


class EarlyStopping:
    """Stop training when a monitored metric has not improved for ``patience`` checks."""

    def __init__(self, patience: int = 10, min_delta: float = 0.0, mode: str = "max"):
        if mode not in {"max", "min"}:
            raise ValueError("mode must be 'max' or 'min'")
        self.patience = patience
        self.min_delta = min_delta
        self.mode = mode
        self.best: float | None = None
        self.counter = 0
        self.should_stop = False

    def update(self, value: float) -> bool:
        """Record a metric value; returns True when this is a new best."""
        improved = (
            self.best is None
            or (self.mode == "max" and value > self.best + self.min_delta)
            or (self.mode == "min" and value < self.best - self.min_delta)
        )
        if improved:
            self.best = value
            self.counter = 0
        else:
            self.counter += 1
            if self.counter >= self.patience:
                self.should_stop = True
        return improved
