"""Weight-initialisation schemes.

The paper's encoder uses Glorot (Xavier) initialisation (Sec. III-B cites
Glorot & Bengio 2010); the analysis of Proposition 2 depends on the singular
values of the weight matrices, so initialisers are exposed explicitly and
are all driven by an explicit :class:`numpy.random.Generator` for
reproducibility.
"""

from __future__ import annotations

import numpy as np

__all__ = ["glorot_uniform", "glorot_normal", "kaiming_uniform", "normal", "zeros", "ones"]


def glorot_uniform(rng: np.random.Generator, fan_in: int, fan_out: int,
                   shape: tuple[int, ...] | None = None) -> np.ndarray:
    """Glorot/Xavier uniform initialisation ``U(-a, a)`` with ``a = sqrt(6/(fan_in+fan_out))``."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    shape = shape if shape is not None else (fan_in, fan_out)
    return rng.uniform(-limit, limit, size=shape)


def glorot_normal(rng: np.random.Generator, fan_in: int, fan_out: int,
                  shape: tuple[int, ...] | None = None) -> np.ndarray:
    """Glorot/Xavier normal initialisation with std ``sqrt(2/(fan_in+fan_out))``."""
    std = np.sqrt(2.0 / (fan_in + fan_out))
    shape = shape if shape is not None else (fan_in, fan_out)
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(rng: np.random.Generator, fan_in: int, fan_out: int,
                    shape: tuple[int, ...] | None = None) -> np.ndarray:
    """He/Kaiming uniform initialisation suited to ReLU activations."""
    limit = np.sqrt(6.0 / fan_in)
    shape = shape if shape is not None else (fan_in, fan_out)
    return rng.uniform(-limit, limit, size=shape)


def normal(rng: np.random.Generator, shape: tuple[int, ...], std: float = 0.02) -> np.ndarray:
    """Plain Gaussian initialisation used for embeddings."""
    return rng.normal(0.0, std, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    return np.ones(shape)
