"""Graph Attention Network encoder for the structural modality.

DESAlign (Sec. IV-A(1)) encodes the graph structure of each MMKG with a GAT
(Velickovic et al., 2018) of two layers and two attention heads, combined
with a diagonal linear transform.  Two numerically equivalent formulations
are provided and selected by the adjacency type:

* **dense** (``np.ndarray``): attention logits are computed for every pair
  and masked with the adjacency matrix — simple, but ``O(n²)`` in time and
  memory, viable only for small graphs;
* **edge-list** (scipy sparse): per-edge logits with a segment softmax over
  each node's neighbourhood and a scatter-add aggregation, all expressed
  through the sparse autograd primitives — ``O(|E| d)`` and the form used
  by the ``backend="sparse"`` pipeline.

The masked-dense softmax and the segment softmax agree exactly (masked
entries underflow to zero), which the equivalence tests assert on both the
forward values and the parameter gradients.

A third, *bipartite* formulation serves mini-batch training: passing a
:class:`~repro.kg.sampling.SubgraphView` (sampled over an
``attention_pattern``) runs each layer on its renumbered local edge list,
attending from a shrinking destination set over its sampled neighbourhood.
With full-neighbourhood fanout it reproduces the edge-list forward on the
seed rows (every segment reduction in identical order; the dense weight
products match to the last ulp).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..autograd import Tensor, softmax, segment_softmax, segment_sum
from ..kg.sampling import SubgraphLayer, SubgraphView
from ..kg.sparse import edge_index
from . import init
from .module import Module, ModuleList, Parameter
from .layers import DiagonalLinear

__all__ = ["GATLayer", "GAT"]

_MASK_VALUE = -1e9


class GATLayer(Module):
    """Single multi-head graph attention layer (dense or edge-list).

    Parameters
    ----------
    in_features, out_features:
        Input/output dimensionality.  ``out_features`` must be divisible by
        ``num_heads`` because head outputs are concatenated.
    num_heads:
        Number of attention heads (the paper uses two).
    """

    def __init__(self, in_features: int, out_features: int, num_heads: int,
                 rng: np.random.Generator, negative_slope: float = 0.2):
        super().__init__()
        if out_features % num_heads != 0:
            raise ValueError("out_features must be divisible by num_heads")
        self.num_heads = num_heads
        self.head_dim = out_features // num_heads
        self.negative_slope = negative_slope
        self.weights = ModuleList()
        self._attn_src: list[Parameter] = []
        self._attn_dst: list[Parameter] = []
        for head in range(num_heads):
            weight = Parameter(init.glorot_uniform(rng, in_features, self.head_dim))
            attn_src = Parameter(init.glorot_uniform(rng, self.head_dim, 1))
            attn_dst = Parameter(init.glorot_uniform(rng, self.head_dim, 1))
            self._parameters[f"weight_{head}"] = weight
            self._parameters[f"attn_src_{head}"] = attn_src
            self._parameters[f"attn_dst_{head}"] = attn_dst
            self._attn_src.append(attn_src)
            self._attn_dst.append(attn_dst)

    def _head_weight(self, head: int) -> Parameter:
        return self._parameters[f"weight_{head}"]

    def forward(self, features: Tensor, adjacency) -> Tensor:
        """Run attention over ``adjacency`` (self-loops are added).

        A scipy sparse adjacency selects the edge-list formulation; a dense
        array keeps the original masked-dense one; a
        :class:`SubgraphLayer` runs the bipartite sampled formulation
        (``features`` covering the layer's input nodes, the result its
        output nodes).
        """
        if isinstance(adjacency, SubgraphLayer):
            return self._forward_bipartite(features, adjacency)
        if sp.issparse(adjacency):
            return self._forward_edges(features, adjacency)
        return self._forward_dense(features, adjacency)

    def _forward_dense(self, features: Tensor, adjacency: np.ndarray) -> Tensor:
        mask = (np.asarray(adjacency) > 0) | np.eye(adjacency.shape[0], dtype=bool)
        bias = np.where(mask, 0.0, _MASK_VALUE)
        outputs = []
        for head in range(self.num_heads):
            transformed = features @ self._head_weight(head)
            logits_src = transformed @ self._attn_src[head]          # (N, 1)
            logits_dst = transformed @ self._attn_dst[head]          # (N, 1)
            logits = (logits_src + logits_dst.T).leaky_relu(self.negative_slope)
            attention = softmax(logits + Tensor(bias), axis=-1)
            outputs.append(attention @ transformed)
        return Tensor.concat(outputs, axis=-1)

    def _forward_edges(self, features: Tensor, adjacency) -> Tensor:
        num_nodes = adjacency.shape[0]
        rows, cols = edge_index(adjacency, add_self_loops=True)
        outputs = []
        for head in range(self.num_heads):
            transformed = features @ self._head_weight(head)
            logits_src = transformed @ self._attn_src[head]          # (N, 1)
            logits_dst = transformed @ self._attn_dst[head]          # (N, 1)
            scores = (logits_src.index_select(rows)
                      + logits_dst.index_select(cols)).leaky_relu(self.negative_slope)
            attention = segment_softmax(scores, rows, num_nodes)     # (E, 1)
            messages = transformed.index_select(cols) * attention
            outputs.append(segment_sum(messages, rows, num_nodes))
        return Tensor.concat(outputs, axis=-1)

    def _forward_bipartite(self, features: Tensor, layer: SubgraphLayer) -> Tensor:
        """Sampled attention: input-node features in, output-node rows out.

        Identical arithmetic to :meth:`_forward_edges` with the destination
        logits gathered through ``dst_in_src`` (every output node is part of
        the input set), so with full-neighbourhood edges every segment
        reduction matches the full-graph edge-list forward in value and
        order.
        """
        if features.shape[0] != layer.num_src:
            raise ValueError("features must have one row per subgraph input node")
        dst_rows = layer.dst_in_src[layer.edge_dst]
        outputs = []
        for head in range(self.num_heads):
            transformed = features @ self._head_weight(head)
            logits_src = transformed @ self._attn_src[head]          # (num_src, 1)
            logits_dst = transformed @ self._attn_dst[head]          # (num_src, 1)
            scores = (logits_src.index_select(dst_rows)
                      + logits_dst.index_select(layer.edge_src)).leaky_relu(self.negative_slope)
            attention = segment_softmax(scores, layer.edge_dst, layer.num_dst)
            messages = transformed.index_select(layer.edge_src) * attention
            outputs.append(segment_sum(messages, layer.edge_dst, layer.num_dst))
        return Tensor.concat(outputs, axis=-1)


class GAT(Module):
    """Stack of :class:`GATLayer` with ELU-style nonlinearities between layers.

    A diagonal linear transform (Yang et al., 2015) is applied to the input
    features before the attention stack, matching Eq. 7 of the paper.
    """

    def __init__(self, features: int, num_layers: int, num_heads: int,
                 rng: np.random.Generator):
        super().__init__()
        self.diagonal = DiagonalLinear(features)
        self.layers = ModuleList([
            GATLayer(features, features, num_heads, rng) for _ in range(num_layers)
        ])

    def forward(self, features: Tensor, adjacency) -> Tensor:
        """Run the stack over a full adjacency or a :class:`SubgraphView`.

        With a view (sampled over an ``attention_pattern`` so self-loops are
        edges), ``features`` must cover ``view.input_nodes`` and the result
        holds one row per ``view.seed_nodes``.
        """
        if isinstance(adjacency, SubgraphView):
            if adjacency.num_layers != len(self.layers):
                raise ValueError(
                    f"subgraph view has {adjacency.num_layers} layers but the "
                    f"GAT has {len(self.layers)}")
            operators: list = list(adjacency.layers)
        else:
            operators = [adjacency] * len(self.layers)
        hidden = self.diagonal(features)
        for index, (layer, operator) in enumerate(zip(self.layers, operators)):
            hidden = layer(hidden, operator)
            if index < len(self.layers) - 1:
                hidden = hidden.relu()
        return hidden
