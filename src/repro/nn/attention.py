"""Cross-modal multi-head attention (the CAW block of DESAlign).

Implements Eq. 9-13 of the paper: for each entity the embeddings of the
modalities (graph structure, relation, text attribute, vision) attend to
each other through multi-head attention with modality-shared projections;
the per-entity *modality confidences* ``w_m`` (Eq. 13) are derived from the
aggregated attention mass each modality receives and later weight both the
joint embedding and the intra-modal alignment losses.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, softmax
from . import init
from .module import Module, Parameter
from .layers import LayerNorm, FeedForward

__all__ = ["MultiHeadCrossModalAttention", "CrossModalAttentionBlock"]


class MultiHeadCrossModalAttention(Module):
    """Multi-head attention across the modality axis of ``(N, M, d)`` inputs."""

    def __init__(self, features: int, num_heads: int, rng: np.random.Generator):
        super().__init__()
        if features % num_heads != 0:
            raise ValueError("features must be divisible by num_heads")
        self.features = features
        self.num_heads = num_heads
        self.head_dim = features // num_heads
        for head in range(num_heads):
            self._parameters[f"query_{head}"] = Parameter(
                init.glorot_uniform(rng, features, self.head_dim))
            self._parameters[f"key_{head}"] = Parameter(
                init.glorot_uniform(rng, features, self.head_dim))
            self._parameters[f"value_{head}"] = Parameter(
                init.glorot_uniform(rng, features, self.head_dim))
        self.output = Parameter(init.glorot_uniform(rng, features, features))

    def forward(self, modal_stack: Tensor) -> tuple[Tensor, Tensor]:
        """Attend across modalities.

        Parameters
        ----------
        modal_stack:
            Tensor of shape ``(num_entities, num_modalities, features)``.

        Returns
        -------
        attended:
            Tensor of the same shape as the input (Eq. 9).
        confidences:
            Per-entity modality confidences of shape
            ``(num_entities, num_modalities)`` (Eq. 13).
        """
        num_entities, num_modalities, _ = modal_stack.shape
        scale = 1.0 / np.sqrt(self.head_dim)
        head_outputs = []
        attention_sum: Tensor | None = None
        for head in range(self.num_heads):
            query = modal_stack @ self._parameters[f"query_{head}"]
            key = modal_stack @ self._parameters[f"key_{head}"]
            value = modal_stack @ self._parameters[f"value_{head}"]
            scores = (query @ key.transpose((0, 2, 1))) * scale
            attention = softmax(scores, axis=-1)              # (N, M, M)
            head_outputs.append(attention @ value)
            incoming = attention.sum(axis=1)                  # mass received by modality j
            attention_sum = incoming if attention_sum is None else attention_sum + incoming
        attended = Tensor.concat(head_outputs, axis=-1) @ self.output
        # Eq. 13: softmax over modalities of the normalised aggregate attention.
        normaliser = 1.0 / np.sqrt(num_modalities * self.num_heads)
        confidences = softmax(attention_sum * normaliser, axis=-1)
        return attended, confidences


class CrossModalAttentionBlock(Module):
    """Full CAW sub-layer: attention + residual LayerNorm + feed-forward (Eq. 9-12)."""

    def __init__(self, features: int, num_heads: int, hidden: int,
                 rng: np.random.Generator, dropout_rate: float = 0.0):
        super().__init__()
        self.attention = MultiHeadCrossModalAttention(features, num_heads, rng)
        self.norm = LayerNorm(features)
        self.feed_forward = FeedForward(features, hidden, rng, dropout_rate=dropout_rate)

    def forward(self, modal_stack: Tensor) -> tuple[Tensor, Tensor]:
        attended, confidences = self.attention(modal_stack)
        normalised = self.norm(attended + modal_stack)        # Eq. 11
        fused = self.feed_forward(normalised)                 # Eq. 12
        return fused, confidences
