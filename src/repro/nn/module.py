"""Module and parameter abstractions for the numpy neural-network library.

Mirrors the familiar ``torch.nn.Module`` contract at the scale needed by
this reproduction: parameter registration through attribute assignment,
recursive parameter collection, train/eval mode switching and simple state
dict serialisation for checkpointing trained aligners.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..autograd import Tensor

__all__ = ["Parameter", "Module", "ModuleList", "ModuleDict"]


class Parameter(Tensor):
    """A tensor that is registered as a trainable parameter of a module."""

    def __init__(self, data, name: str | None = None):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for every layer and model in the reproduction."""

    def __init__(self) -> None:
        self._parameters: dict[str, Parameter] = {}
        self._modules: dict[str, "Module"] = {}
        self.training = True

    # ------------------------------------------------------------------
    # Registration via attribute assignment
    # ------------------------------------------------------------------
    def __setattr__(self, key: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[key] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[key] = value
        object.__setattr__(self, key, value)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def parameters(self) -> list[Parameter]:
        """Return all trainable parameters of this module and its children."""
        return [param for _, param in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield f"{prefix}{name}", param
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def num_parameters(self) -> int:
        """Total number of scalar trainable parameters."""
        return sum(param.size for param in self.parameters())

    # ------------------------------------------------------------------
    # Mode switching and gradient management
    # ------------------------------------------------------------------
    def train(self) -> "Module":
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        for module in self.modules():
            module.training = False
        return self

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter keyed by its dotted name."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter values previously produced by :meth:`state_dict`."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state dict mismatch: missing={sorted(missing)}, "
                           f"unexpected={sorted(unexpected)}")
        for name, values in state.items():
            if own[name].data.shape != values.shape:
                raise ValueError(f"shape mismatch for parameter {name!r}: "
                                 f"{own[name].data.shape} vs {values.shape}")
            own[name].data = np.asarray(values, dtype=np.float64).copy()

    # ------------------------------------------------------------------
    # Calling
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class ModuleList(Module):
    """An indexable container of sub-modules."""

    def __init__(self, modules: list[Module] | None = None):
        super().__init__()
        self._items: list[Module] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> None:
        index = len(self._items)
        self._items.append(module)
        self._modules[str(index)] = module

    def __getitem__(self, index: int) -> Module:
        return self._items[index]

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self):
        return iter(self._items)

    def forward(self, *args, **kwargs):  # pragma: no cover - containers are not called
        raise RuntimeError("ModuleList is a container and cannot be called")


class ModuleDict(Module):
    """A string-keyed container of sub-modules (one encoder per modality)."""

    def __init__(self, modules: dict[str, Module] | None = None):
        super().__init__()
        self._items: dict[str, Module] = {}
        for key, module in (modules or {}).items():
            self[key] = module

    def __setitem__(self, key: str, module: Module) -> None:
        self._items[key] = module
        self._modules[key] = module

    def __getitem__(self, key: str) -> Module:
        return self._items[key]

    def __contains__(self, key: str) -> bool:
        return key in self._items

    def keys(self):
        return self._items.keys()

    def items(self):
        return self._items.items()

    def forward(self, *args, **kwargs):  # pragma: no cover - containers are not called
        raise RuntimeError("ModuleDict is a container and cannot be called")
