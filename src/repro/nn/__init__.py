"""Neural-network layers, initialisers and optimisers on the autograd substrate."""

from .module import Module, ModuleList, ModuleDict, Parameter
from .layers import (
    Linear,
    DiagonalLinear,
    LayerNorm,
    Dropout,
    ReLU,
    Sequential,
    FeedForward,
)
from .gat import GAT, GATLayer
from .gcn import GCN, GCNLayer
from .attention import MultiHeadCrossModalAttention, CrossModalAttentionBlock
from .optim import (
    Optimizer,
    SGD,
    Adam,
    AdamW,
    CosineWarmupSchedule,
    GradientClipper,
    EarlyStopping,
)
from . import init

__all__ = [
    "Module",
    "ModuleList",
    "ModuleDict",
    "Parameter",
    "Linear",
    "DiagonalLinear",
    "LayerNorm",
    "Dropout",
    "ReLU",
    "Sequential",
    "FeedForward",
    "GAT",
    "GATLayer",
    "GCN",
    "GCNLayer",
    "MultiHeadCrossModalAttention",
    "CrossModalAttentionBlock",
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "CosineWarmupSchedule",
    "GradientClipper",
    "EarlyStopping",
    "init",
]
