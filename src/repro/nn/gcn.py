"""Graph Convolutional Network layers (Kipf & Welling, 2017).

Used by the structure channels of several baselines (GCN-Align, EVA):
``H' = σ(Ã H W)`` over the symmetrically-normalised adjacency with
self-loops.  The propagation step goes through the :func:`spmm` autograd
primitive, so ``Ã`` may be a dense array or a CSR matrix — the sparse form
runs in ``O(|E| d)`` and is what the ``backend="sparse"`` pipeline feeds in.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, spmm
from . import init
from .module import Module, ModuleList, Parameter

__all__ = ["GCNLayer", "GCN"]


class GCNLayer(Module):
    """Single graph convolution ``Ã X W + b`` (dense or sparse ``Ã``)."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator,
                 bias: bool = True):
        super().__init__()
        self.weight = Parameter(init.glorot_uniform(rng, in_features, out_features))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, features: Tensor, normalized_adjacency) -> Tensor:
        propagated = spmm(normalized_adjacency, features)
        out = propagated @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class GCN(Module):
    """Stack of GCN layers with ReLU between layers (not after the last)."""

    def __init__(self, features: int, num_layers: int, rng: np.random.Generator):
        super().__init__()
        self.layers = ModuleList([
            GCNLayer(features, features, rng) for _ in range(num_layers)
        ])

    def forward(self, features: Tensor, normalized_adjacency) -> Tensor:
        hidden = features
        for index, layer in enumerate(self.layers):
            hidden = layer(hidden, normalized_adjacency)
            if index < len(self.layers) - 1:
                hidden = hidden.relu()
        return hidden
