"""Graph Convolutional Network layers (Kipf & Welling, 2017).

Used by the structure channels of several baselines (GCN-Align, EVA):
``H' = σ(Ã H W)`` over the symmetrically-normalised adjacency with
self-loops.  The propagation step goes through the :func:`spmm` autograd
primitive, so ``Ã`` may be a dense array or a CSR matrix — the sparse form
runs in ``O(|E| d)`` and is what the ``backend="sparse"`` pipeline feeds in.

A :class:`~repro.kg.sampling.SubgraphView` may be passed in place of the
adjacency for mini-batch training: each layer then multiplies by its
renumbered ``(num_dst, num_src)`` CSR block, shrinking the node set layer
by layer until only the seed rows remain.  With full-neighbourhood fanout
the blocks carry the full rows in the full per-row order, so the subgraph
forward reproduces the full-graph one on the seed rows (exactly, up to
BLAS shape effects in the dense weight products).
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, spmm
from ..kg.sampling import SubgraphView
from . import init
from .module import Module, ModuleList, Parameter

__all__ = ["GCNLayer", "GCN"]


class GCNLayer(Module):
    """Single graph convolution ``Ã X W + b`` (dense or sparse ``Ã``)."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator,
                 bias: bool = True):
        super().__init__()
        self.weight = Parameter(init.glorot_uniform(rng, in_features, out_features))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, features: Tensor, normalized_adjacency) -> Tensor:
        propagated = spmm(normalized_adjacency, features)
        out = propagated @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class GCN(Module):
    """Stack of GCN layers with ReLU between layers (not after the last)."""

    def __init__(self, features: int, num_layers: int, rng: np.random.Generator):
        super().__init__()
        self.layers = ModuleList([
            GCNLayer(features, features, rng) for _ in range(num_layers)
        ])

    def forward(self, features: Tensor, normalized_adjacency) -> Tensor:
        """Run the stack over a full graph matrix or a :class:`SubgraphView`.

        With a view, ``features`` must cover ``view.input_nodes`` (one row
        per input node, in that order) and the result holds one row per
        ``view.seed_nodes``.
        """
        if isinstance(normalized_adjacency, SubgraphView):
            view = normalized_adjacency
            if view.num_layers != len(self.layers):
                raise ValueError(
                    f"subgraph view has {view.num_layers} layers but the GCN "
                    f"has {len(self.layers)}")
            if features.shape[0] != view.num_input:
                raise ValueError("features must have one row per subgraph input node")
            operators = [layer.csr_block() for layer in view.layers]
        else:
            operators = [normalized_adjacency] * len(self.layers)
        hidden = features
        for index, (layer, operator) in enumerate(zip(self.layers, operators)):
            hidden = layer(hidden, operator)
            if index < len(self.layers) - 1:
                hidden = hidden.relu()
        return hidden
