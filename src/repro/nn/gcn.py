"""Graph Convolutional Network layers (Kipf & Welling, 2017).

Used by the structure channels of several baselines (GCN-Align, EVA): a
dense formulation ``H' = σ(Ã H W)`` over the symmetrically-normalised
adjacency with self-loops.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor
from . import init
from .module import Module, ModuleList, Parameter

__all__ = ["GCNLayer", "GCN"]


class GCNLayer(Module):
    """Single dense graph convolution ``Ã X W + b``."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator,
                 bias: bool = True):
        super().__init__()
        self.weight = Parameter(init.glorot_uniform(rng, in_features, out_features))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, features: Tensor, normalized_adjacency: np.ndarray) -> Tensor:
        propagated = Tensor(np.asarray(normalized_adjacency, dtype=np.float64)) @ features
        out = propagated @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class GCN(Module):
    """Stack of GCN layers with ReLU between layers (not after the last)."""

    def __init__(self, features: int, num_layers: int, rng: np.random.Generator):
        super().__init__()
        self.layers = ModuleList([
            GCNLayer(features, features, rng) for _ in range(num_layers)
        ])

    def forward(self, features: Tensor, normalized_adjacency: np.ndarray) -> Tensor:
        hidden = features
        for index, layer in enumerate(self.layers):
            hidden = layer(hidden, normalized_adjacency)
            if index < len(self.layers) - 1:
                hidden = hidden.relu()
        return hidden
