"""Figure 3 (left) — ablation study of DESAlign.

The paper ablates (a) each input modality, (b) each term of the MMSL
objective of Eq. 15, and (c) Semantic Propagation, on DBP15K FR-EN, and
reports H@1 / MRR of every stripped-down variant.  Each variant here maps
to a :class:`DESAlignConfig` override so the ablation exercises exactly the
same code paths as the full model.

Expected shape: the full model is best; removing any modality hurts (text
attributes the most); removing the layer-(k) losses hurts more than the
layer-(0)/(k-1) bound terms; removing Semantic Propagation (``w/o PP``)
costs roughly as much as removing an entire modality.
"""

from __future__ import annotations

from ..core.config import DESAlignConfig
from .reporting import ExperimentResult, format_metrics
from .runner import ExperimentScale, QUICK_SCALE, build_task, run_cell

__all__ = ["run_fig3_ablation", "ablation_variants"]

_ALL_MODALITIES = ("graph", "relation", "attribute", "vision")


def _without(modality: str) -> tuple[str, ...]:
    return tuple(m for m in _ALL_MODALITIES if m != modality)


def ablation_variants(hidden_dim: int = 32, seed: int = 0) -> dict[str, DESAlignConfig]:
    """Named DESAlign variants matching the bars of Fig. 3 (left)."""
    base = DESAlignConfig(hidden_dim=hidden_dim, seed=seed)
    return {
        "full": base,
        "w/o image": base.with_overrides(modalities=_without("vision")),
        "w/o attribute": base.with_overrides(modalities=_without("attribute")),
        "w/o relation": base.with_overrides(modalities=_without("relation")),
        "w/o graph": base.with_overrides(modalities=_without("graph")),
        "w/o L_task(0)": base.with_overrides(use_initial_task_loss=False),
        "w/o L_m(k-1)": base.with_overrides(use_previous_modal_loss=False),
        "w/o L_m(k)": base.with_overrides(use_final_modal_loss=False),
        "w/o min-confidence": base.with_overrides(use_min_confidence=False),
        "w/o PP": base.with_overrides(propagation_iters=0),
    }


def run_fig3_ablation(scale: ExperimentScale = QUICK_SCALE,
                      dataset: str = "DBP15K_FR_EN",
                      variants: tuple[str, ...] | None = None) -> ExperimentResult:
    """Regenerate the ablation study of Fig. 3 (left)."""
    available = ablation_variants(hidden_dim=scale.hidden_dim, seed=scale.seed)
    selected = {name: config for name, config in available.items()
                if variants is None or name in variants}
    result = ExperimentResult(
        experiment="fig3_left",
        description="Ablation study of DESAlign (Fig. 3, left)",
        parameters={"scale": scale.__dict__, "dataset": dataset,
                    "variants": list(selected)},
    )
    task = build_task(dataset, scale, seed_ratio=0.3)
    for name, config in selected.items():
        cell = run_cell("DESAlign", task, scale, model_kwargs={"config": config})
        result.add_row(dataset=dataset, variant=name, **format_metrics(cell.metrics))
    return result
