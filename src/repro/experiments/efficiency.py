"""Efficiency analysis (Sec. V-E) — training time, propagation and decode cost.

The paper reports that DESAlign adds only a small overhead over MEAformer
and that Semantic Propagation itself takes seconds (linear in the number of
entities, no learning).  This runner measures, per model, the wall-clock
training time, the decoding time and the model size, plus the isolated cost
of the propagation step on the trained DESAlign embeddings.

It additionally profiles the two similarity-decoding paths — the dense
``n x n`` pipeline (cosine matrix → CSLS → mutual-NN) against the streaming
blockwise top-k engine — at several entity scales, recording wall-clock,
tracemalloc peak allocation and the resident-set-size high-water mark, so
``results/efficiency.json`` captures the memory win of blockwise decoding.
At the same scales it compares exhaustive streaming against the IVF / LSH
candidate-generation layer, recording the FLOPs proxy (metered dot
products as a fraction of ``n_s · n_t``) and the measured recall@1 /
recall@10 of each approximate path against the exact decode.

Finally it profiles the two *training* strategies — full-graph encoding on
every step (``sampling="full"``) against neighbour-sampled mini-batches
(``sampling="neighbour"``) — on a larger sparse synthetic pair, recording
train/decode wall-clock and peak memory per path.  The sampled path is
already faster and leaner at this scale (per-step cost tracks the batch's
receptive field, not the graph), and the gap widens with graph size;
full-graph remains the numerically exact reference.
"""

from __future__ import annotations

import gc
import sys
import time
import tracemalloc

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None

import numpy as np

from ..core.alignment import cosine_similarity, csls_similarity, mutual_nearest_pairs
from ..core.ann import AnnConfig, flops_counter, generate_candidates, recall_at_k
from ..core.compat import spec_driven
from ..core.config import DESAlignConfig, TrainingConfig
from ..core.model import DESAlign
from ..core.propagation import SemanticPropagation
from ..core.similarity import blockwise_topk
from ..core.task import prepare_task
from ..core.trainer import Trainer
from ..data.synthetic import SyntheticPairConfig, generate_pair
from .reporting import ExperimentResult
from .runner import ExperimentScale, PROMINENT_MODELS, QUICK_SCALE, build_task, train_model

__all__ = ["run_efficiency", "measure_peak_memory", "max_rss_mb"]

#: Entity scales at which the decode-path comparison is profiled (on top of
#: the training-task scale itself).
DECODE_SCALES = (1000, 3000)

#: Entity count of the sparse synthetic pair used for the training-path
#: (full-graph vs neighbour-sampled) comparison.
TRAIN_SCALE_ENTITIES = 800

#: Worker counts profiled by the sharded-decode comparison (the serial
#: engine is always profiled first as the baseline).
SHARDED_WORKER_COUNTS = (2, 4)


def _rusage_mb(who: int) -> float:
    usage = resource.getrusage(who).ru_maxrss
    # ru_maxrss is bytes on macOS, KiB on Linux and the other BSDs.
    if sys.platform == "darwin":
        return usage / (1024.0 * 1024.0)
    return usage / 1024.0


def max_rss_mb(worker_rss_mb: float = 0.0) -> float:
    """Resident-set high-water mark of this process *and* its workers (MB).

    The parent figure alone (``RUSAGE_SELF``) silently under-reports any
    multi-process stage: a forked decode worker's tables live in the child,
    not the parent.  ``RUSAGE_CHILDREN`` does not fix that — POSIX defines
    it as the high-water mark of the single largest *terminated* child, not
    a sum over a pool — so it is folded in only as a floor, and callers
    profiling sharded decodes pass the exact per-worker sum the workers
    self-reported (``TopKSimilarity.worker_rss_mb``), which takes precedence
    when it is larger.
    """
    if resource is None:  # pragma: no cover - non-POSIX platforms
        return float("nan")
    children = max(_rusage_mb(resource.RUSAGE_CHILDREN), worker_rss_mb)
    return _rusage_mb(resource.RUSAGE_SELF) + children


def _worker_rss_of(result) -> float:
    """The summed worker RSS a profiled result self-reports, if any.

    Sharded decodes return a :class:`~repro.core.similarity.TopKSimilarity`
    (possibly inside a tuple) whose ``worker_rss_mb`` carries the exact sum
    of the forked workers' peaks — the figure ``RUSAGE_CHILDREN`` cannot
    provide for a pool.
    """
    items = result if isinstance(result, tuple) else (result,)
    return max((float(getattr(item, "worker_rss_mb", 0.0)) for item in items),
               default=0.0)


def measure_peak_memory(fn, *args, **kwargs):
    """Profile ``fn``; return (result, seconds, peak_mb, rss_mb).

    Wall-clock comes from an untraced run (tracemalloc adds per-allocation
    overhead that would skew comparison with the untraced rows of the same
    table); ``peak_mb`` is the tracemalloc high-water mark of a second,
    traced run (numpy registers its buffers with tracemalloc, so transient
    similarity matrices are captured); ``rss_mb`` is the resident-set
    high-water mark afterwards — parent plus child processes (see
    :func:`max_rss_mb`), monotone across calls, reported so the JSON also
    carries an OS-level figure.
    """
    gc.collect()
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    seconds = time.perf_counter() - start
    gc.collect()
    tracemalloc.start()
    try:
        fn(*args, **kwargs)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, seconds, peak / 1e6, max_rss_mb(_worker_rss_of(result))


def _dense_decode_pipeline(source: np.ndarray, target: np.ndarray) -> int:
    """The historical decode: full matrix, full CSLS, dense mutual-NN."""
    similarity = cosine_similarity(source, target)
    csls_similarity(similarity, k=10)
    return len(mutual_nearest_pairs(similarity))


def _blockwise_decode_pipeline(source: np.ndarray, target: np.ndarray) -> int:
    """The streaming decode: top-k + CSLS means + mutual-NN, O(block · n)."""
    topk = blockwise_topk(source, target, k=10, block_size=512)
    topk.csls_scores()
    return len(topk.mutual_nearest_pairs())


def _profile_decode_paths(result: ExperimentResult, dataset: str,
                          source: np.ndarray, target: np.ndarray,
                          num_entities: int) -> None:
    for label, pipeline in (("decode-dense", _dense_decode_pipeline),
                            ("decode-blockwise", _blockwise_decode_pipeline)):
        pairs, seconds, peak_mb, rss_mb = measure_peak_memory(pipeline, source, target)
        result.add_row(
            dataset=dataset,
            model=label,
            entities=num_entities,
            train_seconds=0.0,
            decode_seconds=round(seconds, 4),
            peak_mb=round(peak_mb, 2),
            rss_mb=round(rss_mb, 1),
            mutual_pairs=pairs,
        )


def _profile_end_to_end_flops(result: ExperimentResult, dataset: str,
                              model, num_entities: int) -> None:
    """Encoder forward + streaming decode, metered in one dot-product unit.

    The multi-modal encoder meters its forward pass through the same
    :func:`flops_counter` the decode engines use, so the encode and decode
    figures are directly comparable and their sum is the full inference
    cost of one alignment pass — the quantity a serving deployment pays.
    """
    with flops_counter() as encode_counter:
        source, target = model._evaluation_embeddings()
    with flops_counter() as decode_counter:
        blockwise_topk(source, target, k=10, block_size=512)
    encode_cells = int(encode_counter.cells)
    decode_cells = int(decode_counter.cells)
    result.add_row(
        dataset=dataset,
        model="flops-encode-decode",
        entities=num_entities,
        train_seconds=0.0,
        decode_seconds=0.0,
        encode_cells=encode_cells,
        decode_cells=decode_cells,
        total_cells=encode_cells + decode_cells,
    )


def _topk_decode(source: np.ndarray, target: np.ndarray, candidates: str):
    """One streamed top-k decode, exhaustive or candidate-restricted.

    Returns ``(topk, metered_cells)`` with every dot product of the run —
    index construction included — counted via :func:`flops_counter`.
    """
    with flops_counter() as counter:
        row_candidates = None
        if candidates != "exhaustive":
            row_candidates = generate_candidates(
                candidates, source, target, AnnConfig(seed=0))
        topk = blockwise_topk(source, target, k=10, block_size=512,
                              row_candidates=row_candidates)
    return topk, counter.cells


def _profile_ann_decode_paths(result: ExperimentResult, dataset: str,
                              source: np.ndarray, target: np.ndarray,
                              num_entities: int) -> None:
    """Exhaustive vs approximate candidate generation on one embedding pair.

    Records, per path, the decode wall-clock, tracemalloc peak, the FLOPs
    proxy (metered dot products as a fraction of ``n_s · n_t``) and the
    measured recall@1 / recall@10 against the exhaustive decode — the
    honesty figures of the approximate layer.
    """
    total_cells = len(source) * len(target)
    exact_topk: np.ndarray | None = None
    for label, candidates in (("decode-topk-exhaustive", "exhaustive"),
                              ("decode-topk-ivf", "ivf"),
                              ("decode-topk-lsh", "lsh")):
        (topk, cells), seconds, peak_mb, rss_mb = measure_peak_memory(
            _topk_decode, source, target, candidates)
        if exact_topk is None:
            exact_topk = topk.indices
            recall1 = recall10 = 1.0
        else:
            recall1 = recall_at_k(topk.indices, exact_topk, k=1)
            recall10 = recall_at_k(topk.indices, exact_topk, k=10)
        result.add_row(
            dataset=dataset,
            model=label,
            entities=num_entities,
            train_seconds=0.0,
            decode_seconds=round(seconds, 4),
            peak_mb=round(peak_mb, 2),
            rss_mb=round(rss_mb, 1),
            flops_fraction=round(cells / total_cells, 4),
            recall1=round(recall1, 4),
            recall10=round(recall10, 4),
        )


def _sharded_decode(source: np.ndarray, target: np.ndarray,
                    num_workers: int | None):
    """One exhaustive streamed decode, serial or forked-sharded."""
    with flops_counter() as counter:
        topk = blockwise_topk(source, target, k=10, block_size=512,
                              num_workers=num_workers)
    return topk, counter.cells


def _profile_sharded_decode_paths(result: ExperimentResult, dataset: str,
                                  source: np.ndarray, target: np.ndarray,
                                  num_entities: int,
                                  worker_counts=SHARDED_WORKER_COUNTS) -> None:
    """Serial vs multi-process sharded decode on one embedding pair.

    The sharded rows report the *true* multi-process memory: the parent's
    peak plus the sum of every forked worker's self-reported peak
    (``rss_mb`` via :func:`max_rss_mb`; the per-worker sum alone is also
    recorded as ``worker_rss_mb``).  ``identical`` pins the sharded
    bit-identity guarantee — merged results match the serial engine's
    arrays exactly, not approximately.
    """
    serial: tuple | None = None
    for num_workers in (None, *worker_counts):
        (topk, cells), seconds, peak_mb, rss_mb = measure_peak_memory(
            _sharded_decode, source, target, num_workers)
        if serial is None:
            serial = (topk, seconds)
            label, workers, speedup = "decode-sharded-serial", 1, 1.0
            identical = True
        else:
            label, workers = f"decode-sharded-w{num_workers}", num_workers
            speedup = serial[1] / seconds if seconds > 0 else float("inf")
            identical = (np.array_equal(topk.indices, serial[0].indices)
                         and np.array_equal(topk.scores, serial[0].scores))
        result.add_row(
            dataset=dataset,
            model=label,
            entities=num_entities,
            train_seconds=0.0,
            decode_seconds=round(seconds, 4),
            peak_mb=round(peak_mb, 2),
            rss_mb=round(rss_mb, 1),
            worker_rss_mb=round(topk.worker_rss_mb, 1),
            workers=workers,
            flops_fraction=round(cells / (len(source) * len(target)), 4),
            speedup=round(speedup, 2),
            identical=identical,
        )


def _training_pipeline(task, sampling: str, fanouts):
    """Train a fresh DESAlign on ``task`` with one training strategy.

    Uses the Trainer engine directly (the profiler wants no facade layers
    between the timer and the loop) inside ``spec_driven()`` so the
    legacy-API deprecation shim stays silent on library-internal plumbing.
    """
    model = DESAlign(task, DESAlignConfig(hidden_dim=16, gat_layers=2,
                                          seed=0, backend="sparse"))
    config = TrainingConfig(epochs=2, eval_every=0, seed=0, batch_size=256,
                            sampling=sampling, fanouts=fanouts)
    with spec_driven():
        return Trainer(model, task, config).fit()


def _profile_training_paths(result: ExperimentResult,
                            num_entities: int) -> None:
    """Full-graph vs neighbour-sampled training cost on a sparse pair."""
    pair = generate_pair(SyntheticPairConfig(
        num_entities=num_entities, avg_degree=5.0, seed_ratio=0.2,
        seed=5, name="train-scaling"))
    task = prepare_task(pair, structure_dim=16, relation_dim=24,
                        attribute_dim=24, backend="sparse")
    for label, sampling, fanouts in (("train-full", "full", None),
                                     ("train-neighbour", "neighbour", (4, 4))):
        inner, seconds, peak_mb, rss_mb = measure_peak_memory(
            _training_pipeline, task, sampling, fanouts)
        result.add_row(
            dataset="synthetic",
            model=label,
            entities=num_entities,
            train_seconds=round(inner.train_seconds, 3),
            decode_seconds=round(inner.decode_seconds, 3),
            peak_mb=round(peak_mb, 2),
            rss_mb=round(rss_mb, 1),
            h1=round(100.0 * inner.metrics.hits_at_1, 1),
        )


def run_efficiency(scale: ExperimentScale = QUICK_SCALE,
                   dataset: str = "FBDB15K",
                   models: tuple[str, ...] = PROMINENT_MODELS,
                   decode_scales: tuple[int, ...] = DECODE_SCALES,
                   train_entities: int = TRAIN_SCALE_ENTITIES) -> ExperimentResult:
    """Regenerate the efficiency comparison of Sec. V-E."""
    result = ExperimentResult(
        experiment="efficiency",
        description="Training / decoding wall-clock, propagation and decode-path cost (Sec. V-E)",
        parameters={"scale": scale.__dict__, "dataset": dataset, "models": list(models),
                    "decode_scales": list(decode_scales),
                    "train_entities": train_entities},
    )
    task = build_task(dataset, scale, seed_ratio=0.2)
    desalign_model = None
    for model_name in models:
        model, cell = train_model(model_name, task, scale)
        if model_name == "DESAlign":
            desalign_model = model
        result.add_row(
            dataset=dataset,
            model=model_name,
            train_seconds=round(cell.train_seconds, 3),
            decode_seconds=round(cell.decode_seconds, 3),
            parameters=cell.num_parameters,
            h1=round(100.0 * cell.metrics.hits_at_1, 1),
            mrr=round(100.0 * cell.metrics.mrr, 1),
        )

    if desalign_model is not None:
        source_embeddings, target_embeddings = desalign_model._evaluation_embeddings()
        source_known, target_known = desalign_model.propagation_masks()
        start = time.perf_counter()
        SemanticPropagation(iterations=2)(
            source_embeddings, target_embeddings,
            task.source.adjacency, task.target.adjacency,
            source_known=source_known, target_known=target_known,
        )
        propagation_seconds = time.perf_counter() - start
        result.add_row(
            dataset=dataset,
            model="SemanticPropagation (decode only)",
            train_seconds=0.0,
            decode_seconds=round(propagation_seconds, 4),
            parameters=0,
            h1=float("nan"),
            mrr=float("nan"),
        )
        # Dense vs blockwise decode on the trained embeddings ...
        _profile_decode_paths(result, dataset, source_embeddings,
                              target_embeddings, task.source.num_entities)
        # ... plus the end-to-end encode+decode FLOPs of one inference pass.
        _profile_end_to_end_flops(result, dataset, desalign_model,
                                  task.source.num_entities)

    # ... and at larger synthetic scales, where the dense n x n pipeline's
    # O(n²) peak dwarfs the O(block · n) streaming engine, and where the
    # approximate candidate layer starts cutting FLOPs on top of memory.
    hidden = scale.hidden_dim
    rng = np.random.default_rng(scale.seed)
    for num_entities in decode_scales:
        source = rng.normal(size=(num_entities, hidden))
        target = source + 0.1 * rng.normal(size=(num_entities, hidden))
        _profile_decode_paths(result, "synthetic", source, target, num_entities)
        _profile_ann_decode_paths(result, "synthetic", source, target,
                                  num_entities)
    # Serial vs forked-sharded decode at the last profiled scale: the
    # sharded rows carry the parent+workers RSS sum and the bit-identity pin.
    if decode_scales:
        _profile_sharded_decode_paths(result, "synthetic", source, target,
                                      num_entities)

    # Training-path comparison: full-graph vs neighbour-sampled mini-batches
    # on a sparse pair beyond the dense backend's comfort zone.
    _profile_training_paths(result, train_entities)
    return result
