"""Efficiency analysis (Sec. V-E) — training time and Semantic Propagation cost.

The paper reports that DESAlign adds only a small overhead over MEAformer
and that Semantic Propagation itself takes seconds (linear in the number of
entities, no learning).  This runner measures, per model, the wall-clock
training time, the decoding time and the model size, plus the isolated cost
of the propagation step on the trained DESAlign embeddings.

Expected shape: the contrastive multi-modal models (MCLEA / MEAformer /
DESAlign) cost noticeably more than EVA; DESAlign is in the same bracket as
MEAformer; and the propagation step is orders of magnitude cheaper than
training.
"""

from __future__ import annotations

import time

from ..core.propagation import SemanticPropagation
from .reporting import ExperimentResult
from .runner import ExperimentScale, PROMINENT_MODELS, QUICK_SCALE, build_task, train_model

__all__ = ["run_efficiency"]


def run_efficiency(scale: ExperimentScale = QUICK_SCALE,
                   dataset: str = "FBDB15K",
                   models: tuple[str, ...] = PROMINENT_MODELS) -> ExperimentResult:
    """Regenerate the efficiency comparison of Sec. V-E."""
    result = ExperimentResult(
        experiment="efficiency",
        description="Training / decoding wall-clock and propagation cost (Sec. V-E)",
        parameters={"scale": scale.__dict__, "dataset": dataset, "models": list(models)},
    )
    task = build_task(dataset, scale, seed_ratio=0.2)
    desalign_model = None
    for model_name in models:
        model, cell = train_model(model_name, task, scale)
        if model_name == "DESAlign":
            desalign_model = model
        result.add_row(
            dataset=dataset,
            model=model_name,
            train_seconds=round(cell.train_seconds, 3),
            decode_seconds=round(cell.decode_seconds, 3),
            parameters=cell.num_parameters,
            h1=round(100.0 * cell.metrics.hits_at_1, 1),
            mrr=round(100.0 * cell.metrics.mrr, 1),
        )

    if desalign_model is not None:
        source_embeddings, target_embeddings = desalign_model._evaluation_embeddings()
        source_known, target_known = desalign_model.propagation_masks()
        start = time.perf_counter()
        SemanticPropagation(iterations=2)(
            source_embeddings, target_embeddings,
            task.source.adjacency, task.target.adjacency,
            source_known=source_known, target_known=target_known,
        )
        propagation_seconds = time.perf_counter() - start
        result.add_row(
            dataset=dataset,
            model="SemanticPropagation (decode only)",
            train_seconds=0.0,
            decode_seconds=round(propagation_seconds, 4),
            parameters=0,
            h1=float("nan"),
            mrr=float("nan"),
        )
    return result
