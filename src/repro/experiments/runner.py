"""Common execution helpers shared by every experiment runner.

The experiment modules describe *what* to run (datasets, splits, model
rows); this module knows *how* to run a single cell of a table.  Since the
pipeline API landed, "how" means: translate the cell into a declarative
:class:`~repro.pipeline.PipelineSpec` and drive the
:class:`~repro.pipeline.AlignmentPipeline` facade — the same path the CLI
and downstream users take — so the experiment harness exercises the public
API surface rather than a private shortcut.

Experiment scale (entity count, epoch count, which model rows to include)
is controlled by an :class:`ExperimentScale` so the same code serves both
quick benchmark runs and larger overnight reproductions.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, replace

from ..core.config import TrainingConfig
from ..core.task import PreparedTask
from ..core.trainer import TrainingResult
from ..pipeline import AlignmentPipeline, DataSpec, ModelSpec, PipelineSpec

__all__ = ["ExperimentScale", "QUICK_SCALE", "PAPER_SCALE", "PROMINENT_MODELS",
           "BASIC_MODELS", "build_task", "train_model", "run_cell"]

#: Models used in the robustness tables (Tables II / III) and Fig. 3 (right).
PROMINENT_MODELS = ("EVA", "MCLEA", "MEAformer", "DESAlign")

#: The "basic model" rows of Table IV that this reproduction implements.
BASIC_MODELS = ("TransE", "GCN-align", "PoE", "EVA", "MCLEA", "MEAformer", "DESAlign")


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs controlling how expensive an experiment run is.

    ``backend`` selects the graph backend the tasks and models run on:
    ``"dense"`` reproduces the original ``n x n`` formulation, ``"sparse"``
    runs CSR message passing / propagation and is required for grids beyond
    a few hundred entities.
    """

    num_entities: int = 100
    epochs: int = 60
    iterative_epochs: int = 20
    iterative_rounds: int = 1
    hidden_dim: int = 32
    eval_every: int = 0
    seed: int = 0
    backend: str = "dense"

    def with_overrides(self, **kwargs) -> "ExperimentScale":
        return replace(self, **kwargs)

    # ------------------------------------------------------------------
    # Spec translation
    # ------------------------------------------------------------------
    def data_spec(self, dataset: str, seed_ratio: float | None = None,
                  image_ratio: float | None = None,
                  text_ratio: float | None = None) -> DataSpec:
        """The ``data`` section of a spec run at this scale."""
        return DataSpec(dataset=dataset, num_entities=self.num_entities,
                        seed_ratio=seed_ratio, image_ratio=image_ratio,
                        text_ratio=text_ratio, backend=self.backend,
                        seed=self.seed)

    def training_config(self, iterative: bool = False) -> TrainingConfig:
        """The ``training`` section of a spec run at this scale."""
        return TrainingConfig(
            epochs=self.epochs,
            eval_every=self.eval_every,
            iterative=iterative,
            iterative_rounds=self.iterative_rounds,
            iterative_epochs=self.iterative_epochs,
            seed=self.seed,
        )


#: Fast setting used by the pytest-benchmark harness (seconds per cell).
QUICK_SCALE = ExperimentScale(num_entities=80, epochs=30)

#: Larger setting closer to the paper's training budget (minutes per cell).
PAPER_SCALE = ExperimentScale(num_entities=200, epochs=150, iterative_epochs=50,
                              iterative_rounds=2)


def _config_options(config) -> dict:
    """Flatten a legacy config object (dataclass or plain) into spec options."""
    if dataclasses.is_dataclass(config):
        return dataclasses.asdict(config)
    return dict(vars(config))


def _model_spec(model_name: str, scale: ExperimentScale,
                model_kwargs: dict | None) -> ModelSpec:
    """Translate the legacy ``model_kwargs`` surface into a :class:`ModelSpec`.

    A ``config=`` entry (a :class:`~repro.core.config.DESAlignConfig` or
    :class:`~repro.baselines.BaselineConfig`) is flattened into spec
    options; remaining kwargs pass through as options directly.  Without an
    explicit config, DESAlign follows the scale's backend (the other models
    follow the prepared task).
    """
    options = dict(model_kwargs or {})
    hidden_dim = scale.hidden_dim
    seed = scale.seed
    config = options.pop("config", None)
    if config is not None:
        flattened = _config_options(config)
        hidden_dim = flattened.pop("hidden_dim", hidden_dim)
        seed = flattened.pop("seed", seed)
        options.update(flattened)
    elif model_name == "DESAlign":
        options.setdefault("backend", scale.backend)
    hidden_dim = options.pop("hidden_dim", hidden_dim)
    seed = options.pop("seed", seed)
    return ModelSpec(name=model_name, hidden_dim=hidden_dim, seed=seed,
                     options=options)


def build_task(dataset: str, scale: ExperimentScale,
               seed_ratio: float | None = None,
               image_ratio: float | None = None,
               text_ratio: float | None = None) -> PreparedTask:
    """Materialise and prepare one benchmark split at the requested scale."""
    spec = PipelineSpec(
        data=scale.data_spec(dataset, seed_ratio=seed_ratio,
                             image_ratio=image_ratio, text_ratio=text_ratio),
        model=ModelSpec(hidden_dim=scale.hidden_dim),
    )
    return AlignmentPipeline.from_spec(spec).build_task()


def train_model(model_name: str, task: PreparedTask, scale: ExperimentScale,
                iterative: bool = False, model_kwargs: dict | None = None,
                training_overrides: dict | None = None):
    """Train one model on one prepared split; returns ``(model, TrainingResult)``.

    The cell is expressed as a :class:`~repro.pipeline.PipelineSpec`
    (``dataset="custom"`` because the task is already prepared and shared
    across the row's cells) and run through the facade.
    """
    training = scale.training_config(iterative=iterative)
    if training_overrides:
        training = training.with_overrides(**training_overrides)
    spec = PipelineSpec(
        data=DataSpec(dataset="custom", num_entities=scale.num_entities,
                      backend=task.backend, seed=scale.seed),
        model=_model_spec(model_name, scale, model_kwargs),
        training=training,
    )
    aligner = AlignmentPipeline.from_spec(spec).fit(task)
    return aligner.model, aligner.result


def run_cell(model_name: str, task: PreparedTask, scale: ExperimentScale,
             iterative: bool = False, model_kwargs: dict | None = None,
             training_overrides: dict | None = None) -> TrainingResult:
    """Train and evaluate one model on one prepared split (one table cell)."""
    _, result = train_model(model_name, task, scale, iterative=iterative,
                            model_kwargs=model_kwargs,
                            training_overrides=training_overrides)
    return result
