"""Common execution helpers shared by every experiment runner.

The experiment modules describe *what* to run (datasets, splits, model
rows); this module knows *how* to run a single cell of a table: build the
benchmark split, prepare the task, instantiate the model from the registry,
train it with the shared trainer and return the metric bundle.

Experiment scale (entity count, epoch count, which model rows to include)
is controlled by an :class:`ExperimentScale` so the same code serves both
quick benchmark runs and larger overnight reproductions.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..baselines import build_model
from ..core.config import DESAlignConfig, TrainingConfig
from ..core.task import PreparedTask, prepare_task
from ..core.trainer import Trainer, TrainingResult
from ..data.benchmarks import load_benchmark

__all__ = ["ExperimentScale", "QUICK_SCALE", "PAPER_SCALE", "PROMINENT_MODELS",
           "BASIC_MODELS", "build_task", "train_model", "run_cell"]

#: Models used in the robustness tables (Tables II / III) and Fig. 3 (right).
PROMINENT_MODELS = ("EVA", "MCLEA", "MEAformer", "DESAlign")

#: The "basic model" rows of Table IV that this reproduction implements.
BASIC_MODELS = ("TransE", "GCN-align", "PoE", "EVA", "MCLEA", "MEAformer", "DESAlign")


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs controlling how expensive an experiment run is.

    ``backend`` selects the graph backend the tasks and models run on:
    ``"dense"`` reproduces the original ``n x n`` formulation, ``"sparse"``
    runs CSR message passing / propagation and is required for grids beyond
    a few hundred entities.
    """

    num_entities: int = 100
    epochs: int = 60
    iterative_epochs: int = 20
    iterative_rounds: int = 1
    hidden_dim: int = 32
    eval_every: int = 0
    seed: int = 0
    backend: str = "dense"

    def with_overrides(self, **kwargs) -> "ExperimentScale":
        return replace(self, **kwargs)


#: Fast setting used by the pytest-benchmark harness (seconds per cell).
QUICK_SCALE = ExperimentScale(num_entities=80, epochs=30)

#: Larger setting closer to the paper's training budget (minutes per cell).
PAPER_SCALE = ExperimentScale(num_entities=200, epochs=150, iterative_epochs=50,
                              iterative_rounds=2)


def build_task(dataset: str, scale: ExperimentScale,
               seed_ratio: float | None = None,
               image_ratio: float | None = None,
               text_ratio: float | None = None) -> PreparedTask:
    """Materialise and prepare one benchmark split at the requested scale."""
    pair = load_benchmark(
        dataset,
        seed_ratio=seed_ratio,
        image_ratio=image_ratio,
        text_ratio=text_ratio,
        num_entities=scale.num_entities,
        seed=None,
    )
    return prepare_task(pair, structure_dim=scale.hidden_dim, seed=scale.seed,
                        backend=scale.backend)


def train_model(model_name: str, task: PreparedTask, scale: ExperimentScale,
                iterative: bool = False, model_kwargs: dict | None = None,
                training_overrides: dict | None = None):
    """Train one model on one prepared split; returns ``(model, TrainingResult)``."""
    model_kwargs = dict(model_kwargs or {})
    if model_name == "DESAlign" and "config" not in model_kwargs:
        model_kwargs["config"] = DESAlignConfig(hidden_dim=scale.hidden_dim,
                                                seed=scale.seed,
                                                backend=scale.backend)
    elif model_name == "TransE":
        model_kwargs.setdefault("hidden_dim", scale.hidden_dim)
        model_kwargs.setdefault("seed", scale.seed)
    model = build_model(model_name, task, **model_kwargs)
    training = TrainingConfig(
        epochs=scale.epochs,
        eval_every=scale.eval_every,
        iterative=iterative,
        iterative_rounds=scale.iterative_rounds,
        iterative_epochs=scale.iterative_epochs,
        seed=scale.seed,
    )
    if training_overrides:
        training = training.with_overrides(**training_overrides)
    trainer = Trainer(model, task, training)
    return model, trainer.fit()


def run_cell(model_name: str, task: PreparedTask, scale: ExperimentScale,
             iterative: bool = False, model_kwargs: dict | None = None,
             training_overrides: dict | None = None) -> TrainingResult:
    """Train and evaluate one model on one prepared split (one table cell)."""
    _, result = train_model(model_name, task, scale, iterative=iterative,
                            model_kwargs=model_kwargs,
                            training_overrides=training_overrides)
    return result
