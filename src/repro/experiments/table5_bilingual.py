"""Table V — main results on the bilingual DBP15K datasets.

DBP15K FR-EN / JA-EN / ZH-EN at the standard 30% seed ratio, for the
non-iterative and iterative blocks.  Expected shape: DESAlign first and
MEAformer runner-up on every dataset, in both blocks.
"""

from __future__ import annotations

from ..data.benchmarks import BILINGUAL_DATASETS
from .reporting import ExperimentResult, format_metrics
from .runner import ExperimentScale, PROMINENT_MODELS, QUICK_SCALE, build_task, run_cell

__all__ = ["run_table5"]

#: Non-iterative rows of Table V implemented in this reproduction.
NON_ITERATIVE_MODELS = ("GCN-align", "EVA", "MCLEA", "MEAformer", "DESAlign")


def run_table5(scale: ExperimentScale = QUICK_SCALE,
               datasets: tuple[str, ...] = BILINGUAL_DATASETS,
               non_iterative_models: tuple[str, ...] = NON_ITERATIVE_MODELS,
               iterative_models: tuple[str, ...] = PROMINENT_MODELS,
               include_iterative: bool = True) -> ExperimentResult:
    """Regenerate Table V (bilingual main results, non-iterative + iterative)."""
    result = ExperimentResult(
        experiment="table5",
        description="Main results of bilingual datasets (Table V)",
        parameters={"scale": scale.__dict__, "datasets": list(datasets)},
    )
    for dataset in datasets:
        task = build_task(dataset, scale, seed_ratio=0.3)
        for model_name in non_iterative_models:
            cell = run_cell(model_name, task, scale, iterative=False)
            result.add_row(
                dataset=dataset,
                strategy="non-iterative",
                model=model_name,
                **format_metrics(cell.metrics),
            )
        if not include_iterative:
            continue
        for model_name in iterative_models:
            cell = run_cell(model_name, task, scale, iterative=True)
            result.add_row(
                dataset=dataset,
                strategy="iterative",
                model=model_name,
                **format_metrics(cell.metrics),
            )
    return result
