"""Table II — robustness to missing text attributes on the monolingual datasets.

For each ``R_tex`` in the paper's grid {5%, 20%, 30%, 40%, 50%, 60%} the
prominent models (EVA, MCLEA, MEAformer, DESAlign) are trained on
FBDB15K and FBYG15K splits where only that fraction of entities keeps its
textual attributes.  The reproduction target is the *shape* of Table II:
DESAlign stays essentially flat across ratios and leads every column, while
the baselines oscillate or degrade.
"""

from __future__ import annotations

from ..data.benchmarks import MISSING_RATIOS, MONOLINGUAL_DATASETS
from .reporting import ExperimentResult, format_metrics
from .runner import ExperimentScale, PROMINENT_MODELS, QUICK_SCALE, build_task, run_cell

__all__ = ["run_table2"]


def run_table2(scale: ExperimentScale = QUICK_SCALE,
               datasets: tuple[str, ...] = MONOLINGUAL_DATASETS,
               text_ratios: tuple[float, ...] = MISSING_RATIOS,
               models: tuple[str, ...] = PROMINENT_MODELS) -> ExperimentResult:
    """Regenerate Table II (missing text attributes, monolingual datasets)."""
    result = ExperimentResult(
        experiment="table2",
        description="Main results with varying ratio of text attributes (Table II)",
        parameters={"scale": scale.__dict__, "datasets": list(datasets),
                    "text_ratios": list(text_ratios), "models": list(models)},
    )
    for dataset in datasets:
        for text_ratio in text_ratios:
            task = build_task(dataset, scale, text_ratio=text_ratio)
            for model_name in models:
                cell = run_cell(model_name, task, scale)
                result.add_row(
                    dataset=dataset,
                    text_ratio=text_ratio,
                    model=model_name,
                    **format_metrics(cell.metrics),
                )
    return result
