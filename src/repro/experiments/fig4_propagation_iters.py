"""Figure 4 — impact of the number of Semantic Propagation iterations.

Sweeps ``n_p`` from 0 to 5 on monolingual and bilingual splits and reports
H@1 / H@10.  Since Semantic Propagation is a pure decoding step (it involves
no learning, Sec. V-E), a single DESAlign model is trained per split and
then decoded with every iteration count — exactly how the paper's analysis
is produced.

Expected shape: accuracy jumps from ``n_p = 0`` to a small positive number
of iterations and then degrades as over-propagation imports noise into the
consistent features; the best ``n_p`` is smaller for the (more
heterogeneous) bilingual datasets than for the monolingual ones.
"""

from __future__ import annotations

from ..core.config import DESAlignConfig
from ..core.propagation import SemanticPropagation
from ..eval.evaluator import Evaluator
from .reporting import ExperimentResult, format_metrics
from .runner import ExperimentScale, QUICK_SCALE, build_task, train_model

__all__ = ["run_fig4_propagation"]

DEFAULT_SETTINGS = (
    ("FBDB15K", 0.2, None),
    ("FBYG15K", 0.2, None),
    ("DBP15K_FR_EN", 0.3, 0.4),
)


def run_fig4_propagation(scale: ExperimentScale = QUICK_SCALE,
                         settings: tuple[tuple[str, float, float | None], ...] = DEFAULT_SETTINGS,
                         iteration_grid: tuple[int, ...] = (0, 1, 2, 3, 4, 5)) -> ExperimentResult:
    """Regenerate the propagation-iteration sweep of Fig. 4.

    ``settings`` is a tuple of ``(dataset, seed_ratio, image_ratio)``; the
    image ratio (when given) raises the amount of missing visual semantics
    so propagation has something to interpolate, as in the paper's setup.
    """
    result = ExperimentResult(
        experiment="fig4",
        description="Impact of the number of semantic-propagation iterations (Fig. 4)",
        parameters={"scale": scale.__dict__, "settings": [list(s) for s in settings],
                    "iterations": list(iteration_grid)},
    )
    for dataset, seed_ratio, image_ratio in settings:
        task = build_task(dataset, scale, seed_ratio=seed_ratio, image_ratio=image_ratio)
        config = DESAlignConfig(hidden_dim=scale.hidden_dim, seed=scale.seed)
        trained, _ = train_model("DESAlign", task, scale, model_kwargs={"config": config})
        evaluator = Evaluator(task)
        source_embeddings, target_embeddings = trained._evaluation_embeddings()
        source_known, target_known = trained.propagation_masks()
        for iterations in iteration_grid:
            decoder = SemanticPropagation(iterations=iterations)
            propagation = decoder(source_embeddings, target_embeddings,
                                  task.source.adjacency, task.target.adjacency,
                                  source_known=source_known, target_known=target_known)
            metrics = evaluator.evaluate_similarity(propagation.final_similarity())
            result.add_row(
                dataset=dataset,
                seed_ratio=seed_ratio,
                image_ratio=image_ratio if image_ratio is not None else 1.0,
                iterations=iterations,
                **format_metrics(metrics),
            )
    return result
