"""Robustness sweep — graceful degradation under declarative corruption.

The paper's central claim is that DESAlign degrades *gracefully* under
semantic inconsistency where baselines fall off a cliff.  This runner
stresses that claim far beyond the two hand-rolled ratio tables: every
corruption the :class:`~repro.pipeline.PerturbationSpec` section declares
(modality dropout, mislabelled seed pairs, Gaussian feature noise, edge
deletion / rewiring, degree skew) is swept over a severity grid and the
full model zoo, producing one H@1 / H@10 / MRR cell per
``corruption x severity x model`` plus a degradation summary (absolute
H@1 drop and least-squares slope per model and corruption).

Every model inside one ``(corruption, severity)`` cell trains on the
*identical* corrupted task — the perturbation is applied once, by the
pipeline facade, under the sweep's fixed seed — so differences between
rows are attributable to the models, not to corruption sampling noise.
Severity ``0.0`` is a bit-exact no-op in the facade, so the clean cells
are computed once from the unperturbed pipeline and shared across
corruptions (they are bit-identical by construction).

Rows store metrics as *unrounded* percentages: the JSON stays exact for
downstream assertions (the robustness benchmark compares clean cells
bitwise against an unperturbed run) while the rendered table still shows
one decimal.
"""

from __future__ import annotations

import numpy as np

from ..core.task import PreparedTask
from ..pipeline import (AlignmentPipeline, ModelSpec, PerturbationSpec,
                        PipelineSpec)
from .reporting import ExperimentResult
from .runner import ExperimentScale, QUICK_SCALE, run_cell

__all__ = ["CORRUPTIONS", "DEFAULT_CORRUPTIONS", "DEFAULT_SEVERITIES",
           "ROBUSTNESS_MODELS", "build_corrupted_task", "run_robustness"]

#: Every corruption axis the PerturbationSpec exposes as a single severity.
CORRUPTIONS = ("modality_dropout", "seed_noise", "feature_noise",
               "edge_deletion", "edge_rewiring", "degree_skew")

#: Default sweep axes: the paper's missing-modality scenario plus the two
#: cheapest structure/supervision corruptions (the full set is available
#: via ``corruptions=CORRUPTIONS``).
DEFAULT_CORRUPTIONS = ("modality_dropout", "seed_noise", "edge_deletion")

#: Default severity grid; 0.0 is the (shared, bit-exact) clean baseline.
DEFAULT_SEVERITIES = (0.0, 0.3, 0.6)

#: DESAlign plus two strong multi-modal baselines.
ROBUSTNESS_MODELS = ("EVA", "MEAformer", "DESAlign")


def perturbation_for(corruption: str, severity: float,
                     seed: int = 0) -> PerturbationSpec:
    """The spec section putting all of ``severity`` on one corruption axis."""
    if corruption not in CORRUPTIONS:
        raise ValueError(f"unknown corruption {corruption!r}; "
                         f"known: {CORRUPTIONS}")
    return PerturbationSpec(**{corruption: severity}, seed=seed)


def build_corrupted_task(dataset: str, scale: ExperimentScale,
                         corruption: str, severity: float) -> PreparedTask:
    """One corrupted prepared task, shared by every model of the cell.

    Goes through :meth:`AlignmentPipeline.build_task` — the same code
    path ``fit`` takes — so a zero severity reproduces the unperturbed
    pipeline bit for bit.
    """
    spec = PipelineSpec(
        data=scale.data_spec(dataset),
        model=ModelSpec(hidden_dim=scale.hidden_dim),
        perturbation=perturbation_for(corruption, severity, seed=scale.seed),
    )
    return AlignmentPipeline.from_spec(spec).build_task()


def _percent(metrics) -> dict[str, float]:
    """Unrounded percentage columns (reporting.format_metrics rounds)."""
    if hasattr(metrics, "as_dict"):
        metrics = metrics.as_dict()
    return {key: 100.0 * value for key, value in metrics.items()}


def _degradation_summary(result: ExperimentResult, corruptions, severities,
                         models) -> list[dict]:
    """Per (corruption, model): clean H@1, worst H@1, drop and LSQ slope."""
    summary = []
    lowest, highest = min(severities), max(severities)
    for corruption in corruptions:
        for model in models:
            grid = [(severity,
                     result.column("H@1", corruption=corruption,
                                   severity=severity, model=model)[0])
                    for severity in severities]
            clean = dict(grid)[lowest]
            worst = dict(grid)[highest]
            if len(grid) >= 2 and highest > lowest:
                xs = np.asarray([point[0] for point in grid])
                ys = np.asarray([point[1] for point in grid])
                slope = float(np.polyfit(xs, ys, 1)[0])
            else:
                slope = 0.0
            summary.append({
                "corruption": corruption,
                "model": model,
                "clean_H@1": clean,
                "worst_H@1": worst,
                "drop_H@1": clean - worst,
                "slope_H@1_per_severity": slope,
            })
    return summary


def run_robustness(scale: ExperimentScale = QUICK_SCALE,
                   dataset: str = "FBDB15K",
                   corruptions: tuple[str, ...] = DEFAULT_CORRUPTIONS,
                   severities: tuple[float, ...] = DEFAULT_SEVERITIES,
                   models: tuple[str, ...] = ROBUSTNESS_MODELS) -> ExperimentResult:
    """Sweep corruption type x severity x model; summarise degradation.

    Returns an :class:`ExperimentResult` with one row per cell (raw
    percentage metrics) and ``parameters["degradation"]`` holding the
    per-model drop/slope summary the robustness benchmark asserts on.
    """
    corruptions = tuple(corruptions)
    severities = tuple(sorted(set(float(s) for s in severities)))
    models = tuple(models)
    result = ExperimentResult(
        experiment="robustness",
        description="Graceful degradation under declarative corruption "
                    "(corruption x severity x model)",
        parameters={"scale": scale.__dict__, "dataset": dataset,
                    "corruptions": list(corruptions),
                    "severities": list(severities), "models": list(models)},
    )
    # Severity 0.0 is a bit-exact no-op whatever the corruption axis, so
    # the clean cells are computed once and shared across corruptions.
    clean_metrics: dict[str, dict] = {}
    if 0.0 in severities:
        clean_task = build_corrupted_task(dataset, scale, corruptions[0], 0.0)
        for model_name in models:
            cell = run_cell(model_name, clean_task, scale)
            clean_metrics[model_name] = _percent(cell.metrics)
    for corruption in corruptions:
        for severity in severities:
            if severity == 0.0:
                for model_name in models:
                    result.add_row(corruption=corruption, severity=severity,
                                   model=model_name,
                                   **clean_metrics[model_name])
                continue
            task = build_corrupted_task(dataset, scale, corruption, severity)
            for model_name in models:
                cell = run_cell(model_name, task, scale)
                result.add_row(corruption=corruption, severity=severity,
                               model=model_name, **_percent(cell.metrics))
    result.parameters["degradation"] = _degradation_summary(
        result, corruptions, severities, models)
    return result
