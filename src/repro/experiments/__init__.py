"""Experiment harness: one runner per table / figure of the paper."""

from .reporting import ExperimentResult, format_table, format_metrics
from .runner import (
    ExperimentScale,
    QUICK_SCALE,
    PAPER_SCALE,
    PROMINENT_MODELS,
    BASIC_MODELS,
    build_task,
    train_model,
    run_cell,
)
from .table2_text_ratio import run_table2
from .table3_image_ratio import run_table3
from .table4_monolingual import run_table4
from .table5_bilingual import run_table5
from .efficiency import run_efficiency
from .fig3_ablation import run_fig3_ablation, ablation_variants
from .fig3_weak_supervision import run_fig3_weak_supervision
from .fig4_propagation_iters import run_fig4_propagation
from .energy_analysis import run_energy_analysis
from .robustness import (CORRUPTIONS, DEFAULT_CORRUPTIONS, DEFAULT_SEVERITIES,
                         ROBUSTNESS_MODELS, build_corrupted_task,
                         run_robustness)
from .registry import EXPERIMENTS, run_experiment, list_experiments

__all__ = [
    "ExperimentResult",
    "format_table",
    "format_metrics",
    "ExperimentScale",
    "QUICK_SCALE",
    "PAPER_SCALE",
    "PROMINENT_MODELS",
    "BASIC_MODELS",
    "build_task",
    "train_model",
    "run_cell",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_efficiency",
    "run_fig3_ablation",
    "ablation_variants",
    "run_fig3_weak_supervision",
    "run_fig4_propagation",
    "run_energy_analysis",
    "run_robustness",
    "build_corrupted_task",
    "CORRUPTIONS",
    "DEFAULT_CORRUPTIONS",
    "DEFAULT_SEVERITIES",
    "ROBUSTNESS_MODELS",
    "EXPERIMENTS",
    "run_experiment",
    "list_experiments",
]
