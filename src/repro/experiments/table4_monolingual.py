"""Table IV — main results on the monolingual datasets (FBDB15K, FBYG15K).

The paper reports FB15K-DB15K and FB15K-YAGO15K at seed ratios 20% / 50% /
80%, for a pool of basic models and for the prominent models with the
iterative (bootstrapping) strategy.  This runner regenerates both blocks;
the expected shape is DESAlign first, MEAformer runner-up, in both the
basic and the iterative block, with the gap largest at ``R_seed = 20%``.
"""

from __future__ import annotations

from ..data.benchmarks import MONOLINGUAL_DATASETS
from .reporting import ExperimentResult, format_metrics
from .runner import (
    BASIC_MODELS,
    ExperimentScale,
    PROMINENT_MODELS,
    QUICK_SCALE,
    build_task,
    run_cell,
)

__all__ = ["run_table4", "DEFAULT_SEED_RATIOS"]

DEFAULT_SEED_RATIOS = (0.2, 0.5, 0.8)

#: Models included in the iterative block of Table IV.
ITERATIVE_MODELS = ("EVA", "MCLEA", "MEAformer", "DESAlign")


def run_table4(scale: ExperimentScale = QUICK_SCALE,
               datasets: tuple[str, ...] = MONOLINGUAL_DATASETS,
               seed_ratios: tuple[float, ...] = DEFAULT_SEED_RATIOS,
               basic_models: tuple[str, ...] = BASIC_MODELS,
               iterative_models: tuple[str, ...] = ITERATIVE_MODELS,
               include_iterative: bool = True) -> ExperimentResult:
    """Regenerate Table IV (monolingual main results, basic + iterative)."""
    result = ExperimentResult(
        experiment="table4",
        description="Main results of monolingual datasets (Table IV)",
        parameters={"scale": scale.__dict__, "datasets": list(datasets),
                    "seed_ratios": list(seed_ratios)},
    )
    for dataset in datasets:
        for seed_ratio in seed_ratios:
            task = build_task(dataset, scale, seed_ratio=seed_ratio)
            for model_name in basic_models:
                cell = run_cell(model_name, task, scale, iterative=False)
                result.add_row(
                    dataset=dataset,
                    seed_ratio=seed_ratio,
                    strategy="basic",
                    model=model_name,
                    **format_metrics(cell.metrics),
                )
            if not include_iterative:
                continue
            for model_name in iterative_models:
                cell = run_cell(model_name, task, scale, iterative=True)
                result.add_row(
                    dataset=dataset,
                    seed_ratio=seed_ratio,
                    strategy="iterative",
                    model=model_name,
                    **format_metrics(cell.metrics),
                )
    return result
