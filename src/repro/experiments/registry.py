"""Registry mapping paper artefacts (tables / figures) to experiment runners.

``EXPERIMENTS[experiment_id]`` is a zero-configuration callable returning an
:class:`~repro.experiments.reporting.ExperimentResult`; every runner also
accepts an :class:`~repro.experiments.runner.ExperimentScale` to trade speed
for fidelity.  The benchmark suite under ``benchmarks/`` calls these runners
one table/figure at a time.
"""

from __future__ import annotations

from .efficiency import run_efficiency
from .energy_analysis import run_energy_analysis
from .fig3_ablation import run_fig3_ablation
from .fig3_weak_supervision import run_fig3_weak_supervision
from .fig4_propagation_iters import run_fig4_propagation
from .reporting import ExperimentResult
from .robustness import run_robustness
from .runner import ExperimentScale, QUICK_SCALE
from .table2_text_ratio import run_table2
from .table3_image_ratio import run_table3
from .table4_monolingual import run_table4
from .table5_bilingual import run_table5

__all__ = ["EXPERIMENTS", "run_experiment", "list_experiments"]

#: Experiment id -> (runner, human description of the paper artefact).
EXPERIMENTS = {
    "table2": (run_table2, "Table II — robustness to missing text attributes"),
    "table3": (run_table3, "Table III — robustness to missing images"),
    "table4": (run_table4, "Table IV — monolingual main results"),
    "table5": (run_table5, "Table V — bilingual main results"),
    "table6_efficiency": (run_efficiency, "Sec. V-E — efficiency analysis"),
    "fig3_left": (run_fig3_ablation, "Fig. 3 (left) — ablation study"),
    "fig3_right": (run_fig3_weak_supervision, "Fig. 3 (right) — weakly supervised sweep"),
    "fig4": (run_fig4_propagation, "Fig. 4 — propagation iteration sweep"),
    "fig_energy": (run_energy_analysis, "Sec. III — Dirichlet-energy over-smoothing analysis"),
    "robustness": (run_robustness, "Robustness — graceful degradation under "
                                   "declarative corruption injection"),
}


def list_experiments() -> list[tuple[str, str]]:
    """Return ``(experiment_id, description)`` for every registered experiment."""
    return [(key, description) for key, (_, description) in EXPERIMENTS.items()]


def run_experiment(experiment_id: str, scale: ExperimentScale = QUICK_SCALE,
                   **kwargs) -> ExperimentResult:
    """Run a registered experiment by id at the requested scale."""
    if experiment_id not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {experiment_id!r}; "
                       f"known: {sorted(EXPERIMENTS)}")
    runner, _ = EXPERIMENTS[experiment_id]
    return runner(scale=scale, **kwargs)
