"""Dirichlet-energy analysis (Sec. III) — over-smoothing under inconsistency.

The paper's motivating observation is that, with semantically inconsistent
inputs, a plain deep semantic encoder drives the Dirichlet energy of its
output towards zero (over-smoothing), whereas training with the MMSL
objective keeps the energy of the final representation bounded away from
zero relative to the initial representation.

This runner quantifies that claim on a high-missing-ratio split: it trains
(a) DESAlign with the full MMSL objective and (b) a stripped variant with
only the final-layer task loss (the "naive deep encoder" regime), recording
the energy retention ratio ``E(X^(k)) / E(X^(0))`` through training, and it
additionally reports the raw effect of repeated propagation on untrained
features (energy decays monotonically — the low-pass-filter view of Eq. 21).
"""

from __future__ import annotations

import numpy as np

from ..core.compat import spec_driven
from ..core.config import DESAlignConfig
from ..core.energy import EnergyMonitor
from ..core.propagation import SemanticPropagation
from ..core.trainer import Trainer
from ..core.config import TrainingConfig
from ..baselines import build_model
from ..kg.laplacian import dirichlet_energy
from .reporting import ExperimentResult
from .runner import ExperimentScale, QUICK_SCALE, build_task

__all__ = ["run_energy_analysis"]


def _train_with_monitor(task, config: DESAlignConfig, scale: ExperimentScale,
                        label: str, result: ExperimentResult) -> None:
    model = build_model("DESAlign", task, config=config)
    monitor = EnergyMonitor(laplacian=task.source.laplacian)
    training = TrainingConfig(epochs=scale.epochs, eval_every=max(1, scale.epochs // 6),
                              seed=scale.seed)
    # The energy monitor hooks into the Trainer engine directly (the facade
    # carries no monitor yet); spec_driven() keeps the deprecation shim
    # quiet on this library-internal call.
    with spec_driven():
        Trainer(model, task, training, energy_monitor=monitor).fit()
    for snapshot in monitor.history:
        result.add_row(
            variant=label,
            step=snapshot.step,
            energy_initial=round(snapshot.original, 4),
            energy_final=round(snapshot.fused, 4),
            retention_ratio=round(snapshot.ratio(), 4),
        )


def run_energy_analysis(scale: ExperimentScale = QUICK_SCALE,
                        dataset: str = "FBDB15K",
                        image_ratio: float = 0.2,
                        text_ratio: float = 0.2) -> ExperimentResult:
    """Regenerate the Dirichlet-energy over-smoothing analysis of Sec. III."""
    result = ExperimentResult(
        experiment="fig_energy",
        description="Dirichlet energy retention with and without MMSL (Sec. III)",
        parameters={"scale": scale.__dict__, "dataset": dataset,
                    "image_ratio": image_ratio, "text_ratio": text_ratio},
    )
    task = build_task(dataset, scale, seed_ratio=0.2,
                      image_ratio=image_ratio, text_ratio=text_ratio)

    full = DESAlignConfig(hidden_dim=scale.hidden_dim, seed=scale.seed)
    naive = full.with_overrides(use_initial_task_loss=False,
                                use_previous_modal_loss=False,
                                use_final_modal_loss=False,
                                use_min_confidence=False)
    _train_with_monitor(task, full, scale, "MMSL (full objective)", result)
    _train_with_monitor(task, naive, scale, "naive (final task loss only)", result)

    # Low-pass-filter view of propagation: energy decays with every round.
    features = task.source.features.features["vision"]
    propagation = SemanticPropagation(iterations=5, reset_known=False)
    states = propagation.propagate_features(features, task.source.adjacency)
    for round_index, state in enumerate(states):
        result.add_row(
            variant="propagation energy decay",
            step=round_index,
            energy_initial=round(dirichlet_energy(states[0], task.source.laplacian), 4),
            energy_final=round(dirichlet_energy(state, task.source.laplacian), 4),
            retention_ratio=round(
                dirichlet_energy(state, task.source.laplacian)
                / max(dirichlet_energy(states[0], task.source.laplacian), 1e-12), 4),
        )
    return result
