"""Figure 3 (right) — weakly supervised setting.

Sweeps the seed-alignment ratio ``R_seed`` from 1% to 30% on the
monolingual FBDB15K and the bilingual DBP15K FR-EN tasks, comparing
DESAlign with the prominent baselines.  Expected shape: a consistent gap in
favour of DESAlign at every ratio, widening at the smallest ratios, with
every model improving monotonically (on average) as supervision grows.
"""

from __future__ import annotations

from .reporting import ExperimentResult, format_metrics
from .runner import ExperimentScale, PROMINENT_MODELS, QUICK_SCALE, build_task, run_cell

__all__ = ["run_fig3_weak_supervision", "DEFAULT_WEAK_RATIOS"]

DEFAULT_WEAK_RATIOS = (0.01, 0.08, 0.15, 0.23, 0.30)
DEFAULT_DATASETS = ("FBDB15K", "DBP15K_FR_EN")


def run_fig3_weak_supervision(scale: ExperimentScale = QUICK_SCALE,
                              datasets: tuple[str, ...] = DEFAULT_DATASETS,
                              seed_ratios: tuple[float, ...] = DEFAULT_WEAK_RATIOS,
                              models: tuple[str, ...] = PROMINENT_MODELS) -> ExperimentResult:
    """Regenerate the weak-supervision sweep of Fig. 3 (right)."""
    result = ExperimentResult(
        experiment="fig3_right",
        description="Weakly supervised setting: H@1/MRR vs seed ratio (Fig. 3, right)",
        parameters={"scale": scale.__dict__, "datasets": list(datasets),
                    "seed_ratios": list(seed_ratios), "models": list(models)},
    )
    for dataset in datasets:
        for seed_ratio in seed_ratios:
            task = build_task(dataset, scale, seed_ratio=seed_ratio)
            for model_name in models:
                cell = run_cell(model_name, task, scale)
                result.add_row(
                    dataset=dataset,
                    seed_ratio=seed_ratio,
                    model=model_name,
                    **format_metrics(cell.metrics),
                )
    return result
