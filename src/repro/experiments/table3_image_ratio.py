"""Table III — robustness to missing images on the bilingual DBP15K datasets.

For each ``R_img`` in {5%, 20%, 30%, 40%, 50%, 60%} the prominent models are
trained on DBP15K ZH-EN / JA-EN / FR-EN splits where only that fraction of
entities keeps a visual feature.  Expected shape: DESAlign leads every
column and its accuracy increases monotonically with the image ratio, while
baselines are markedly more sensitive to the missing-image ratio.
"""

from __future__ import annotations

from ..data.benchmarks import BILINGUAL_DATASETS, MISSING_RATIOS
from .reporting import ExperimentResult, format_metrics
from .runner import ExperimentScale, PROMINENT_MODELS, QUICK_SCALE, build_task, run_cell

__all__ = ["run_table3"]


def run_table3(scale: ExperimentScale = QUICK_SCALE,
               datasets: tuple[str, ...] = BILINGUAL_DATASETS,
               image_ratios: tuple[float, ...] = MISSING_RATIOS,
               models: tuple[str, ...] = PROMINENT_MODELS) -> ExperimentResult:
    """Regenerate Table III (missing images, bilingual datasets)."""
    result = ExperimentResult(
        experiment="table3",
        description="Main results with varying ratio of images (Table III)",
        parameters={"scale": scale.__dict__, "datasets": list(datasets),
                    "image_ratios": list(image_ratios), "models": list(models)},
    )
    for dataset in datasets:
        for image_ratio in image_ratios:
            task = build_task(dataset, scale, image_ratio=image_ratio)
            for model_name in models:
                cell = run_cell(model_name, task, scale)
                result.add_row(
                    dataset=dataset,
                    image_ratio=image_ratio,
                    model=model_name,
                    **format_metrics(cell.metrics),
                )
    return result
