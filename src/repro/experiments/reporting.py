"""Result containers and plain-text table rendering for the experiment harness.

Every experiment runner returns an :class:`ExperimentResult`: a list of rows
(dictionaries) plus metadata, with helpers to render the same row/column
layout the paper's tables use and to persist results as JSON for
``EXPERIMENTS.md``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["ExperimentResult", "format_table", "format_metrics"]


def format_metrics(metrics) -> dict[str, float]:
    """Convert an AlignmentMetrics (or mapping) into percentage-valued columns."""
    if hasattr(metrics, "as_dict"):
        metrics = metrics.as_dict()
    return {key: round(100.0 * value, 1) for key, value in metrics.items()}


def format_table(rows: list[dict], columns: list[str] | None = None,
                 float_format: str = "{:.1f}") -> str:
    """Render rows as an aligned plain-text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    rendered: list[list[str]] = []
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                # Ratios below 1 keep two decimals so 0.05 is not shown as 0.1.
                chosen = "{:.2f}" if abs(value) < 1.0 else float_format
                cells.append(chosen.format(value))
            else:
                cells.append(str(value))
        rendered.append(cells)
    widths = [max(len(column), *(len(line[i]) for line in rendered))
              for i, column in enumerate(columns)]
    header = "  ".join(column.ljust(width) for column, width in zip(columns, widths))
    separator = "  ".join("-" * width for width in widths)
    body = "\n".join("  ".join(cell.ljust(width) for cell, width in zip(line, widths))
                     for line in rendered)
    return "\n".join([header, separator, body])


@dataclass
class ExperimentResult:
    """Outcome of one experiment runner (one table or figure)."""

    experiment: str
    description: str
    rows: list[dict] = field(default_factory=list)
    parameters: dict = field(default_factory=dict)

    def add_row(self, **values) -> dict:
        self.rows.append(dict(values))
        return self.rows[-1]

    def filter(self, **criteria) -> list[dict]:
        """Rows matching every ``column=value`` criterion."""
        matched = []
        for row in self.rows:
            if all(row.get(key) == value for key, value in criteria.items()):
                matched.append(row)
        return matched

    def column(self, name: str, **criteria) -> list:
        """Values of one column over the rows matching ``criteria``."""
        return [row[name] for row in self.filter(**criteria) if name in row]

    def best_row(self, metric: str = "MRR", **criteria) -> dict:
        rows = self.filter(**criteria) if criteria else self.rows
        if not rows:
            raise ValueError("no rows matching the criteria")
        return max(rows, key=lambda row: row.get(metric, float("-inf")))

    def to_table(self, columns: list[str] | None = None) -> str:
        header = f"== {self.experiment}: {self.description} =="
        return header + "\n" + format_table(self.rows, columns)

    def to_json(self, path: str | Path | None = None) -> str:
        payload = json.dumps({
            "experiment": self.experiment,
            "description": self.description,
            "parameters": self.parameters,
            "rows": self.rows,
        }, indent=2)
        if path is not None:
            Path(path).parent.mkdir(parents=True, exist_ok=True)
            Path(path).write_text(payload, encoding="utf-8")
        return payload
