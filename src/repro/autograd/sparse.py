"""Sparse differentiable primitives: ``spmm`` and segment operations.

These extend the autograd substrate with the three operations the sparse
graph backend needs:

* :func:`spmm` — multiply a *constant* (sparse or dense) matrix with a
  differentiable :class:`Tensor`; the backward pass multiplies by the
  transpose, so gradients never densify the matrix;
* :func:`segment_sum` — scatter-add rows of a tensor into segments, the
  adjoint of row gathering (``index_select``); together they express
  edge-list message passing;
* :func:`segment_softmax` — softmax over variable-sized segments of a score
  vector (one segment per destination node), the sparse counterpart of the
  masked dense attention softmax.

Each primitive is covered by numerical gradient checks in
``tests/autograd/test_sparse_ops.py``.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .tensor import Tensor

__all__ = ["spmm", "segment_sum", "segment_softmax"]


def spmm(matrix, x: Tensor) -> Tensor:
    """Sparse(-or-dense) matrix @ dense Tensor, differentiable in ``x``.

    ``matrix`` is treated as a constant (no gradient is accumulated for it);
    the backward pass is ``grad_x = matrix.T @ grad_out``.  Accepts a scipy
    sparse matrix or a plain ndarray, so callers can dispatch on a single
    code path for both backends.
    """
    x = Tensor.ensure(x)
    if sp.issparse(matrix):
        if matrix.format == "csr" and matrix.dtype == np.float64:
            operator = matrix
        else:
            operator = matrix.tocsr().astype(np.float64)
        transpose = operator.T  # CSC view of the same data, no copy
    else:
        operator = np.asarray(matrix, dtype=np.float64)
        transpose = operator.T

    def backward(out: Tensor) -> None:
        x._accumulate(np.asarray(transpose @ out.grad))

    return x._make_result(np.asarray(operator @ x.data), (x,), backward)


def _sorted_segment_starts(segment_ids: np.ndarray,
                           num_segments: int) -> tuple[np.ndarray, np.ndarray] | None:
    """``(nonempty_mask, slice_starts)`` when ids are sorted, else ``None``.

    Sorted segment ids (the case produced by ``edge_index``) allow the much
    faster ``ufunc.reduceat`` over contiguous slices instead of the
    unbuffered ``ufunc.at`` scatter.  The reduction may use pairwise
    summation internally, so results can differ from the scatter path at
    the last-ULP level — well inside the tolerances the dense/sparse
    equivalence tests assert.
    """
    if len(segment_ids) == 0 or np.any(np.diff(segment_ids) < 0):
        return None
    counts = np.bincount(segment_ids, minlength=num_segments)
    nonempty = counts > 0
    starts = (np.cumsum(counts) - counts)[nonempty]
    return nonempty, starts


def segment_sum(values: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Sum rows of ``values`` into ``num_segments`` buckets along axis 0.

    ``out[s] = sum_{k : segment_ids[k] == s} values[k]``.  The backward pass
    gathers: ``grad_values[k] = grad_out[segment_ids[k]]``.
    """
    values = Tensor.ensure(values)
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    if segment_ids.ndim != 1 or len(segment_ids) != values.shape[0]:
        raise ValueError("segment_ids must be 1-D with one id per row of values")
    result = np.zeros((num_segments,) + values.data.shape[1:], dtype=np.float64)
    sorted_layout = _sorted_segment_starts(segment_ids, num_segments)
    if sorted_layout is not None:
        nonempty, starts = sorted_layout
        result[nonempty] = np.add.reduceat(values.data, starts, axis=0)
    else:
        np.add.at(result, segment_ids, values.data)

    def backward(out: Tensor) -> None:
        values._accumulate(out.grad[segment_ids])

    return values._make_result(result, (values,), backward)


def segment_softmax(scores: Tensor, segment_ids: np.ndarray,
                    num_segments: int) -> Tensor:
    """Softmax of ``scores`` within each segment (numerically stabilised).

    Equivalent to a dense row-wise softmax where row ``s`` holds the scores
    of the entries with ``segment_ids == s`` and every other position is
    masked to ``-inf``; empty segments simply produce no output entries.
    """
    scores = Tensor.ensure(scores)
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    maxima = np.full((num_segments,) + scores.data.shape[1:], -np.inf)
    sorted_layout = _sorted_segment_starts(segment_ids, num_segments)
    if sorted_layout is not None:
        nonempty, starts = sorted_layout
        maxima[nonempty] = np.maximum.reduceat(scores.data, starts, axis=0)
    else:
        np.maximum.at(maxima, segment_ids, scores.data)
    shifted = scores - Tensor(maxima[segment_ids])
    exponentials = shifted.exp()
    denominators = segment_sum(exponentials, segment_ids, num_segments)
    return exponentials / denominators.index_select(segment_ids)
