"""Differentiable functional building blocks used across the model zoo.

These functions compose the primitive :class:`~repro.autograd.tensor.Tensor`
operations into the higher-level pieces required by DESAlign and the
baselines: numerically stable softmax / log-softmax, layer normalisation,
dropout, L2 normalisation, cosine-similarity matrices and cross entropy.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = [
    "softmax",
    "log_softmax",
    "layer_norm",
    "dropout",
    "l2_normalize",
    "cosine_similarity_matrix",
    "cross_entropy_with_logits",
    "mse_loss",
]


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def layer_norm(x: Tensor, gain: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalisation over the last dimension with affine parameters."""
    mean = x.mean(axis=-1, keepdims=True)
    centered = x - mean
    variance = (centered * centered).mean(axis=-1, keepdims=True)
    normalised = centered / (variance + eps).sqrt()
    return normalised * gain + bias


def dropout(x: Tensor, rate: float, training: bool, rng: np.random.Generator) -> Tensor:
    """Inverted dropout: identity at evaluation time."""
    if not training or rate <= 0.0:
        return x
    keep = 1.0 - rate
    mask = (rng.random(x.shape) < keep).astype(np.float64) / keep
    return x * Tensor(mask)


def l2_normalize(x: Tensor, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Normalise rows of ``x`` to unit L2 norm."""
    return x / x.norm(axis=axis, keepdims=True, eps=eps)


def cosine_similarity_matrix(a: Tensor, b: Tensor) -> Tensor:
    """Pairwise cosine similarity between rows of ``a`` and rows of ``b``."""
    return l2_normalize(a) @ l2_normalize(b).T


def cross_entropy_with_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross entropy of integer ``targets`` under row-wise ``logits``."""
    targets = np.asarray(targets, dtype=np.int64)
    log_probs = log_softmax(logits, axis=-1)
    rows = np.arange(len(targets))
    picked = log_probs[(rows, targets)]
    return -picked.mean()


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error between two tensors."""
    target = Tensor.ensure(target)
    diff = prediction - target.detach()
    return (diff * diff).mean()
