"""Numerical gradient checking for autograd operations and modules.

Used extensively by the test-suite to validate that every differentiable
operation (and every layer built on top of them) backpropagates the correct
gradient: analytic gradients from the tape are compared against central
finite differences.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor

__all__ = ["numerical_gradient", "check_gradients"]


def numerical_gradient(fn: Callable[[Sequence[Tensor]], Tensor],
                       inputs: Sequence[Tensor],
                       index: int,
                       eps: float = 1e-6) -> np.ndarray:
    """Central finite-difference gradient of ``fn`` w.r.t. ``inputs[index]``."""
    base = inputs[index].data
    grad = np.zeros_like(base)
    flat = base.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        upper = fn(inputs).item()
        flat[i] = original - eps
        lower = fn(inputs).item()
        flat[i] = original
        grad_flat[i] = (upper - lower) / (2.0 * eps)
    return grad


def check_gradients(fn: Callable[[Sequence[Tensor]], Tensor],
                    inputs: Sequence[Tensor],
                    atol: float = 1e-5,
                    rtol: float = 1e-4,
                    eps: float = 1e-6) -> bool:
    """Compare analytic and numerical gradients of a scalar-valued ``fn``.

    Raises ``AssertionError`` with a diagnostic message on mismatch so test
    failures point directly at the offending input.
    """
    for tensor in inputs:
        tensor.zero_grad()
    output = fn(inputs)
    output.backward()
    for index, tensor in enumerate(inputs):
        if not tensor.requires_grad:
            continue
        analytic = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        numeric = numerical_gradient(fn, inputs, index, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.max(np.abs(analytic - numeric))
            raise AssertionError(
                f"gradient mismatch for input {index}: max abs error {worst:.3e}"
            )
    return True
