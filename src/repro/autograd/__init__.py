"""Numpy-based reverse-mode automatic differentiation substrate."""

from .tensor import Tensor, no_grad, is_grad_enabled
from .functional import (
    softmax,
    log_softmax,
    layer_norm,
    dropout,
    l2_normalize,
    cosine_similarity_matrix,
    cross_entropy_with_logits,
    mse_loss,
)
from .sparse import spmm, segment_sum, segment_softmax
from .gradcheck import numerical_gradient, check_gradients

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "spmm",
    "segment_sum",
    "segment_softmax",
    "softmax",
    "log_softmax",
    "layer_norm",
    "dropout",
    "l2_normalize",
    "cosine_similarity_matrix",
    "cross_entropy_with_logits",
    "mse_loss",
    "numerical_gradient",
    "check_gradients",
]
