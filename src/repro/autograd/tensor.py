"""Reverse-mode automatic differentiation on top of numpy.

This module is the computational substrate for the whole reproduction: the
paper's models (GAT encoders, cross-modal attention, contrastive losses) are
built from :class:`Tensor` operations defined here.  The design mirrors the
familiar define-by-run style of PyTorch: every operation records a backward
closure, and :meth:`Tensor.backward` walks the tape in reverse topological
order accumulating gradients.

Only the operations required by the DESAlign reproduction are implemented,
but each one supports full numpy broadcasting and is covered by numerical
gradient checks in ``tests/autograd``.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager disabling gradient tape recording.

    Used during evaluation and semantic propagation, where the paper's
    Algorithm 1 explicitly operates outside the training loop.
    """
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradients."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over dimensions that were broadcast from size 1.
    axes = tuple(i for i, size in enumerate(shape) if size == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value) -> np.ndarray:
    if isinstance(value, np.ndarray):
        return value.astype(np.float64, copy=False)
    return np.asarray(value, dtype=np.float64)


class Tensor:
    """A numpy-backed array with reverse-mode autodiff support."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "name")

    __array_priority__ = 100.0  # ensure numpy defers to Tensor operators

    def __init__(self, data, requires_grad: bool = False, name: str | None = None):
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: np.ndarray | None = None
        self._backward: Callable[[], None] | None = None
        self._prev: tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def ensure(value) -> "Tensor":
        """Coerce ``value`` into a :class:`Tensor` (no-op when it already is)."""
        return value if isinstance(value, Tensor) else Tensor(value)

    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    @staticmethod
    def eye(n: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.eye(n), requires_grad=requires_grad)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        if self.data.size != 1:
            raise ValueError("item() requires a tensor with exactly one element")
        return float(self.data.reshape(-1)[0])

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the tape."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    # ------------------------------------------------------------------
    # Tape plumbing
    # ------------------------------------------------------------------
    def _make_result(self, data: np.ndarray, parents: Sequence["Tensor"],
                     backward: Callable[["Tensor"], None]) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._prev = tuple(parents)
            out._backward = lambda: backward(out)
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        grad = _unbroadcast(grad, self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def zero_grad(self) -> None:
        self.grad = None

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded tape."""
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar tensors")
            grad = np.ones_like(self.data)
        self.grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited:
                    stack.append((parent, False))

        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward()

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = Tensor.ensure(other)

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad)
            other._accumulate(out.grad)

        return self._make_result(self.data + other.data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(out: Tensor) -> None:
            self._accumulate(-out.grad)

        return self._make_result(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        other = Tensor.ensure(other)

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad)
            other._accumulate(-out.grad)

        return self._make_result(self.data - other.data, (self, other), backward)

    def __rsub__(self, other) -> "Tensor":
        return Tensor.ensure(other) - self

    def __mul__(self, other) -> "Tensor":
        other = Tensor.ensure(other)

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * other.data)
            other._accumulate(out.grad * self.data)

        return self._make_result(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = Tensor.ensure(other)

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad / other.data)
            other._accumulate(-out.grad * self.data / (other.data ** 2))

        return self._make_result(self.data / other.data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return Tensor.ensure(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * exponent * np.power(self.data, exponent - 1))

        return self._make_result(np.power(self.data, exponent), (self,), backward)

    # ------------------------------------------------------------------
    # Elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        value = np.exp(self.data)

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * value)

        return self._make_result(value, (self,), backward)

    def log(self) -> "Tensor":
        def backward(out: Tensor) -> None:
            self._accumulate(out.grad / self.data)

        return self._make_result(np.log(self.data), (self,), backward)

    def sqrt(self) -> "Tensor":
        value = np.sqrt(self.data)

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * 0.5 / value)

        return self._make_result(value, (self,), backward)

    def tanh(self) -> "Tensor":
        value = np.tanh(self.data)

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * (1.0 - value ** 2))

        return self._make_result(value, (self,), backward)

    def sigmoid(self) -> "Tensor":
        value = 1.0 / (1.0 + np.exp(-self.data))

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * value * (1.0 - value))

        return self._make_result(value, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * mask)

        return self._make_result(self.data * mask, (self,), backward)

    def leaky_relu(self, negative_slope: float = 0.2) -> "Tensor":
        mask = np.where(self.data > 0, 1.0, negative_slope)

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * mask)

        return self._make_result(self.data * mask, (self,), backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * sign)

        return self._make_result(np.abs(self.data), (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        mask = (self.data >= low) & (self.data <= high)

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * mask)

        return self._make_result(np.clip(self.data, low, high), (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        value = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(out: Tensor) -> None:
            grad = out.grad
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis=axis)
            self._accumulate(np.broadcast_to(grad, self.data.shape))

        return self._make_result(value, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.data.shape[a] for a in axis]))
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        value = self.data.max(axis=axis, keepdims=keepdims)

        def backward(out: Tensor) -> None:
            grad = out.grad
            expanded = value
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis=axis)
                expanded = np.expand_dims(value, axis=axis)
            mask = (self.data == expanded).astype(np.float64)
            # Split the gradient evenly among ties to keep it well defined.
            mask /= np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
            self._accumulate(grad * mask)

        return self._make_result(value, (self,), backward)

    def norm(self, axis=None, keepdims: bool = False, eps: float = 1e-12) -> "Tensor":
        """L2 norm along ``axis`` (smoothed to stay differentiable at zero)."""
        squared = (self * self).sum(axis=axis, keepdims=keepdims)
        return (squared + eps).sqrt()

    # ------------------------------------------------------------------
    # Linear algebra and shape manipulation
    # ------------------------------------------------------------------
    def matmul(self, other) -> "Tensor":
        other = Tensor.ensure(other)
        value = self.data @ other.data

        def backward(out: Tensor) -> None:
            grad = out.grad
            if self.requires_grad:
                if other.data.ndim == 1:
                    self._accumulate(np.outer(grad, other.data) if self.data.ndim == 2
                                     else grad * other.data)
                else:
                    self._accumulate(grad @ np.swapaxes(other.data, -1, -2))
            if other.requires_grad:
                if self.data.ndim == 1:
                    other._accumulate(np.outer(self.data, grad))
                else:
                    other._accumulate(np.swapaxes(self.data, -1, -2) @ grad)

        return self._make_result(value, (self, other), backward)

    __matmul__ = matmul

    def transpose(self, axes: Iterable[int] | None = None) -> "Tensor":
        axes_tuple = tuple(axes) if axes is not None else tuple(reversed(range(self.ndim)))
        inverse = np.argsort(axes_tuple)

        def backward(out: Tensor) -> None:
            self._accumulate(np.transpose(out.grad, inverse))

        return self._make_result(np.transpose(self.data, axes_tuple), (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad.reshape(original))

        return self._make_result(self.data.reshape(shape), (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        def backward(out: Tensor) -> None:
            grad = np.zeros_like(self.data)
            np.add.at(grad, index, out.grad)
            self._accumulate(grad)

        return self._make_result(self.data[index], (self,), backward)

    def index_select(self, indices) -> "Tensor":
        """Gather rows by integer ``indices`` (first axis)."""
        indices = np.asarray(indices, dtype=np.int64)
        return self[indices]

    # ------------------------------------------------------------------
    # Static combinators
    # ------------------------------------------------------------------
    @staticmethod
    def concat(tensors: Sequence["Tensor"], axis: int = -1) -> "Tensor":
        tensors = [Tensor.ensure(t) for t in tensors]
        value = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.data.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(out: Tensor) -> None:
            for tensor, start, end in zip(tensors, offsets[:-1], offsets[1:]):
                slicer = [slice(None)] * out.grad.ndim
                slicer[axis] = slice(start, end)
                tensor._accumulate(out.grad[tuple(slicer)])

        requires = _GRAD_ENABLED and any(t.requires_grad for t in tensors)
        out = Tensor(value, requires_grad=requires)
        if requires:
            out._prev = tuple(tensors)
            out._backward = lambda: backward(out)
        return out

    @staticmethod
    def stack(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor.ensure(t) for t in tensors]
        value = np.stack([t.data for t in tensors], axis=axis)

        def backward(out: Tensor) -> None:
            grads = np.split(out.grad, len(tensors), axis=axis)
            for tensor, grad in zip(tensors, grads):
                tensor._accumulate(np.squeeze(grad, axis=axis))

        requires = _GRAD_ENABLED and any(t.requires_grad for t in tensors)
        out = Tensor(value, requires_grad=requires)
        if requires:
            out._prev = tuple(tensors)
            out._backward = lambda: backward(out)
        return out

    @staticmethod
    def where(condition: np.ndarray, a: "Tensor", b: "Tensor") -> "Tensor":
        a = Tensor.ensure(a)
        b = Tensor.ensure(b)
        condition = np.asarray(condition, dtype=bool)
        value = np.where(condition, a.data, b.data)

        def backward(out: Tensor) -> None:
            a._accumulate(out.grad * condition)
            b._accumulate(out.grad * (~condition))

        requires = _GRAD_ENABLED and (a.requires_grad or b.requires_grad)
        out = Tensor(value, requires_grad=requires)
        if requires:
            out._prev = (a, b)
            out._backward = lambda: backward(out)
        return out
