"""Thread-safe LRU result cache for served rank rows.

Keys are ``(generation, fingerprint, k, entity_id)`` tuples — the engine's
artifact generation and the aligner's decode fingerprint together pin the
exact decode configuration, so a cached row can never outlive the
parameters that produced it (hot-swap bumps the generation and clears the
cache).  Values are per-entity ``(target_ids, scores, approximate)``
triples; serving a hot entity is then a dictionary lookup instead of a
decode.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

__all__ = ["ResultCache"]


class ResultCache:
    """Bounded LRU mapping with hit/miss/eviction counters."""

    def __init__(self, max_entries: int = 4096):
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = int(max_entries)
        self._lock = threading.Lock()
        self._entries: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key):
        """The cached value (refreshing its recency) or ``None``."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key, value) -> None:
        """Insert (or refresh) ``key``, evicting the least recent overflow."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def keys(self) -> list:
        """Current keys, least recent first (tests inspect eviction order)."""
        with self._lock:
            return list(self._entries)

    def clear(self) -> int:
        """Drop every entry (hot-swap invalidation); returns the count."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            return dropped

    def stats(self) -> dict:
        """Counter snapshot; ``hit_rate`` is over all lookups so far."""
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": (self.hits / lookups) if lookups else 0.0,
            }
