"""Thread-safe result cache for served rank rows.

Keys are ``(generation, fingerprint, k, entity_id)`` tuples — the engine's
artifact generation and the aligner's decode fingerprint together pin the
exact decode configuration, so a cached row can never outlive the
parameters that produced it (hot-swap bumps the generation and clears the
cache).  Values are per-entity ``(target_ids, scores, approximate)``
triples; serving a hot entity is then a dictionary lookup instead of a
decode.

Two admission policies are available.  ``"lru"`` admits every insert and
evicts the least recently used entry on overflow.  ``"frequency"``
(TinyLFU-style, the engine's default) keeps a count-min sketch of access
frequencies and, when the cache is full, only admits a new key if its
estimated frequency exceeds that of the LRU victim it would displace —
so a flood of one-shot keys (an adversarial scan, a cold crawl) cannot
wash the hot working set out of the cache.
"""

from __future__ import annotations

import threading
import zlib
from collections import OrderedDict

import numpy as np

__all__ = ["FrequencySketch", "ResultCache"]

ADMISSION_POLICIES = ("lru", "frequency")


class FrequencySketch:
    """Count-min sketch with periodic halving (TinyLFU-style aging).

    ``touch`` bumps a key's estimate across ``depth`` hashed rows;
    ``estimate`` reads the row minimum.  After every ``sample_size``
    touches all counters are halved, so the sketch tracks *recent*
    popularity and one-time keys decay back toward zero instead of
    accumulating forever.  Hashing is seeded and deterministic — the same
    access sequence always yields the same estimates.
    """

    def __init__(self, width: int = 1024, depth: int = 4,
                 sample_size: int | None = None, seed: int = 0):
        if width <= 0 or depth <= 0:
            raise ValueError("width and depth must be positive")
        self.width = int(width)
        self.depth = int(depth)
        self.sample_size = (10 * self.width if sample_size is None
                            else int(sample_size))
        rng = np.random.default_rng(seed)
        # Odd multipliers for a multiply-shift family; one row per depth.
        self._salts = tuple(
            int(salt) | 1
            for salt in rng.integers(1, 2**31, size=self.depth))
        self._tables = np.zeros((self.depth, self.width), dtype=np.uint32)
        self._touches = 0

    def _indices(self, key) -> list[int]:
        # CRC32 of the key's repr: stable across processes (unlike str
        # hash randomisation).  Each row remixes the digest with its own
        # odd salt and folds the high bits back in before reducing, so
        # two distinct digests collide per-row independently instead of
        # colliding in every row at once.
        digest = zlib.crc32(repr(key).encode())
        indices = []
        for salt in self._salts:
            mixed = (digest * salt) & 0xFFFFFFFF
            indices.append(((mixed >> 15) ^ mixed) % self.width)
        return indices

    def touch(self, key) -> None:
        """Record one access to ``key`` (ages the sketch periodically)."""
        for row, index in enumerate(self._indices(key)):
            self._tables[row, index] += 1
        self._touches += 1
        if self._touches >= self.sample_size:
            self._tables >>= 1
            self._touches = 0

    def estimate(self, key) -> int:
        """The (over-)estimated recent access count of ``key``."""
        return int(min(self._tables[row, index]
                       for row, index in enumerate(self._indices(key))))


class ResultCache:
    """Bounded mapping with hit/miss/eviction/rejection counters.

    ``admission="lru"`` (the class default, preserving plain-LRU
    behaviour) admits unconditionally; ``admission="frequency"`` gates
    inserts through a :class:`FrequencySketch` when the cache is full.
    """

    def __init__(self, max_entries: int = 4096, admission: str = "lru"):
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        if admission not in ADMISSION_POLICIES:
            raise ValueError(
                f"admission must be one of {ADMISSION_POLICIES}, "
                f"got {admission!r}")
        self.max_entries = int(max_entries)
        self.admission = admission
        self._lock = threading.Lock()
        self._entries: OrderedDict = OrderedDict()
        self._sketch = (FrequencySketch() if admission == "frequency"
                        else None)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: Inserts refused by the frequency gate (key colder than victim).
        self.rejections = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key):
        """The cached value (refreshing its recency) or ``None``."""
        with self._lock:
            if self._sketch is not None:
                self._sketch.touch(key)
            try:
                value = self._entries[key]
            except KeyError:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key, value) -> None:
        """Insert (or refresh) ``key``, evicting the least recent overflow.

        Under frequency admission a *new* key arriving at a full cache is
        only admitted when the sketch estimates it at least as popular as
        the LRU victim it would displace; otherwise the insert is counted
        in ``rejections`` and dropped.  Refreshes of resident keys are
        always applied.
        """
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
                return
            if (self._sketch is not None
                    and len(self._entries) >= self.max_entries):
                victim = next(iter(self._entries))
                if (self._sketch.estimate(key)
                        < self._sketch.estimate(victim)):
                    self.rejections += 1
                    return
            self._entries[key] = value
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def keys(self) -> list:
        """Current keys, least recent first (tests inspect eviction order)."""
        with self._lock:
            return list(self._entries)

    def clear(self) -> int:
        """Drop every entry (hot-swap invalidation); returns the count."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            return dropped

    def stats(self) -> dict:
        """Counter snapshot; ``hit_rate`` is over all lookups so far."""
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "admission": self.admission,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "rejections": self.rejections,
                "hit_rate": (self.hits / lookups) if lookups else 0.0,
            }
