"""Newline-delimited JSON protocol over a :class:`ServingEngine`.

One request per line, one response per line::

    {"op": "rank", "id": 1, "entities": [3, 17], "k": 5}
    {"id": 1, "ok": true, "result": {"entities": [3, 17], "k": 5,
     "targets": [[...], [...]], "scores": [[...], [...]],
     "approximate": true}}

Operations: ``rank`` (``entities``, optional ``k`` / ``timeout``),
``stats``, ``swap`` (``artifact`` directory, optional ``mmap``), ``ping``
and ``shutdown``.  Failures answer ``{"ok": false, "error": {"code",
"message"}}`` with codes ``bad_request`` / ``timeout`` / ``overloaded`` /
``worker_died`` / ``shutdown`` / ``internal``; a failed request never
takes the server down.  The ``repro serve`` CLI speaks this protocol over
stdin/stdout; :class:`ServingClient` speaks it in-process (tests and
embedding) and can retry *transient* failures — only the codes in
:data:`RETRYABLE_CODES` — with capped exponential backoff and
deterministic seeded jitter.
"""

from __future__ import annotations

import json
import random
import time

from .engine import ServingEngine, ServingError

__all__ = ["ServingServer", "ServingClient", "RETRYABLE_CODES"]

#: Error codes a retry can plausibly fix: transient load and liveness
#: conditions.  ``bad_request`` / ``shutdown`` / ``internal`` failures are
#: deterministic — retrying them only adds load — so they surface at once.
RETRYABLE_CODES = frozenset({"overloaded", "timeout", "worker_died"})


class ServingServer:
    """Line-oriented request handler around one engine."""

    def __init__(self, engine: ServingEngine):
        self.engine = engine
        self._shutdown = False

    @property
    def shutdown_requested(self) -> bool:
        return self._shutdown

    # ------------------------------------------------------------------
    def handle_line(self, line: str) -> str:
        """Process one JSON request line; always returns one response line."""
        request_id = None
        try:
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as error:
                raise ServingError("bad_request", f"invalid JSON: {error}")
            if not isinstance(payload, dict):
                raise ServingError("bad_request", "request must be an object")
            request_id = payload.get("id")
            result = self._handle(payload)
            response = {"ok": True, "result": result}
        except ServingError as error:
            response = {"ok": False, "error": error.to_payload()}
        except Exception as error:  # defensive: the server must survive
            response = {"ok": False,
                        "error": {"code": "internal",
                                  "message": f"{type(error).__name__}: {error}"}}
        if request_id is not None:
            response["id"] = request_id
        return json.dumps(response)

    def _handle(self, payload: dict) -> dict:
        op = payload.get("op")
        if op == "ping":
            return {"pong": True, "generation": self.engine.generation}
        if op == "stats":
            return self.engine.stats()
        if op == "rank":
            entities = payload.get("entities")
            if not isinstance(entities, list) or not entities:
                raise ServingError("bad_request",
                                   "'entities' must be a non-empty list")
            table = self.engine.rank(entities, payload.get("k"),
                                     timeout=payload.get("timeout"))
            return {
                "entities": [int(e) for e in table.source_ids],
                "k": int(table.k),
                "targets": [[int(t) for t in row] for row in table.target_ids],
                "scores": [[float(s) for s in row] for row in table.scores],
                "approximate": bool(table.approximate),
            }
        if op == "swap":
            artifact = payload.get("artifact")
            if not artifact:
                raise ServingError("bad_request", "'artifact' is required")
            return self.engine.swap_artifact(
                artifact, mmap=bool(payload.get("mmap", True)))
        if op == "shutdown":
            self._shutdown = True
            return {"stopping": True}
        raise ServingError("bad_request", f"unknown op {op!r}")

    # ------------------------------------------------------------------
    def serve_forever(self, stdin, stdout) -> None:
        """Serve line requests from ``stdin`` until EOF or ``shutdown``."""
        for line in stdin:
            line = line.strip()
            if not line:
                continue
            stdout.write(self.handle_line(line) + "\n")
            stdout.flush()
            if self._shutdown:
                break
        self.engine.close()


class ServingClient:
    """In-process client speaking the JSON protocol against a server.

    Exercises the exact encode/decode path the stdio transport uses, so a
    test driving this client covers the wire protocol end to end.

    With ``retries > 0`` the client re-sends a request that failed with a
    code in :data:`RETRYABLE_CODES`, sleeping
    ``min(backoff * 2**(attempt-1), max_backoff)`` plus a deterministic
    jitter drawn from ``random.Random(jitter_seed)`` between attempts
    (total attempts are bounded by ``retries + 1``).  ``sleep`` is
    injectable so tests assert the backoff schedule without waiting it
    out.  Successful dict results carry an ``attempts`` count; exhausted
    retries raise the final :class:`ServingError` with an ``attempts``
    attribute attached.
    """

    def __init__(self, server: ServingServer, *, retries: int = 0,
                 backoff: float = 0.05, max_backoff: float = 1.0,
                 jitter_seed: int = 0, sleep=time.sleep):
        if retries < 0:
            raise ValueError("retries must be non-negative")
        if backoff < 0 or max_backoff < 0:
            raise ValueError("backoff delays must be non-negative")
        self._server = server
        self._next_id = 0
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.max_backoff = float(max_backoff)
        self._jitter = random.Random(jitter_seed)
        self._sleep = sleep
        #: Re-sends performed across the client's lifetime.
        self.retries_performed = 0

    def _backoff_delay(self, attempt: int) -> float:
        delay = min(self.backoff * 2 ** (attempt - 1), self.max_backoff)
        return delay + self._jitter.random() * self.backoff

    def request(self, payload: dict) -> dict:
        """One protocol exchange (with bounded retries on transient codes);
        raises :class:`ServingError` on failure."""
        attempts = 0
        while True:
            attempts += 1
            self._next_id += 1
            wire = dict(payload, id=self._next_id)
            response = json.loads(self._server.handle_line(json.dumps(wire)))
            if response.get("ok"):
                result = response["result"]
                if isinstance(result, dict):
                    result = dict(result, attempts=attempts)
                return result
            error = response.get("error", {})
            code = error.get("code", "internal")
            failure = ServingError(code,
                                   error.get("message", "unknown failure"))
            failure.attempts = attempts
            if code not in RETRYABLE_CODES or attempts > self.retries:
                raise failure
            self.retries_performed += 1
            self._sleep(self._backoff_delay(attempts))

    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def rank(self, entities, k: int | None = None,
             timeout: float | None = None) -> dict:
        payload = {"op": "rank", "entities": list(entities)}
        if k is not None:
            payload["k"] = int(k)
        if timeout is not None:
            payload["timeout"] = float(timeout)
        return self.request(payload)

    def stats(self) -> dict:
        return self.request({"op": "stats"})

    def swap(self, artifact, mmap: bool = True) -> dict:
        return self.request({"op": "swap", "artifact": str(artifact),
                             "mmap": mmap})

    def shutdown(self) -> dict:
        return self.request({"op": "shutdown"})
