"""Newline-delimited JSON protocol over a :class:`ServingEngine`.

One request per line, one response per line::

    {"op": "rank", "id": 1, "entities": [3, 17], "k": 5}
    {"id": 1, "ok": true, "result": {"entities": [3, 17], "k": 5,
     "targets": [[...], [...]], "scores": [[...], [...]],
     "approximate": true}}

Operations: ``rank`` (``entities``, optional ``k`` / ``timeout``),
``stats``, ``swap`` (``artifact`` directory, optional ``mmap``), ``ping``
and ``shutdown``.  Failures answer ``{"ok": false, "error": {"code",
"message"}}`` with codes ``bad_request`` / ``timeout`` / ``overloaded`` /
``shutdown`` / ``internal``; a failed request never takes the server
down.  The ``repro serve`` CLI speaks this protocol over stdin/stdout;
:class:`ServingClient` speaks it in-process (tests and embedding).
"""

from __future__ import annotations

import json

from .engine import ServingEngine, ServingError

__all__ = ["ServingServer", "ServingClient"]


class ServingServer:
    """Line-oriented request handler around one engine."""

    def __init__(self, engine: ServingEngine):
        self.engine = engine
        self._shutdown = False

    @property
    def shutdown_requested(self) -> bool:
        return self._shutdown

    # ------------------------------------------------------------------
    def handle_line(self, line: str) -> str:
        """Process one JSON request line; always returns one response line."""
        request_id = None
        try:
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as error:
                raise ServingError("bad_request", f"invalid JSON: {error}")
            if not isinstance(payload, dict):
                raise ServingError("bad_request", "request must be an object")
            request_id = payload.get("id")
            result = self._handle(payload)
            response = {"ok": True, "result": result}
        except ServingError as error:
            response = {"ok": False, "error": error.to_payload()}
        except Exception as error:  # defensive: the server must survive
            response = {"ok": False,
                        "error": {"code": "internal",
                                  "message": f"{type(error).__name__}: {error}"}}
        if request_id is not None:
            response["id"] = request_id
        return json.dumps(response)

    def _handle(self, payload: dict) -> dict:
        op = payload.get("op")
        if op == "ping":
            return {"pong": True, "generation": self.engine.generation}
        if op == "stats":
            return self.engine.stats()
        if op == "rank":
            entities = payload.get("entities")
            if not isinstance(entities, list) or not entities:
                raise ServingError("bad_request",
                                   "'entities' must be a non-empty list")
            table = self.engine.rank(entities, payload.get("k"),
                                     timeout=payload.get("timeout"))
            return {
                "entities": [int(e) for e in table.source_ids],
                "k": int(table.k),
                "targets": [[int(t) for t in row] for row in table.target_ids],
                "scores": [[float(s) for s in row] for row in table.scores],
                "approximate": bool(table.approximate),
            }
        if op == "swap":
            artifact = payload.get("artifact")
            if not artifact:
                raise ServingError("bad_request", "'artifact' is required")
            return self.engine.swap_artifact(
                artifact, mmap=bool(payload.get("mmap", True)))
        if op == "shutdown":
            self._shutdown = True
            return {"stopping": True}
        raise ServingError("bad_request", f"unknown op {op!r}")

    # ------------------------------------------------------------------
    def serve_forever(self, stdin, stdout) -> None:
        """Serve line requests from ``stdin`` until EOF or ``shutdown``."""
        for line in stdin:
            line = line.strip()
            if not line:
                continue
            stdout.write(self.handle_line(line) + "\n")
            stdout.flush()
            if self._shutdown:
                break
        self.engine.close()


class ServingClient:
    """In-process client speaking the JSON protocol against a server.

    Exercises the exact encode/decode path the stdio transport uses, so a
    test driving this client covers the wire protocol end to end.
    """

    def __init__(self, server: ServingServer):
        self._server = server
        self._next_id = 0

    def request(self, payload: dict) -> dict:
        """One protocol round trip; raises :class:`ServingError` on failure."""
        self._next_id += 1
        payload = dict(payload, id=self._next_id)
        response = json.loads(self._server.handle_line(json.dumps(payload)))
        if not response.get("ok"):
            error = response.get("error", {})
            raise ServingError(error.get("code", "internal"),
                               error.get("message", "unknown failure"))
        return response["result"]

    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def rank(self, entities, k: int | None = None,
             timeout: float | None = None) -> dict:
        payload = {"op": "rank", "entities": list(entities)}
        if k is not None:
            payload["k"] = int(k)
        if timeout is not None:
            payload["timeout"] = float(timeout)
        return self.request(payload)

    def stats(self) -> dict:
        return self.request({"op": "stats"})

    def swap(self, artifact, mmap: bool = True) -> dict:
        return self.request({"op": "swap", "artifact": str(artifact),
                             "mmap": mmap})

    def shutdown(self) -> dict:
        return self.request({"op": "shutdown"})
