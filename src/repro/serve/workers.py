"""Bounded worker pool executing decode batches.

A fixed number of daemon threads drain a bounded work queue.  The bound
is the serving backpressure: when the queue is full, :meth:`submit`
refuses instead of buffering without limit, and the engine fails the
affected requests with a structured ``overloaded`` error.  Workers wrap
every task in a broad ``except`` so a failing batch can never take a
worker down — the task itself is responsible for routing its error to
the requests it carries.

The one thing that *can* take a worker down is
:class:`~repro.serve.faults.WorkerDeath` (a ``BaseException``, raised by
fault injection the way a real crash would be): the dying worker counts
itself and spawns a replacement before exiting, so the pool's capacity
is self-healing — sustained worker death degrades latency, never
availability.
"""

from __future__ import annotations

import itertools
import queue
import threading

from .faults import WorkerDeath

__all__ = ["WorkerPool"]

_STOP = object()


class WorkerPool:
    """Fixed-size thread pool over a bounded FIFO work queue."""

    def __init__(self, num_workers: int = 2, queue_size: int = 128):
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        if queue_size <= 0:
            raise ValueError("queue_size must be positive")
        self.num_workers = int(num_workers)
        self._queue: queue.Queue = queue.Queue(maxsize=int(queue_size))
        self._closed = False
        #: Exceptions that escaped a task (the worker survived them).
        self.task_failures = 0
        #: Workers killed by :class:`WorkerDeath` (each was respawned).
        self.worker_deaths = 0
        self._lock = threading.Lock()
        self._names = itertools.count()
        self._threads = [self._spawn() for _ in range(self.num_workers)]

    def _spawn(self) -> threading.Thread:
        thread = threading.Thread(
            target=self._run, daemon=True,
            name=f"repro-serve-worker-{next(self._names)}")
        thread.start()
        return thread

    def submit(self, task) -> bool:
        """Enqueue ``task`` (a zero-argument callable); False when full."""
        if self._closed:
            return False
        try:
            self._queue.put_nowait(task)
            return True
        except queue.Full:
            return False

    def _run(self) -> None:
        while True:
            task = self._queue.get()
            if task is _STOP:
                return
            try:
                task()
            except WorkerDeath:
                # This thread is dead; replace it (unless the pool is
                # closing, in which case the remaining workers drain the
                # queue) and let it exit.
                with self._lock:
                    self.worker_deaths += 1
                    if not self._closed:
                        self._threads.append(self._spawn())
                return
            except Exception:
                with self._lock:
                    self.task_failures += 1

    def close(self) -> None:
        """Drain outstanding tasks, then stop every worker."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            threads = list(self._threads)
        # One stop marker per spawned thread: dead threads never consume
        # theirs, so every live worker (including respawns) sees one.
        for _ in threads:
            self._queue.put(_STOP)
        for thread in threads:
            thread.join()
