"""Bounded worker pool executing decode batches.

A fixed number of daemon threads drain a bounded work queue.  The bound
is the serving backpressure: when the queue is full, :meth:`submit`
refuses instead of buffering without limit, and the engine fails the
affected requests with a structured ``overloaded`` error.  Workers wrap
every task in a broad ``except`` so a failing batch can never take a
worker down — the task itself is responsible for routing its error to
the requests it carries.
"""

from __future__ import annotations

import queue
import threading

__all__ = ["WorkerPool"]

_STOP = object()


class WorkerPool:
    """Fixed-size thread pool over a bounded FIFO work queue."""

    def __init__(self, num_workers: int = 2, queue_size: int = 128):
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        if queue_size <= 0:
            raise ValueError("queue_size must be positive")
        self.num_workers = int(num_workers)
        self._queue: queue.Queue = queue.Queue(maxsize=int(queue_size))
        self._closed = False
        #: Exceptions that escaped a task (the worker survived them).
        self.task_failures = 0
        self._failure_lock = threading.Lock()
        self._threads = [
            threading.Thread(target=self._run, daemon=True,
                             name=f"repro-serve-worker-{index}")
            for index in range(self.num_workers)
        ]
        for thread in self._threads:
            thread.start()

    def submit(self, task) -> bool:
        """Enqueue ``task`` (a zero-argument callable); False when full."""
        if self._closed:
            return False
        try:
            self._queue.put_nowait(task)
            return True
        except queue.Full:
            return False

    def _run(self) -> None:
        while True:
            task = self._queue.get()
            if task is _STOP:
                return
            try:
                task()
            except Exception:
                with self._failure_lock:
                    self.task_failures += 1

    def close(self) -> None:
        """Drain outstanding tasks, then stop every worker."""
        if self._closed:
            return
        self._closed = True
        for _ in self._threads:
            self._queue.put(_STOP)
        for thread in self._threads:
            thread.join()
