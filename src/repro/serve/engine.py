"""The serving engine: micro-batched, cached, hot-swappable ranking.

Request path
------------
``rank(entity_ids, k)`` first probes the LRU result cache (all rows hot →
answered without touching the decoder, on the caller's thread).  Misses
enter the :class:`~repro.serve.batching.MicroBatcher`; coalesced batches
go to the bounded :class:`~repro.serve.workers.WorkerPool`, where one
worker decodes the union of all uncached rows in the batch via
:meth:`Aligner.rank_rows` — a row-subset decode whose per-row results are
bit-identical regardless of batch composition — then scatters per-request
results and inserts the fresh rows into the cache.

Lifecycle
---------
``swap(aligner)`` installs a new artifact without dropping in-flight
work: the replacement is fully loaded (and pre-warmed) first, new batches
are briefly held, in-flight batches drain, then the aligner reference and
generation counter switch atomically and the cache is invalidated.  Every
batch executes against one consistent ``(aligner, generation)`` snapshot,
so a request is answered either entirely by the old artifact or entirely
by the new one — never a torn mix.

Robustness
----------
Per-request timeouts surface as structured :class:`ServingTimeout` errors
while the worker keeps running (its late result is discarded); a full
work queue fails fast with an ``overloaded`` error; decode exceptions are
routed to the requests that caused them and never kill a worker.
"""

from __future__ import annotations

import threading
from pathlib import Path

import numpy as np

from ..pipeline.facade import Aligner, TopKAlignment
from .batching import MicroBatcher
from .cache import ResultCache
from .faults import FaultInjector, WorkerDeath
from .workers import WorkerPool

__all__ = ["ServingEngine", "ServingError", "ServingTimeout", "PendingRequest"]


class ServingError(RuntimeError):
    """Structured serving failure: a machine-readable ``code`` + message."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code
        self.message = message

    def to_payload(self) -> dict:
        return {"code": self.code, "message": self.message}


class ServingTimeout(ServingError):
    """A request missed its deadline (the decode may still complete)."""

    def __init__(self, message: str):
        super().__init__("timeout", message)


class PendingRequest:
    """One in-flight ``rank`` request awaiting its batch."""

    __slots__ = ("entity_ids", "k", "event", "result", "error", "abandoned")

    def __init__(self, entity_ids: np.ndarray, k: int):
        self.entity_ids = entity_ids
        self.k = k
        self.event = threading.Event()
        self.result: TopKAlignment | None = None
        self.error: ServingError | None = None
        #: Set by a timed-out waiter so workers skip assembling the result.
        self.abandoned = False

    @property
    def num_entities(self) -> int:
        return len(self.entity_ids)

    def fail(self, error: ServingError) -> None:
        self.error = error
        self.event.set()

    def complete(self, result: TopKAlignment) -> None:
        self.result = result
        self.event.set()


class ServingEngine:
    """Long-lived query engine over one loaded :class:`Aligner`.

    Tuning knobs: ``batch_window`` (seconds the micro-batcher waits for
    company), ``max_batch`` (entity rows per coalesced batch),
    ``pool_size`` / ``queue_size`` (decode workers and their backpressure
    bound), ``cache_size`` (result-cache entries), ``cache_admission``
    (``"frequency"`` — the default, TinyLFU-style sketch gate — or plain
    ``"lru"``) and ``default_timeout`` (per-request deadline, seconds).
    ``fault_injector`` accepts a seeded
    :class:`~repro.serve.faults.FaultInjector` whose decode-failure,
    latency and worker-death hooks exercise the engine's isolation
    guarantees under test.
    """

    def __init__(self, aligner: Aligner, *, batch_window: float = 0.002,
                 max_batch: int = 64, pool_size: int = 2,
                 queue_size: int = 128, cache_size: int = 4096,
                 default_timeout: float = 30.0,
                 cache_admission: str = "frequency",
                 fault_injector: FaultInjector | None = None):
        self._cache = ResultCache(cache_size, admission=cache_admission)
        self._faults = fault_injector
        self._pool = WorkerPool(num_workers=pool_size, queue_size=queue_size)
        self._batcher = MicroBatcher(self._dispatch, window=batch_window,
                                     max_batch=max_batch)
        self.default_timeout = float(default_timeout)

        # Artifact state guarded by one condition: aligner snapshot,
        # generation counter, swap flag and the in-flight batch count.
        self._state = threading.Condition()
        self._aligner = aligner
        self._generation = 1
        self._fingerprint = aligner.decode_fingerprint()
        self._num_source = self._prewarm(aligner)
        self._swap_pending = False
        self._inflight = 0
        self._closed = False
        #: Lazily built incremental wrapper reused across ingest() calls
        #: (it carries the warm IVF quantiser and the cached decode table).
        self._incremental = None

        self._metrics = threading.Lock()
        self._requests = 0
        self._cache_only_requests = 0
        self._batches = 0
        self._batched_requests = 0
        self._decoded_rows = 0
        self._timeouts = 0
        self._overloads = 0
        self._swaps = 0

    # ------------------------------------------------------------------
    @classmethod
    def from_artifact(cls, directory, *, mmap: bool = True,
                      **kwargs) -> "ServingEngine":
        """Load an artifact directory (memory-mapped by default) and serve it."""
        return cls(Aligner.load(Path(directory), mmap=mmap), **kwargs)

    @staticmethod
    def _prewarm(aligner: Aligner) -> int:
        """Fit caches the hot path needs before traffic hits the aligner."""
        aligner.row_candidates()
        source_norm, _ = aligner._normalized_states()
        return source_norm[0].shape[0]

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def _cache_key(self, generation: int, fingerprint: str, k: int,
                   entity: int):
        return (generation, fingerprint, k, entity)

    def submit(self, entity_ids, k: int | None = None) -> PendingRequest:
        """Validate and enqueue one request; returns its pending handle.

        Fully cache-resident requests complete synchronously on the
        calling thread — the decoder and the batcher are never touched.
        """
        with self._state:
            if self._closed:
                raise ServingError("shutdown", "the serving engine is closed")
            generation = self._generation
            fingerprint = self._fingerprint
            num_source = self._num_source
            default_k = self._aligner.spec.decode.k
        k = int(k) if k is not None else default_k
        entity_ids = np.asarray(entity_ids, dtype=np.int64).reshape(-1)
        if k <= 0:
            raise ServingError("bad_request", "k must be positive")
        if not len(entity_ids):
            raise ServingError("bad_request", "entities must be non-empty")
        if entity_ids.min() < 0 or entity_ids.max() >= num_source:
            raise ServingError(
                "bad_request",
                f"entity ids must lie in [0, {num_source}), got "
                f"{entity_ids.min()}..{entity_ids.max()}")

        request = PendingRequest(entity_ids, k)
        with self._metrics:
            self._requests += 1

        rows = []
        for entity in entity_ids:
            value = self._cache.get(
                self._cache_key(generation, fingerprint, k, int(entity)))
            if value is None:
                break
            rows.append(value)
        if len(rows) == len(entity_ids):
            request.complete(self._assemble(entity_ids, rows))
            with self._metrics:
                self._cache_only_requests += 1
            return request

        self._batcher.submit(request)
        return request

    def rank(self, entity_ids, k: int | None = None,
             timeout: float | None = None) -> TopKAlignment:
        """Blocking rank: submit, await the batch, raise structured errors."""
        request = self.submit(entity_ids, k)
        timeout = self.default_timeout if timeout is None else float(timeout)
        if not request.event.wait(timeout):
            request.abandoned = True
            with self._metrics:
                self._timeouts += 1
            raise ServingTimeout(
                f"rank of {request.num_entities} entities missed its "
                f"{timeout:g}s deadline")
        if request.error is not None:
            raise request.error
        return request.result

    @staticmethod
    def _assemble(entity_ids: np.ndarray, rows: list) -> TopKAlignment:
        return TopKAlignment(
            source_ids=entity_ids,
            target_ids=np.stack([row[0] for row in rows]),
            scores=np.stack([row[1] for row in rows]),
            approximate=rows[0][2],
        )

    # ------------------------------------------------------------------
    # Batch execution (micro-batcher -> worker pool)
    # ------------------------------------------------------------------
    def _dispatch(self, batch: list) -> None:
        if not self._pool.submit(lambda: self._execute(batch)):
            error = ServingError(
                "overloaded",
                f"work queue is full ({self._pool.num_workers} workers); "
                "retry later or raise queue_size")
            with self._metrics:
                self._overloads += len(batch)
            for request in batch:
                request.fail(error)

    def _execute(self, batch: list) -> None:
        # Hold new batches out while a swap drains, then pin one
        # consistent (aligner, generation) snapshot for the whole batch.
        with self._state:
            while self._swap_pending:
                self._state.wait()
            aligner = self._aligner
            generation = self._generation
            fingerprint = self._fingerprint
            self._inflight += 1
        try:
            if self._faults is not None:
                self._faults.maybe_kill_worker()
            live = [request for request in batch if not request.abandoned]
            by_k: dict[int, list] = {}
            for request in live:
                by_k.setdefault(request.k, []).append(request)
            for k, requests in by_k.items():
                try:
                    self._decode_group(aligner, generation, fingerprint, k,
                                       requests)
                except ServingError as error:
                    for request in requests:
                        request.fail(error)
                except Exception as error:  # decode bug: fail, don't wedge
                    failure = ServingError("internal",
                                           f"{type(error).__name__}: {error}")
                    for request in requests:
                        request.fail(failure)
            with self._metrics:
                self._batches += 1
                self._batched_requests += len(live)
        except WorkerDeath:
            # The worker thread is going down (fault injection / crash).
            # Fail every request that has not been answered yet with a
            # structured code — a client must never hang on a dead worker
            # — then let the death propagate to the pool, which respawns.
            death = ServingError(
                "worker_died", "the decode worker died mid-batch; retry")
            for request in batch:
                if not request.event.is_set():
                    request.fail(death)
            raise
        finally:
            with self._state:
                self._inflight -= 1
                self._state.notify_all()

    def _decode_group(self, aligner: Aligner, generation: int,
                      fingerprint: str, k: int, requests: list) -> None:
        """Decode the union of uncached rows once; scatter to each request."""
        rows: dict[int, tuple] = {}
        missing: list[int] = []
        for request in requests:
            for entity in request.entity_ids:
                entity = int(entity)
                if entity in rows or entity in missing:
                    continue
                value = self._cache.get(
                    self._cache_key(generation, fingerprint, k, entity))
                if value is None:
                    missing.append(entity)
                else:
                    rows[entity] = value
        if missing:
            if self._faults is not None:
                self._faults.before_decode()
            table = aligner.rank_rows(np.asarray(missing, dtype=np.int64), k)
            for index, entity in enumerate(missing):
                value = (table.target_ids[index], table.scores[index],
                         table.approximate)
                rows[entity] = value
                self._cache.put(
                    self._cache_key(generation, fingerprint, k, entity), value)
            with self._metrics:
                self._decoded_rows += len(missing)
        for request in requests:
            if request.abandoned:
                continue
            request.complete(self._assemble(
                request.entity_ids,
                [rows[int(entity)] for entity in request.entity_ids]))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def swap(self, aligner: Aligner) -> dict:
        """Hot-swap to ``aligner``: pre-warm, drain in-flight, switch, evict.

        The replacement's candidate structure and normalised tables are
        built *before* traffic is held, so the pause is only as long as
        the in-flight batches.  Queued-but-unstarted batches execute
        against the new artifact — each request is served entirely by one
        artifact version either way.
        """
        num_source = self._prewarm(aligner)
        fingerprint = aligner.decode_fingerprint()
        # An externally supplied artifact invalidates the incremental
        # wrapper (its cached states/index describe the previous lineage).
        if (self._incremental is not None
                and self._incremental.aligner is not aligner):
            self._incremental = None
        with self._state:
            if self._closed:
                raise ServingError("shutdown", "the serving engine is closed")
            self._swap_pending = True
            while self._inflight > 0:
                self._state.wait()
            self._aligner = aligner
            self._generation += 1
            self._fingerprint = fingerprint
            self._num_source = num_source
            self._swap_pending = False
            generation = self._generation
            self._state.notify_all()
        evicted = self._cache.clear()
        with self._metrics:
            self._swaps += 1
        return {"generation": generation, "fingerprint": fingerprint,
                "evicted": evicted}

    def swap_artifact(self, directory, *, mmap: bool = True) -> dict:
        """Load a new artifact directory and :meth:`swap` to it."""
        return self.swap(Aligner.load(Path(directory), mmap=mmap))

    def ingest(self, delta, *, directory=None) -> dict:
        """Fold a delta batch into the served artifact and promote it live.

        The updated artifact is built entirely off to the side — warm
        encode, IVF inserts and the selective re-decode all run on the
        caller's thread against a private
        :class:`~repro.incremental.IncrementalAligner`, while the engine
        keeps serving the current generation — then promoted through the
        same prewarm–drain–:meth:`swap` path as any other artifact, so no
        request ever observes a mixed-generation decode.  ``directory``
        optionally persists the updated artifact.  Serialise concurrent
        callers externally; the engine only synchronises the promotion.
        """
        from ..incremental import IncrementalAligner

        if self._incremental is None:
            with self._state:
                aligner = self._aligner
            self._incremental = IncrementalAligner(aligner)
        report = self._incremental.ingest(delta, directory=directory)
        payload = report.to_dict()
        if report.noop:
            # Bit-exact no-op: nothing to promote, the served artifact
            # already answers every query the updated one would.
            with self._state:
                payload.update(generation=self._generation,
                               fingerprint=self._fingerprint, evicted=0)
            return payload
        payload.update(self.swap(report.aligner))
        return payload

    @property
    def generation(self) -> int:
        with self._state:
            return self._generation

    def stats(self) -> dict:
        """Counter snapshot across the engine, cache and aligner caches."""
        with self._state:
            aligner = self._aligner
            payload = {
                "generation": self._generation,
                "fingerprint": self._fingerprint,
                "num_source": self._num_source,
                "default_k": aligner.spec.decode.k,
            }
        with self._metrics:
            payload.update({
                "requests": self._requests,
                "cache_only_requests": self._cache_only_requests,
                "batches": self._batches,
                "batched_requests": self._batched_requests,
                "decoded_rows": self._decoded_rows,
                "timeouts": self._timeouts,
                "overloads": self._overloads,
                "swaps": self._swaps,
            })
        payload["cache"] = self._cache.stats()
        payload["candidate_slice"] = {
            "hits": aligner.candidate_slice_hits,
            "misses": aligner.candidate_slice_misses,
        }
        payload["worker_failures"] = self._pool.task_failures
        payload["worker_deaths"] = self._pool.worker_deaths
        if self._faults is not None:
            payload["faults"] = self._faults.stats()
        return payload

    def close(self) -> None:
        """Stop accepting requests, drain the batcher and the pool."""
        with self._state:
            if self._closed:
                return
            self._closed = True
        self._batcher.close()
        self._pool.close()

    def __enter__(self) -> "ServingEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
