"""Seeded fault injection for the serving engine.

A :class:`FaultInjector` is handed to :class:`~repro.serve.ServingEngine`
and probed from the decode path: ``before_decode`` can delay a decode
(artificial latency) or abort it with a structured
:class:`~repro.serve.ServingError`, and ``maybe_kill_worker`` can raise
:class:`WorkerDeath` — a **BaseException**, deliberately outside the
``except Exception`` isolation the engine and worker pool wrap around
batches, so it genuinely takes the worker thread down the way a real
crash would.  The pool respawns a replacement and the engine fails the
batch's outstanding requests with a structured ``worker_died`` error, so
clients always observe either a complete, correct response or a typed
failure — never a torn batch.

All draws come from one seeded generator behind a lock, so a fault
schedule is reproducible under a fixed seed regardless of which worker
thread happens to probe first (the *sequence* of faults is deterministic;
their assignment to threads follows the race, as in production).
"""

from __future__ import annotations

import threading
import time

import numpy as np

__all__ = ["FaultInjector", "WorkerDeath"]


class WorkerDeath(BaseException):
    """An injected worker crash.

    Derives from ``BaseException`` so the broad ``except Exception``
    blocks that isolate ordinary decode failures cannot swallow it —
    exactly like a real thread-killing event, it must be handled by the
    code that owns the worker's lifecycle, not by batch-level isolation.
    """


class FaultInjector:
    """Probabilistic, seeded fault source for serving-path hooks.

    Parameters
    ----------
    decode_failure_rate:
        Probability that a decode attempt raises a structured
        :class:`ServingError` (code ``failure_code``) instead of running.
    failure_code:
        Error code injected decode failures carry (default ``internal``;
        use ``overloaded`` / ``timeout`` to exercise client retry paths).
    latency, latency_rate:
        With probability ``latency_rate``, sleep ``latency`` seconds
        before a decode — enough to trip per-request deadlines.
    worker_death_rate:
        Probability that a batch kills its worker thread
        (:class:`WorkerDeath`) before any decoding happens.
    seed:
        Drives the single shared random stream.
    """

    def __init__(self, *, decode_failure_rate: float = 0.0,
                 failure_code: str = "internal",
                 latency: float = 0.0, latency_rate: float = 1.0,
                 worker_death_rate: float = 0.0, seed: int = 0):
        for name, rate in (("decode_failure_rate", decode_failure_rate),
                           ("latency_rate", latency_rate),
                           ("worker_death_rate", worker_death_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must lie in [0, 1], got {rate!r}")
        if latency < 0.0:
            raise ValueError("latency must be non-negative")
        self.decode_failure_rate = float(decode_failure_rate)
        self.failure_code = str(failure_code)
        self.latency = float(latency)
        self.latency_rate = float(latency_rate)
        self.worker_death_rate = float(worker_death_rate)
        self.seed = int(seed)
        self._lock = threading.Lock()
        self._rng = np.random.default_rng(seed)
        self.injected_failures = 0
        self.injected_latencies = 0
        self.injected_deaths = 0

    # ------------------------------------------------------------------
    def _draw(self) -> float:
        with self._lock:
            return float(self._rng.random())

    def before_decode(self) -> None:
        """Hook run immediately before a decode: latency, then failure."""
        if self.latency > 0.0 and self._draw() < self.latency_rate:
            with self._lock:
                self.injected_latencies += 1
            time.sleep(self.latency)
        if (self.decode_failure_rate > 0.0
                and self._draw() < self.decode_failure_rate):
            with self._lock:
                self.injected_failures += 1
            from .engine import ServingError

            raise ServingError(self.failure_code, "injected decode failure")

    def maybe_kill_worker(self) -> None:
        """Hook run at batch start: may raise :class:`WorkerDeath`."""
        if (self.worker_death_rate > 0.0
                and self._draw() < self.worker_death_rate):
            with self._lock:
                self.injected_deaths += 1
            raise WorkerDeath("injected worker death")

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        with self._lock:
            return {
                "decode_failure_rate": self.decode_failure_rate,
                "latency": self.latency,
                "worker_death_rate": self.worker_death_rate,
                "seed": self.seed,
                "injected_failures": self.injected_failures,
                "injected_latencies": self.injected_latencies,
                "injected_deaths": self.injected_deaths,
            }
