"""Micro-batching: coalesce concurrent requests into one decode batch.

Small-query latency is dominated by per-call overhead (candidate gather,
top-k bookkeeping, Python dispatch), not by the dot products themselves.
The :class:`MicroBatcher` therefore runs one collector thread over a
request queue: the first arrival opens a batch, further arrivals within
``window`` seconds join it (up to ``max_batch`` total entity rows), and
the whole batch is handed to a dispatch callback — the engine then
decodes the union of rows once and scatters per-request results.  Because
the row-subset decode is bit-identical regardless of batch composition
(see :meth:`repro.pipeline.Aligner.rank_rows`), coalescing never changes
results, only amortises overhead.
"""

from __future__ import annotations

import queue
import threading
import time

__all__ = ["MicroBatcher"]

_STOP = object()


class MicroBatcher:
    """Collector thread turning a request stream into dispatched batches.

    ``dispatch(batch)`` receives a non-empty list of request objects; each
    request must expose ``num_entities`` (its row count, used against
    ``max_batch``).  Dispatch runs on the collector thread — it should
    hand work off quickly (the engine submits to its worker pool).
    """

    def __init__(self, dispatch, window: float = 0.002, max_batch: int = 64):
        if window < 0:
            raise ValueError("window must be non-negative")
        if max_batch <= 0:
            raise ValueError("max_batch must be positive")
        self._dispatch = dispatch
        self.window = float(window)
        self.max_batch = int(max_batch)
        self._queue: queue.Queue = queue.Queue()
        self._stopping = False
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-serve-batcher")
        self._thread.start()

    def submit(self, request) -> None:
        self._queue.put(request)

    def _run(self) -> None:
        while True:
            first = self._queue.get()
            if first is _STOP:
                return
            batch = [first]
            size = first.num_entities
            deadline = time.monotonic() + self.window
            stop_after = False
            while size < self.max_batch:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    item = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if item is _STOP:
                    stop_after = True
                    break
                batch.append(item)
                size += item.num_entities
            self._dispatch(batch)
            if stop_after:
                return

    def close(self) -> None:
        """Stop the collector; queued requests are still dispatched first."""
        if self._stopping:
            return
        self._stopping = True
        self._queue.put(_STOP)
        self._thread.join()
