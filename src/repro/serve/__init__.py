"""Alignment-as-a-service: long-lived serving over persisted Aligner artifacts.

One process loads an artifact once and answers many concurrent
``rank(entity_ids, k)`` queries fast:

* :class:`ServingEngine` — owns the loaded
  :class:`~repro.pipeline.Aligner`; a micro-batcher coalesces requests
  arriving within a small window into one row-subset decode over the
  union of rows, a bounded worker pool executes batches, and a result
  cache (frequency-sketch admission by default) serves hot entities
  without touching the decoder.  Results are bit-identical to direct
  ``Aligner.rank`` calls.
* :class:`ServingServer` / :class:`ServingClient` — a newline-delimited
  JSON protocol (the ``repro serve`` CLI speaks it over stdin/stdout)
  and its in-process client with bounded, seeded retry of transient
  failures.
* Graceful lifecycle — artifact hot-swap that drains in-flight batches
  before an atomic switch, per-request timeouts with structured errors,
  and clean shutdown.
* Fault tolerance under test — a seeded :class:`FaultInjector` drives
  decode failures, latency and worker death through the real decode
  path; the pool respawns dead workers and every affected request gets
  a structured error, never a torn response.
"""

from .batching import MicroBatcher
from .cache import FrequencySketch, ResultCache
from .engine import PendingRequest, ServingEngine, ServingError, ServingTimeout
from .faults import FaultInjector, WorkerDeath
from .protocol import RETRYABLE_CODES, ServingClient, ServingServer
from .workers import WorkerPool

__all__ = [
    "FaultInjector",
    "FrequencySketch",
    "MicroBatcher",
    "PendingRequest",
    "RETRYABLE_CODES",
    "ResultCache",
    "ServingClient",
    "ServingEngine",
    "ServingError",
    "ServingServer",
    "ServingTimeout",
    "WorkerDeath",
    "WorkerPool",
]
