"""Alignment-as-a-service: long-lived serving over persisted Aligner artifacts.

One process loads an artifact once and answers many concurrent
``rank(entity_ids, k)`` queries fast:

* :class:`ServingEngine` — owns the loaded
  :class:`~repro.pipeline.Aligner`; a micro-batcher coalesces requests
  arriving within a small window into one row-subset decode over the
  union of rows, a bounded worker pool executes batches, and an LRU
  result cache serves hot entities without touching the decoder.
  Results are bit-identical to direct ``Aligner.rank`` calls.
* :class:`ServingServer` / :class:`ServingClient` — a newline-delimited
  JSON protocol (the ``repro serve`` CLI speaks it over stdin/stdout)
  and its in-process client.
* Graceful lifecycle — artifact hot-swap that drains in-flight batches
  before an atomic switch, per-request timeouts with structured errors,
  and clean shutdown.
"""

from .batching import MicroBatcher
from .cache import ResultCache
from .engine import PendingRequest, ServingEngine, ServingError, ServingTimeout
from .protocol import ServingClient, ServingServer
from .workers import WorkerPool

__all__ = [
    "MicroBatcher",
    "PendingRequest",
    "ResultCache",
    "ServingClient",
    "ServingEngine",
    "ServingError",
    "ServingServer",
    "ServingTimeout",
    "WorkerPool",
]
