"""Sparse-first graph operators: CSR adjacency, normalisation and spectra.

The dense helpers in :mod:`repro.kg.laplacian` materialise ``n x n`` arrays,
which caps experiments at a few hundred entities.  This module provides the
same quantities as CSR operations whose cost is ``O(|E|)`` in memory and
``O(|E| * d)`` in time:

* CSR adjacency construction straight from relation triples (no dense
  intermediate), plus degree computation without any adjacency at all;
* sparse symmetric normalisation ``D^{-1/2} (A [+ I]) D^{-1/2}`` and the
  sparse normalised Laplacian ``I - A_hat``;
* edge-wise Dirichlet energy (the pairwise form of Definition 3 summed over
  edges instead of over all ``n^2`` pairs);
* the largest Laplacian eigenvalue via ``scipy.sparse.linalg.eigsh`` with a
  dense fallback for tiny graphs and a power-iteration fallback when the
  Lanczos iteration does not converge.

Every function is numerically equivalent to its dense counterpart (the
property tests in ``tests/properties`` assert this), so the two backends can
be swapped behind the same API.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import ArpackError, ArpackNoConvergence, eigsh

__all__ = [
    "adjacency_from_triples",
    "degrees_from_triples",
    "normalized_adjacency_sparse",
    "graph_laplacian_sparse",
    "dirichlet_energy_edges",
    "edge_index",
    "power_iteration_eigenvalue",
    "largest_eigenvalue",
]

#: Below this size, dense ``eigvalsh`` is both faster and more robust than
#: the Lanczos iteration (which also requires ``k < n``).
DENSE_EIGEN_CUTOFF = 64


def _triple_endpoints(triples: Sequence) -> tuple[np.ndarray, np.ndarray]:
    """Head/tail index arrays of the non-self-loop relation triples."""
    count = len(triples)
    heads = np.fromiter((t.head for t in triples), dtype=np.int64, count=count)
    tails = np.fromiter((t.tail for t in triples), dtype=np.int64, count=count)
    keep = heads != tails
    return heads[keep], tails[keep]


def adjacency_from_triples(num_entities: int, triples: Iterable,
                           weighted: bool = False) -> sp.csr_matrix:
    """CSR symmetric adjacency induced by relation triples.

    Matches ``MultiModalKG.adjacency_matrix`` exactly: undirected, self-loops
    dropped, entries count parallel edges when ``weighted`` and are binary
    otherwise — but never touches an ``n x n`` dense array.
    """
    heads, tails = _triple_endpoints(list(triples))
    rows = np.concatenate([heads, tails])
    cols = np.concatenate([tails, heads])
    data = np.ones(len(rows), dtype=np.float64)
    adjacency = sp.coo_matrix((data, (rows, cols)),
                              shape=(num_entities, num_entities)).tocsr()
    adjacency.sum_duplicates()
    if not weighted:
        adjacency.data = (adjacency.data > 0).astype(np.float64)
    return adjacency


def degrees_from_triples(num_entities: int, triples: Iterable) -> np.ndarray:
    """Binary undirected node degrees, computed without any adjacency matrix.

    Equals ``adjacency_matrix().sum(axis=1)``: the number of *distinct*
    neighbours of each entity (self-loops excluded, parallel edges counted
    once).
    """
    heads, tails = _triple_endpoints(list(triples))
    degrees = np.zeros(num_entities, dtype=np.float64)
    if len(heads) == 0:
        return degrees
    lo = np.minimum(heads, tails)
    hi = np.maximum(heads, tails)
    pairs = np.unique(np.stack([lo, hi], axis=1), axis=0)
    degrees += np.bincount(pairs[:, 0], minlength=num_entities)
    degrees += np.bincount(pairs[:, 1], minlength=num_entities)
    return degrees


def _inverse_sqrt_degrees(degrees: np.ndarray) -> np.ndarray:
    return np.where(degrees > 0, 1.0 / np.sqrt(np.maximum(degrees, 1e-12)), 0.0)


def _as_csr(adjacency) -> sp.csr_matrix:
    if sp.issparse(adjacency):
        return adjacency.tocsr().astype(np.float64)
    return sp.csr_matrix(np.asarray(adjacency, dtype=np.float64))


def normalized_adjacency_sparse(adjacency, add_self_loops: bool = True) -> sp.csr_matrix:
    """Sparse symmetric normalisation ``D^{-1/2} (A [+ I]) D^{-1/2}``.

    Value-equivalent to :func:`repro.kg.laplacian.normalized_adjacency`; the
    result stays CSR with ``O(|E|)`` non-zeros.
    """
    matrix = _as_csr(adjacency)
    if matrix.shape[0] != matrix.shape[1]:
        raise ValueError("adjacency must be square")
    if add_self_loops:
        matrix = (matrix + sp.identity(matrix.shape[0], format="csr")).tocsr()
    degrees = np.asarray(matrix.sum(axis=1)).ravel()
    inv_sqrt = _inverse_sqrt_degrees(degrees)
    scaling = sp.diags(inv_sqrt)
    return (scaling @ matrix @ scaling).tocsr()


def graph_laplacian_sparse(adjacency, add_self_loops: bool = True) -> sp.csr_matrix:
    """Sparse normalised graph Laplacian ``I - A_hat`` (positive semi-definite)."""
    normalised = normalized_adjacency_sparse(adjacency, add_self_loops=add_self_loops)
    return (sp.identity(normalised.shape[0], format="csr") - normalised).tocsr()


def dirichlet_energy_edges(features: np.ndarray, adjacency,
                           add_self_loops: bool = True) -> float:
    """Dirichlet energy in the pairwise form, summed over edges: ``O(|E| d)``.

    ``1/2 sum_ij a_ij || x_i / sqrt(d_i) - x_j / sqrt(d_j) ||^2`` with degrees
    taken after the optional self-loop shift.  Self-loop terms vanish, so
    only the off-diagonal edges are visited — no ``n x n`` pairwise-distance
    matrix is ever built (unlike ``dirichlet_energy_pairwise``'s dense path).
    """
    features = np.asarray(features, dtype=np.float64)
    if features.ndim == 1:
        features = features[:, None]
    matrix = _as_csr(adjacency)
    degrees = np.asarray(matrix.sum(axis=1)).ravel()
    if add_self_loops:
        degrees = degrees + 1.0
    scaled = features * _inverse_sqrt_degrees(degrees)[:, None]
    coo = matrix.tocoo()
    off_diagonal = coo.row != coo.col
    rows, cols = coo.row[off_diagonal], coo.col[off_diagonal]
    weights = coo.data[off_diagonal]
    difference = scaled[rows] - scaled[cols]
    return float(0.5 * np.sum(weights * np.sum(difference * difference, axis=1)))


def edge_index(adjacency, add_self_loops: bool = True) -> tuple[np.ndarray, np.ndarray]:
    """Deduplicated ``(rows, cols)`` edge list of a (sparse) adjacency.

    Used by the edge-list GAT: entry ``k`` says node ``cols[k]`` is a
    neighbour of node ``rows[k]`` (the attention destination).  Self-loops
    are appended and duplicates merged; the list is sorted by ``(row, col)``
    so aggregation order matches a dense row-wise scan.

    The result is memoised on the sparse matrix object itself: adjacencies
    are static across a training run but the GAT layers ask for the edge
    list on every forward pass.
    """
    cached = getattr(adjacency, "_repro_edge_index", None)
    if cached is not None and cached[0] == add_self_loops:
        return cached[1], cached[2]
    matrix = _as_csr(adjacency)
    coo = matrix.tocoo()
    keep = coo.data != 0
    rows, cols = coo.row[keep], coo.col[keep]
    if add_self_loops:
        loops = np.arange(matrix.shape[0], dtype=rows.dtype)
        rows = np.concatenate([rows, loops])
        cols = np.concatenate([cols, loops])
    merged = sp.csr_matrix((np.ones(len(rows)), (rows, cols)),
                           shape=matrix.shape).tocoo()
    result = merged.row.astype(np.int64), merged.col.astype(np.int64)
    if sp.issparse(adjacency):
        try:
            adjacency._repro_edge_index = (add_self_loops,) + result
        except AttributeError:  # matrix types that forbid new attributes
            pass
    return result


def power_iteration_eigenvalue(matrix, iterations: int = 200,
                               tolerance: float = 1e-10) -> float:
    """Largest eigenvalue of a symmetric **PSD** operator by power iteration.

    Deterministic (fixed-seed start vector); used as the fallback when
    Lanczos does not converge.  Power iteration finds the eigenvalue of
    largest *modulus*, which equals the largest algebraic eigenvalue only
    when the spectrum is non-negative — true for the normalised Laplacian,
    the intended operator here.
    """
    n = matrix.shape[0]
    vector = np.random.default_rng(0).normal(size=n)
    vector /= np.linalg.norm(vector)
    eigenvalue = 0.0
    for _ in range(iterations):
        product = matrix @ vector
        norm = np.linalg.norm(product)
        if norm < tolerance:
            return 0.0
        vector = product / norm
        next_eigenvalue = float(vector @ (matrix @ vector))
        if abs(next_eigenvalue - eigenvalue) < tolerance:
            return next_eigenvalue
        eigenvalue = next_eigenvalue
    return eigenvalue


def largest_eigenvalue(matrix, dense_cutoff: int = DENSE_EIGEN_CUTOFF) -> float:
    """Largest eigenvalue of a symmetric (sparse or dense) matrix.

    Tiny matrices use dense ``eigvalsh`` (exact, and ``eigsh`` requires
    ``k < n``); larger ones use Lanczos ``eigsh(k=1)`` in ``O(|E|)`` per
    iteration.  When the Lanczos iteration itself fails, power iteration
    takes over — note that fallback assumes a PSD spectrum (it returns the
    largest-modulus eigenvalue), which holds for the Laplacians this is
    used on.
    """
    n = matrix.shape[0]
    if n <= dense_cutoff:
        dense = matrix.toarray() if sp.issparse(matrix) else np.asarray(matrix, dtype=np.float64)
        return float(np.linalg.eigvalsh(dense)[-1])
    try:
        values = eigsh(matrix, k=1, which="LA", return_eigenvectors=False)
        return float(values[0])
    except (ArpackError, ArpackNoConvergence):
        return power_iteration_eigenvalue(matrix)
