"""Alignment task container: two MMKGs, seed alignments and a test split.

This is the unit of work for every experiment: Definition 1 of the paper
seeks a one-to-one mapping between the source and target graphs given a
supervised fraction (``R_seed``) of gold pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .graph import MultiModalKG

__all__ = ["AlignmentPair", "KGPair"]


@dataclass(frozen=True)
class AlignmentPair:
    """A gold correspondence between a source and a target entity."""

    source: int
    target: int


@dataclass
class KGPair:
    """A multi-modal entity-alignment problem instance.

    Parameters
    ----------
    source, target:
        The two multi-modal knowledge graphs to align.
    alignments:
        All gold entity correspondences (the mapping ``Φ``).
    seed_ratio:
        Fraction of gold pairs revealed as training supervision (``R_seed``).
    name:
        Dataset-style identifier (e.g. ``"FBDB15K"`` or ``"DBP15K_FR-EN"``).
    """

    source: MultiModalKG
    target: MultiModalKG
    alignments: list[AlignmentPair]
    seed_ratio: float = 0.3
    name: str = "kg-pair"
    _train: list[AlignmentPair] = field(default_factory=list, repr=False)
    _test: list[AlignmentPair] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.seed_ratio < 1.0:
            raise ValueError("seed_ratio must lie strictly between 0 and 1")
        for pair in self.alignments:
            if not 0 <= pair.source < self.source.num_entities:
                raise ValueError(f"alignment {pair} references an unknown source entity")
            if not 0 <= pair.target < self.target.num_entities:
                raise ValueError(f"alignment {pair} references an unknown target entity")
        sources = [p.source for p in self.alignments]
        targets = [p.target for p in self.alignments]
        if len(set(sources)) != len(sources) or len(set(targets)) != len(targets):
            raise ValueError("alignments must define a one-to-one mapping")

    # ------------------------------------------------------------------
    # Splits
    # ------------------------------------------------------------------
    def split(self, rng: np.random.Generator | None = None) -> tuple[list[AlignmentPair], list[AlignmentPair]]:
        """Split gold pairs into seed (train) and test pairs and cache the result."""
        if self._train or self._test:
            return list(self._train), list(self._test)
        rng = rng or np.random.default_rng(0)
        order = np.arange(len(self.alignments))
        rng.shuffle(order)
        seed_count = max(1, int(round(self.seed_ratio * len(self.alignments))))
        seed_count = min(seed_count, len(self.alignments) - 1)
        train = [self.alignments[i] for i in order[:seed_count]]
        test = [self.alignments[i] for i in order[seed_count:]]
        self._train.extend(train)
        self._test.extend(test)
        return list(train), list(test)

    @property
    def train_pairs(self) -> list[AlignmentPair]:
        train, _ = self.split()
        return train

    @property
    def test_pairs(self) -> list[AlignmentPair]:
        _, test = self.split()
        return test

    def with_seed_ratio(self, seed_ratio: float) -> "KGPair":
        """Return a copy of the task with a different supervision ratio."""
        return KGPair(
            source=self.source,
            target=self.target,
            alignments=list(self.alignments),
            seed_ratio=seed_ratio,
            name=self.name,
        )

    # ------------------------------------------------------------------
    # Statistics and reports
    # ------------------------------------------------------------------
    @property
    def num_alignments(self) -> int:
        return len(self.alignments)

    def statistics(self) -> dict[str, dict[str, float]]:
        """Table-I style statistics for both graphs plus split sizes."""
        return {
            "source": self.source.statistics(),
            "target": self.target.statistics(),
            "task": {
                "alignments": float(self.num_alignments),
                "seed_ratio": self.seed_ratio,
                "train_pairs": float(len(self.train_pairs)),
                "test_pairs": float(len(self.test_pairs)),
            },
        }
