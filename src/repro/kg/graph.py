"""Multi-modal knowledge graph data structure.

A :class:`MultiModalKG` holds the four ingredient sets of the paper's
preliminaries (Sec. II): entities ``E``, relations ``R``, textual attributes
``A`` and images ``V``, together with the relation triples that induce the
graph structure.  Modal features may be missing for any entity — exactly
the *semantic inconsistency* the paper studies — and the structure exposes
coverage statistics, adjacency construction and modality-masking utilities
used to build the 60-split benchmark suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np
import scipy.sparse as sp

__all__ = ["RelationTriple", "AttributeTriple", "MultiModalKG", "MODALITIES"]

#: Canonical modality keys: graph structure, relation, text attribute, vision.
MODALITIES = ("graph", "relation", "attribute", "vision")


@dataclass(frozen=True)
class RelationTriple:
    """A relational fact ``(head, relation, tail)`` between two entities."""

    head: int
    relation: int
    tail: int


@dataclass(frozen=True)
class AttributeTriple:
    """A textual attribute fact ``(entity, attribute, value)``."""

    entity: int
    attribute: int
    value: str


@dataclass
class MultiModalKG:
    """A single multi-modal knowledge graph ``G = (E, R, A, V)``.

    Parameters
    ----------
    entity_names:
        Human-readable identifier per entity; entity ids are positional.
    num_relations, num_attributes:
        Vocabulary sizes for relations and textual attribute predicates.
    relation_triples:
        Relational facts defining the graph structure.
    attribute_triples:
        Textual attribute facts; an entity with no attribute triples has a
        missing text modality.
    image_features:
        Mapping from entity id to its visual feature vector.  Entities not
        present have a missing visual modality.
    name:
        Dataset-style name (e.g. ``"FB15K"``), used in reports.
    """

    entity_names: list[str]
    num_relations: int
    num_attributes: int
    relation_triples: list[RelationTriple] = field(default_factory=list)
    attribute_triples: list[AttributeTriple] = field(default_factory=list)
    image_features: dict[int, np.ndarray] = field(default_factory=dict)
    name: str = "MMKG"
    _degree_cache: tuple[int, np.ndarray] | None = field(
        default=None, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        num = self.num_entities
        for triple in self.relation_triples:
            if not (0 <= triple.head < num and 0 <= triple.tail < num):
                raise ValueError(f"relation triple {triple} references an unknown entity")
            if not 0 <= triple.relation < self.num_relations:
                raise ValueError(f"relation triple {triple} references an unknown relation")
        for triple in self.attribute_triples:
            if not 0 <= triple.entity < num:
                raise ValueError(f"attribute triple {triple} references an unknown entity")
            if not 0 <= triple.attribute < self.num_attributes:
                raise ValueError(f"attribute triple {triple} references an unknown attribute")
        for entity in self.image_features:
            if not 0 <= entity < num:
                raise ValueError(f"image feature references an unknown entity {entity}")

    # ------------------------------------------------------------------
    # Basic statistics
    # ------------------------------------------------------------------
    @property
    def num_entities(self) -> int:
        return len(self.entity_names)

    @property
    def num_relation_triples(self) -> int:
        return len(self.relation_triples)

    @property
    def num_attribute_triples(self) -> int:
        return len(self.attribute_triples)

    @property
    def num_images(self) -> int:
        return len(self.image_features)

    def entities_with_attributes(self) -> set[int]:
        """Ids of entities that have at least one textual attribute."""
        return {triple.entity for triple in self.attribute_triples}

    def entities_with_images(self) -> set[int]:
        """Ids of entities that have a visual feature."""
        return set(self.image_features)

    def image_coverage(self) -> float:
        """Fraction of entities with an associated image (cf. Sec. I statistics)."""
        return self.num_images / max(1, self.num_entities)

    def attribute_coverage(self) -> float:
        """Fraction of entities with at least one textual attribute."""
        return len(self.entities_with_attributes()) / max(1, self.num_entities)

    def statistics(self) -> dict[str, float]:
        """Summary row matching the columns of the paper's Table I."""
        return {
            "entities": self.num_entities,
            "relations": self.num_relations,
            "attributes": self.num_attributes,
            "relation_triples": self.num_relation_triples,
            "attribute_triples": self.num_attribute_triples,
            "images": self.num_images,
            "image_coverage": self.image_coverage(),
            "attribute_coverage": self.attribute_coverage(),
        }

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def adjacency_matrix(self, weighted: bool = False,
                         sparse: bool = False) -> np.ndarray | sp.csr_matrix:
        """Symmetric adjacency matrix induced by the relation triples.

        When ``weighted`` the entry counts parallel edges, otherwise it is
        binary.  The graph is treated as undirected, as assumed throughout
        the paper's Dirichlet-energy analysis.  With ``sparse`` a CSR matrix
        is returned and no ``n x n`` dense array is ever materialised, which
        is the required form for graphs beyond a few hundred entities.
        """
        from .sparse import adjacency_from_triples

        if sparse:
            return adjacency_from_triples(self.num_entities, self.relation_triples,
                                          weighted=weighted)
        adjacency = np.zeros((self.num_entities, self.num_entities))
        for triple in self.relation_triples:
            if triple.head == triple.tail:
                continue
            adjacency[triple.head, triple.tail] += 1.0
            adjacency[triple.tail, triple.head] += 1.0
        if not weighted:
            adjacency = (adjacency > 0).astype(np.float64)
        return adjacency

    def neighbours(self, entity: int) -> set[int]:
        """Entities sharing a relation triple with ``entity``."""
        result: set[int] = set()
        for triple in self.relation_triples:
            if triple.head == entity:
                result.add(triple.tail)
            elif triple.tail == entity:
                result.add(triple.head)
        result.discard(entity)
        return result

    def degree(self) -> np.ndarray:
        """Node degrees under the binary undirected adjacency.

        Computed directly from the relation triples in ``O(|E| log |E|)``
        (no adjacency matrix of any kind) and cached; the triple list is
        treated as immutable after construction.  As a safety net the cache
        is invalidated when the triple count changes (catching appends to
        the public list), though in-place edits of existing triples are not
        detectable.
        """
        from .sparse import degrees_from_triples

        if self._degree_cache is None or self._degree_cache[0] != len(self.relation_triples):
            self._degree_cache = (len(self.relation_triples),
                                  degrees_from_triples(self.num_entities,
                                                       self.relation_triples))
        return self._degree_cache[1].copy()

    #: Plural alias of :meth:`degree`.
    degrees = degree

    # ------------------------------------------------------------------
    # Semantic-inconsistency manipulation
    # ------------------------------------------------------------------
    def with_image_ratio(self, ratio: float, rng: np.random.Generator) -> "MultiModalKG":
        """Return a copy keeping images for only a ``ratio`` fraction of entities.

        This is how the ``R_img`` splits of Table III are constructed: a
        uniformly random subset of entities keeps its visual feature and all
        other entities lose it, simulating missing-modality inconsistency.
        """
        if not 0.0 <= ratio <= 1.0:
            raise ValueError("ratio must lie in [0, 1]")
        keep_count = int(round(ratio * self.num_entities))
        candidates = sorted(self.image_features)
        rng.shuffle(candidates)
        kept = set(candidates[:keep_count])
        images = {e: feat.copy() for e, feat in self.image_features.items() if e in kept}
        return MultiModalKG(
            entity_names=list(self.entity_names),
            num_relations=self.num_relations,
            num_attributes=self.num_attributes,
            relation_triples=list(self.relation_triples),
            attribute_triples=list(self.attribute_triples),
            image_features=images,
            name=self.name,
        )

    def with_attribute_ratio(self, ratio: float, rng: np.random.Generator) -> "MultiModalKG":
        """Return a copy keeping text attributes for only a ``ratio`` fraction of entities.

        Mirrors the ``R_tex`` splits of Table II: entities outside the kept
        subset lose *all* their attribute triples (missing modality), which
        also induces attribute-count disparities for aligned pairs.
        """
        if not 0.0 <= ratio <= 1.0:
            raise ValueError("ratio must lie in [0, 1]")
        with_attrs = sorted(self.entities_with_attributes())
        keep_count = int(round(ratio * self.num_entities))
        rng.shuffle(with_attrs)
        kept = set(with_attrs[:keep_count])
        attributes = [t for t in self.attribute_triples if t.entity in kept]
        return MultiModalKG(
            entity_names=list(self.entity_names),
            num_relations=self.num_relations,
            num_attributes=self.num_attributes,
            relation_triples=list(self.relation_triples),
            attribute_triples=attributes,
            image_features={e: feat.copy() for e, feat in self.image_features.items()},
            name=self.name,
        )

    def modality_mask(self) -> dict[str, np.ndarray]:
        """Boolean presence mask per non-structural modality.

        ``mask[m][i]`` is True when entity ``i`` has native features for
        modality ``m``; the structural modality is always present.
        """
        has_attribute = np.zeros(self.num_entities, dtype=bool)
        for triple in self.attribute_triples:
            has_attribute[triple.entity] = True
        has_relation = np.zeros(self.num_entities, dtype=bool)
        for triple in self.relation_triples:
            has_relation[triple.head] = True
            has_relation[triple.tail] = True
        has_image = np.zeros(self.num_entities, dtype=bool)
        for entity in self.image_features:
            has_image[entity] = True
        return {
            "graph": np.ones(self.num_entities, dtype=bool),
            "relation": has_relation,
            "attribute": has_attribute,
            "vision": has_image,
        }

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def from_triples(num_entities: int,
                     relation_triples: Iterable[tuple[int, int, int]],
                     attribute_triples: Iterable[tuple[int, int, str]] = (),
                     image_features: Mapping[int, Sequence[float]] | None = None,
                     num_relations: int | None = None,
                     num_attributes: int | None = None,
                     name: str = "MMKG") -> "MultiModalKG":
        """Build a graph from raw tuples, inferring vocabulary sizes when omitted."""
        relation_triples = [RelationTriple(*t) for t in relation_triples]
        attribute_triples = [AttributeTriple(*t) for t in attribute_triples]
        if num_relations is None:
            num_relations = 1 + max((t.relation for t in relation_triples), default=-1)
        if num_attributes is None:
            num_attributes = 1 + max((t.attribute for t in attribute_triples), default=-1)
        images = {int(k): np.asarray(v, dtype=np.float64)
                  for k, v in (image_features or {}).items()}
        return MultiModalKG(
            entity_names=[f"{name}/e{i}" for i in range(num_entities)],
            num_relations=num_relations,
            num_attributes=num_attributes,
            relation_triples=relation_triples,
            attribute_triples=attribute_triples,
            image_features=images,
            name=name,
        )
