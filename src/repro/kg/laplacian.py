"""Spectral graph utilities: normalised adjacency, Laplacian and Dirichlet energy.

These implement the quantities of the paper's preliminaries (Sec. II):
``Ã = D^{-1/2} A D^{-1/2}``, ``Δ = I - Ã`` and the Dirichlet energy
``E(X) = tr(Xᵀ Δ X)`` of Definition 3, together with the partitioned views
(consistent / count-inconsistent / modality-missing entities, Eq. 2) used by
Semantic Propagation.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

__all__ = [
    "normalized_adjacency",
    "graph_laplacian",
    "dirichlet_energy",
    "dirichlet_energy_pairwise",
    "energy_gap_bounds",
    "layer_energy_bounds",
    "partition_laplacian",
    "largest_laplacian_eigenvalue",
]


def _as_dense(adjacency) -> np.ndarray:
    """Densify small inputs for the dense reference implementations.

    The sparse-first pipeline never calls this on large graphs: sparse
    inputs to the energy/eigenvalue helpers below are routed through
    :mod:`repro.kg.sparse` instead of being densified.
    """
    if sp.issparse(adjacency):
        return np.asarray(adjacency.todense(), dtype=np.float64)
    return np.asarray(adjacency, dtype=np.float64)


def normalized_adjacency(adjacency, add_self_loops: bool = True) -> np.ndarray:
    """Symmetric normalisation ``D^{-1/2} (A [+ I]) D^{-1/2}``.

    Adding self-loops (the default) matches the ``D + 1`` degree shift in
    the paper's Definition 3 and keeps isolated entities well defined — such
    entities are common in the high-missing-modality splits.
    """
    from .sparse import _inverse_sqrt_degrees

    dense = _as_dense(adjacency)
    if dense.shape[0] != dense.shape[1]:
        raise ValueError("adjacency must be square")
    if add_self_loops:
        dense = dense + np.eye(dense.shape[0])
    # Shared with the sparse backend so the degree guard stays bit-identical
    # across the two implementations (the parity tests assert atol=1e-15).
    inv_sqrt = _inverse_sqrt_degrees(dense.sum(axis=1))
    return dense * inv_sqrt[:, None] * inv_sqrt[None, :]


def graph_laplacian(adjacency, add_self_loops: bool = True) -> np.ndarray:
    """Normalised graph Laplacian ``Δ = I - Ã`` (positive semi-definite)."""
    normalised = normalized_adjacency(adjacency, add_self_loops=add_self_loops)
    return np.eye(normalised.shape[0]) - normalised


def dirichlet_energy(features: np.ndarray, laplacian) -> float:
    """Dirichlet energy ``tr(Xᵀ Δ X)`` of Definition 3 (trace form).

    Accepts a dense or CSR Laplacian; the sparse path evaluates the
    equivalent ``Σ_ij x_ij (Δ x)_ij`` in ``O(|E| d)`` without densifying.
    """
    features = np.asarray(features, dtype=np.float64)
    if features.ndim == 1:
        features = features[:, None]
    if sp.issparse(laplacian):
        return float(np.sum(features * np.asarray(laplacian @ features)))
    return float(np.trace(features.T @ laplacian @ features))


def dirichlet_energy_pairwise(features: np.ndarray, adjacency,
                              add_self_loops: bool = True) -> float:
    """Dirichlet energy in the pairwise form of Definition 3.

    ``1/2 Σ_ij a_ij || x_i / sqrt(d_i) - x_j / sqrt(d_j) ||²`` with degrees
    taken after the optional self-loop shift; equals the trace form for the
    same Laplacian (verified by property-based tests).  A sparse adjacency
    is summed edge-wise in ``O(|E| d)`` instead of building the full
    ``n x n`` pairwise-distance matrix.
    """
    features = np.asarray(features, dtype=np.float64)
    if features.ndim == 1:
        features = features[:, None]
    if sp.issparse(adjacency):
        from .sparse import dirichlet_energy_edges
        return dirichlet_energy_edges(features, adjacency, add_self_loops=add_self_loops)
    dense = _as_dense(adjacency)
    if add_self_loops:
        dense_with_loops = dense + np.eye(dense.shape[0])
    else:
        dense_with_loops = dense
    from .sparse import _inverse_sqrt_degrees
    inv_sqrt = _inverse_sqrt_degrees(dense_with_loops.sum(axis=1))
    scaled = features * inv_sqrt[:, None]
    # ||s_i - s_j||^2 = ||s_i||^2 + ||s_j||^2 - 2 s_i.s_j, summed with weights a_ij.
    squared_norms = np.sum(scaled ** 2, axis=1)
    cross = scaled @ scaled.T
    pairwise = squared_norms[:, None] + squared_norms[None, :] - 2.0 * cross
    return float(0.5 * np.sum(dense_with_loops * pairwise))


def largest_laplacian_eigenvalue(laplacian) -> float:
    """Largest eigenvalue of the (symmetric) Laplacian; lies in ``[0, 2)``.

    Tiny graphs use exact dense ``eigvalsh``; anything larger uses Lanczos
    ``eigsh(k=1)`` (with a power-iteration fallback), which avoids the
    ``O(n³)`` full eigendecomposition and works on sparse Laplacians.
    """
    from .sparse import largest_eigenvalue

    return largest_eigenvalue(laplacian)


def energy_gap_bounds(original: np.ndarray, modified: np.ndarray,
                      laplacian: np.ndarray) -> tuple[float, float, float]:
    """Bounds of Corollary 1 on ``||X̂ - X||₂`` from the Dirichlet-energy gap.

    Returns ``(lower, distance, upper)`` where ``distance`` is the Frobenius
    norm of the perturbation and ``lower <= distance`` always holds (the
    upper bound requires the minimum-norm condition of the corollary and is
    reported for inspection).
    """
    original = np.asarray(original, dtype=np.float64)
    modified = np.asarray(modified, dtype=np.float64)
    gap = abs(dirichlet_energy(modified, laplacian) - dirichlet_energy(original, laplacian))
    lam = max(largest_laplacian_eigenvalue(laplacian), 1e-12)
    norm_max = max(np.linalg.norm(original), np.linalg.norm(modified), 1e-12)
    norm_min = max(min(np.linalg.norm(original), np.linalg.norm(modified)), 1e-12)
    distance = float(np.linalg.norm(modified - original))
    lower = gap / (2.0 * lam * norm_max)
    upper = gap / (2.0 * lam * norm_min)
    return lower, distance, upper


def layer_energy_bounds(weight: np.ndarray, previous_energy: float) -> tuple[float, float]:
    """Proposition 2 bounds on the energy after a linear layer ``X W``.

    The energy of ``X^{(k)} = X^{(k-1)} W`` is bounded by the squared
    minimum / maximum singular values of ``W`` times the previous energy.
    """
    singular_values = np.linalg.svd(np.asarray(weight, dtype=np.float64), compute_uv=False)
    p_min = float(singular_values.min() ** 2)
    p_max = float(singular_values.max() ** 2)
    return p_min * previous_energy, p_max * previous_energy


def partition_laplacian(laplacian: np.ndarray,
                        consistent: np.ndarray,
                        count_inconsistent: np.ndarray,
                        missing: np.ndarray) -> dict[str, np.ndarray]:
    """Partition ``Δ`` into the blocks of Eq. 2 / Eq. 18.

    ``consistent``, ``count_inconsistent`` and ``missing`` are index arrays
    for ``E_c``, ``E_{o1}`` and ``E_{o2}``; they must be disjoint and cover
    all nodes.  The returned dict holds every block needed by the
    closed-form solution of Proposition 4 and the Euler scheme.
    """
    consistent = np.asarray(consistent, dtype=np.int64)
    count_inconsistent = np.asarray(count_inconsistent, dtype=np.int64)
    missing = np.asarray(missing, dtype=np.int64)
    union = np.concatenate([consistent, count_inconsistent, missing])
    if len(np.unique(union)) != laplacian.shape[0] or len(union) != laplacian.shape[0]:
        raise ValueError("partition must be disjoint and cover every node")
    blocks: dict[str, np.ndarray] = {}
    index = {"c": consistent, "o1": count_inconsistent, "o2": missing}
    sparse_laplacian = laplacian.tocsr() if sp.issparse(laplacian) else None
    for row_key, rows in index.items():
        for col_key, cols in index.items():
            if sparse_laplacian is not None:
                blocks[f"{row_key}{col_key}"] = sparse_laplacian[rows][:, cols]
            else:
                blocks[f"{row_key}{col_key}"] = laplacian[np.ix_(rows, cols)]
    return blocks
