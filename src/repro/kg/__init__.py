"""Multi-modal knowledge graph substrate: graphs, alignment tasks, spectra, IO."""

from .graph import MultiModalKG, RelationTriple, AttributeTriple, MODALITIES
from .pair import KGPair, AlignmentPair
from .laplacian import (
    normalized_adjacency,
    graph_laplacian,
    dirichlet_energy,
    dirichlet_energy_pairwise,
    energy_gap_bounds,
    layer_energy_bounds,
    partition_laplacian,
    largest_laplacian_eigenvalue,
)
from .sampling import NeighbourSampler, SubgraphLayer, SubgraphView, attention_pattern
from .sparse import (
    adjacency_from_triples,
    degrees_from_triples,
    normalized_adjacency_sparse,
    graph_laplacian_sparse,
    dirichlet_energy_edges,
    edge_index,
    largest_eigenvalue,
)
from .io import save_pair_json, load_pair_json, save_pair_dbp_format, load_pair_dbp_format

__all__ = [
    "MultiModalKG",
    "RelationTriple",
    "AttributeTriple",
    "MODALITIES",
    "KGPair",
    "AlignmentPair",
    "normalized_adjacency",
    "graph_laplacian",
    "dirichlet_energy",
    "dirichlet_energy_pairwise",
    "energy_gap_bounds",
    "layer_energy_bounds",
    "partition_laplacian",
    "largest_laplacian_eigenvalue",
    "NeighbourSampler",
    "SubgraphLayer",
    "SubgraphView",
    "attention_pattern",
    "adjacency_from_triples",
    "degrees_from_triples",
    "normalized_adjacency_sparse",
    "graph_laplacian_sparse",
    "dirichlet_energy_edges",
    "edge_index",
    "largest_eigenvalue",
    "save_pair_json",
    "load_pair_json",
    "save_pair_dbp_format",
    "load_pair_dbp_format",
]
