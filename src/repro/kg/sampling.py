"""Layer-wise neighbour sampling over CSR adjacency (GraphSAGE-style).

Full-graph message passing encodes *every* entity on every optimiser step,
which makes training — not decoding — the memory and wall-clock ceiling
beyond ~10^4 entities.  This module provides the sampling substrate for
mini-batch training: starting from a batch of seed nodes, each encoder
layer's receptive field is restricted to a sampled neighbourhood, extracted
as an induced :class:`SubgraphView` with

* per-layer global node arrays (``node_layers[0]`` is the outermost input
  set, ``node_layers[-1]`` the seeds whose final embeddings are needed);
* local<->global id maps (node arrays are sorted, so lookups are
  ``searchsorted``);
* per-layer renumbered edge lists and CSR blocks, ready for the edge-list
  GAT and the ``spmm`` GCN path.

Determinism: a :class:`NeighbourSampler` owns a seeded generator, so a
training run's batch subgraphs are reproducible.  In *full-neighbourhood*
mode (``fanout=None``) no edge is dropped and local ids ascend with global
ids, so every graph reduction (CSR row aggregation, segment softmax/sum)
sums the same values in the same order as the full-graph forward — the
subgraph pass reproduces it bit-for-bit up to BLAS shape effects in the
dense projections, the equivalence the property tests assert for GCN and
GAT (``rtol=0, atol=1e-12``).

Sampled mode keeps any explicit diagonal (self-loop) entry unconditionally
— the fanout budget applies to the off-diagonal neighbours — and can
rescale the surviving off-diagonal weights by ``degree / fanout`` so a
sampled ``spmm`` aggregation is an unbiased estimator of the full one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np
import scipy.sparse as sp

__all__ = [
    "SubgraphLayer",
    "SubgraphView",
    "NeighbourSampler",
    "attention_pattern",
]


def attention_pattern(adjacency) -> sp.csr_matrix:
    """Binary self-looped CSR pattern ``A != 0  OR  I`` used by the GAT.

    Matches the edge set of :func:`repro.kg.sparse.edge_index` with
    ``add_self_loops=True`` (duplicates merged, indices sorted), so a
    full-neighbourhood subgraph over this pattern reproduces the full-graph
    edge-list attention exactly.  Accepts a dense array or any scipy
    sparse matrix.
    """
    if sp.issparse(adjacency):
        matrix = adjacency.tocsr().astype(np.float64)
    else:
        matrix = sp.csr_matrix(np.asarray(adjacency, dtype=np.float64))
    pattern = (matrix != 0).astype(np.float64)
    pattern = (pattern + sp.identity(matrix.shape[0], format="csr")).tocsr()
    pattern.data[:] = 1.0
    pattern.sort_indices()
    return pattern


def _flat_row_positions(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Positions into CSR ``indices``/``data`` of the concatenated row slices."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    exclusive = np.cumsum(counts) - counts
    offsets = np.arange(total) - np.repeat(exclusive, counts)
    return np.repeat(starts, counts) + offsets


@dataclass
class SubgraphLayer:
    """One renumbered message-passing step: input node set -> output node set.

    ``edge_src`` / ``edge_dst`` are *local* positions into the layer's input
    and output node arrays; edges are sorted by ``(dst, src)`` so segment
    reductions visit neighbours in the same order as a full-graph CSR row
    scan.  ``dst_in_src`` locates every output node inside the input set
    (output nodes are always included among the inputs), which bipartite
    attention needs for the destination-side logits.
    """

    num_src: int
    num_dst: int
    edge_src: np.ndarray
    edge_dst: np.ndarray
    edge_weight: np.ndarray
    dst_in_src: np.ndarray
    _block: sp.csr_matrix | None = field(default=None, repr=False, compare=False)

    @property
    def num_edges(self) -> int:
        return len(self.edge_src)

    def csr_block(self) -> sp.csr_matrix:
        """The ``(num_dst, num_src)`` renumbered CSR block (cached).

        In full-neighbourhood mode this equals the underlying matrix
        restricted to ``rows=output nodes, cols=input nodes`` — same values
        in the same per-row order, so ``spmm`` sums in the full-graph order.
        """
        if self._block is None:
            self._block = sp.csr_matrix(
                (self.edge_weight, (self.edge_dst, self.edge_src)),
                shape=(self.num_dst, self.num_src))
            self._block.sort_indices()
        return self._block


@dataclass
class SubgraphView:
    """Induced multi-layer subgraph around a batch of seed nodes.

    ``node_layers[k]`` holds the (sorted, unique) global ids feeding network
    layer ``k``; ``layers[k]`` carries the renumbered edges mapping
    ``node_layers[k] -> node_layers[k + 1]``.  The final entry
    ``node_layers[-1]`` is the seed set whose output embeddings the caller
    consumes (and scatters back to global arrays).
    """

    node_layers: list[np.ndarray]
    layers: list[SubgraphLayer]

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    @property
    def input_nodes(self) -> np.ndarray:
        """Global ids whose features enter the first layer (largest set)."""
        return self.node_layers[0]

    @property
    def seed_nodes(self) -> np.ndarray:
        """Global ids of the output rows produced by the last layer."""
        return self.node_layers[-1]

    @property
    def num_input(self) -> int:
        return len(self.node_layers[0])

    @property
    def num_seeds(self) -> int:
        return len(self.node_layers[-1])

    def local_to_global(self, local_ids, layer: int = -1) -> np.ndarray:
        """Map local positions in ``node_layers[layer]`` to global ids."""
        return self.node_layers[layer][np.asarray(local_ids, dtype=np.int64)]

    def global_to_local(self, global_ids, layer: int = -1) -> np.ndarray:
        """Map global ids to their positions within ``node_layers[layer]``.

        Raises ``KeyError`` when an id is not part of that node set — seed
        pairs must be drawn from the sampled batch.
        """
        nodes = self.node_layers[layer]
        global_ids = np.asarray(global_ids, dtype=np.int64)
        positions = np.searchsorted(nodes, global_ids)
        if len(nodes) == 0:
            if len(global_ids):
                raise KeyError(f"layer {layer} of this subgraph is empty")
            return positions
        missing = nodes[np.minimum(positions, len(nodes) - 1)] != global_ids
        if np.any(missing):
            absent = np.unique(global_ids[missing])[:5]
            raise KeyError(f"global ids {absent.tolist()} are not in layer "
                           f"{layer} of this subgraph")
        return positions

    def scatter_rows(self, values: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Scatter per-seed output rows back into a global ``(N, d)`` array."""
        out[self.seed_nodes] = values
        return out


class NeighbourSampler:
    """Layer-wise neighbour sampler over one CSR message-passing operator.

    Parameters
    ----------
    matrix:
        Square CSR matrix whose sparsity pattern defines neighbourhoods —
        the normalised adjacency for GCN-style ``spmm`` layers, or an
        :func:`attention_pattern` for the edge-list GAT.
    fanouts:
        One entry per network layer, ordered as the layers are applied
        (``fanouts[0]`` belongs to the first, outermost layer).  ``None``
        (or ``-1``) keeps the full neighbourhood; a positive integer keeps
        at most that many *off-diagonal* neighbours per node — an explicit
        diagonal entry (self-loop) is always retained on top.
    seed:
        Seed of the sampler-owned generator (used when ``sample`` is not
        given an explicit one), making training runs reproducible.
    rescale:
        Rescale sampled off-diagonal weights by ``degree / fanout`` so the
        sampled aggregation is an unbiased estimator of the full sum.
        Irrelevant for attention patterns, whose weights are ignored.
    """

    def __init__(self, matrix, fanouts: Sequence[int | None], seed: int = 0,
                 rescale: bool = True):
        if sp.issparse(matrix):
            matrix = matrix.tocsr().astype(np.float64)
        else:
            matrix = sp.csr_matrix(np.asarray(matrix, dtype=np.float64))
        if matrix.shape[0] != matrix.shape[1]:
            raise ValueError("sampling requires a square matrix")
        matrix.sort_indices()
        self.matrix = matrix
        normalized: list[int | None] = []
        for fanout in fanouts:
            if fanout is None or fanout == -1:
                normalized.append(None)
            elif int(fanout) > 0:
                normalized.append(int(fanout))
            else:
                raise ValueError("fanouts must be positive, -1 or None")
        if not normalized:
            raise ValueError("at least one layer fanout is required")
        self.fanouts = tuple(normalized)
        self.rescale = rescale
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    @property
    def num_layers(self) -> int:
        return len(self.fanouts)

    @property
    def num_nodes(self) -> int:
        return self.matrix.shape[0]

    def is_full_neighbourhood(self) -> bool:
        """True when no layer drops any edge (exact receptive fields)."""
        return all(fanout is None for fanout in self.fanouts)

    # ------------------------------------------------------------------
    def _layer_edges(self, dst_nodes: np.ndarray, fanout: int | None,
                     rng: np.random.Generator):
        """Sampled ``(src_global, weight, dst_local)`` edges for one layer.

        Rows are visited in ascending ``dst`` order and entries within a row
        keep their CSR (ascending column) order, so the renumbered edge list
        is ``(dst, src)``-sorted — the invariant the bit-equality of the
        full-neighbourhood forward relies on.

        The sampled path is fully vectorised (this runs once per layer per
        side per batch): one random key per gathered edge, a single lexsort
        grouping edges by row in key order, and a rank-below-fanout mask —
        equivalent to a per-row uniform draw without replacement.  Self
        edges get key ``-1`` so they are always retained without consuming
        the fanout budget.
        """
        indptr, indices, data = self.matrix.indptr, self.matrix.indices, self.matrix.data
        starts = indptr[dst_nodes]
        counts = indptr[dst_nodes + 1] - starts
        positions = _flat_row_positions(starts, counts)
        dst_local = np.repeat(np.arange(len(dst_nodes)), counts)
        if fanout is None:
            return indices[positions], data[positions].copy(), dst_local

        cols = indices[positions]
        is_self = cols == dst_nodes[dst_local]
        self_counts = np.bincount(dst_local[is_self], minlength=len(dst_nodes))
        off_counts = counts - self_counts
        needs_sampling = off_counts > fanout
        if not needs_sampling.any():
            return cols, data[positions].copy(), dst_local

        keys = rng.random(len(positions))
        keys[is_self] = -1.0
        order = np.lexsort((keys, dst_local))
        # rank of each edge within its row, in key order (self edges first)
        row_offsets = np.cumsum(counts) - counts
        ranks = np.arange(len(positions)) - np.repeat(row_offsets, counts)
        allowed = np.where(needs_sampling, fanout + self_counts, counts)
        keep = ranks < allowed[dst_local[order]]

        kept_dst = dst_local[order][keep]
        kept_positions = positions[order][keep]
        # restore the (dst, ascending column) order required downstream
        restore = np.lexsort((indices[kept_positions], kept_dst))
        kept_dst = kept_dst[restore]
        kept_positions = kept_positions[restore]
        kept_cols = indices[kept_positions]
        weights = data[kept_positions].copy()
        if self.rescale:
            scale = np.where(needs_sampling, off_counts / float(fanout), 1.0)
            off_diagonal = kept_cols != dst_nodes[kept_dst]
            weights[off_diagonal] *= scale[kept_dst[off_diagonal]]
        return kept_cols, weights, kept_dst

    def sample(self, seed_nodes, rng: np.random.Generator | None = None) -> SubgraphView:
        """Extract the induced subgraph view around ``seed_nodes``.

        Seeds are deduplicated and sorted; sampling proceeds from the seeds
        outwards (last network layer first), unioning every layer's output
        nodes into its input set so destination features are always
        available to the bipartite layers.
        """
        rng = rng if rng is not None else self._rng
        seeds = np.unique(np.asarray(seed_nodes, dtype=np.int64))
        if len(seeds) == 0:
            raise ValueError("sample() requires at least one seed node")
        if seeds[0] < 0 or seeds[-1] >= self.num_nodes:
            raise ValueError("seed node ids out of range")

        node_layers: list[np.ndarray] = [seeds]
        raw_edges: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        for fanout in reversed(self.fanouts):
            dst_nodes = node_layers[0]
            src_global, weights, dst_local = self._layer_edges(dst_nodes, fanout, rng)
            src_nodes = np.union1d(dst_nodes, src_global)
            raw_edges.append((src_global, weights, dst_local))
            node_layers.insert(0, src_nodes)

        layers: list[SubgraphLayer] = []
        for index, (src_global, weights, dst_local) in enumerate(reversed(raw_edges)):
            src_nodes = node_layers[index]
            dst_nodes = node_layers[index + 1]
            layers.append(SubgraphLayer(
                num_src=len(src_nodes),
                num_dst=len(dst_nodes),
                edge_src=np.searchsorted(src_nodes, src_global),
                edge_dst=dst_local,
                edge_weight=np.asarray(weights, dtype=np.float64),
                dst_in_src=np.searchsorted(src_nodes, dst_nodes),
            ))
        return SubgraphView(node_layers=node_layers, layers=layers)
