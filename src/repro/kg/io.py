"""Serialisation of MMKGs and alignment tasks.

Two formats are supported:

* a JSON bundle (one file per :class:`KGPair`) convenient for checkpoints
  and examples, and
* a DBP15K-style directory layout (``triples_1``, ``triples_2``,
  ``attr_triples_1``, ``ent_links`` …) so that users with access to the real
  datasets can load them into the same pipeline.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .graph import AttributeTriple, MultiModalKG, RelationTriple
from .pair import AlignmentPair, KGPair

__all__ = ["save_pair_json", "load_pair_json", "save_pair_dbp_format", "load_pair_dbp_format"]


def _graph_to_dict(graph: MultiModalKG) -> dict:
    return {
        "name": graph.name,
        "entity_names": graph.entity_names,
        "num_relations": graph.num_relations,
        "num_attributes": graph.num_attributes,
        "relation_triples": [[int(t.head), int(t.relation), int(t.tail)]
                             for t in graph.relation_triples],
        "attribute_triples": [[int(t.entity), int(t.attribute), t.value]
                              for t in graph.attribute_triples],
        "image_features": {str(e): feat.tolist() for e, feat in graph.image_features.items()},
    }


def _graph_from_dict(payload: dict) -> MultiModalKG:
    return MultiModalKG(
        entity_names=list(payload["entity_names"]),
        num_relations=int(payload["num_relations"]),
        num_attributes=int(payload["num_attributes"]),
        relation_triples=[RelationTriple(*map(int, t)) for t in payload["relation_triples"]],
        attribute_triples=[AttributeTriple(int(e), int(a), str(v))
                           for e, a, v in payload["attribute_triples"]],
        image_features={int(e): np.asarray(feat, dtype=np.float64)
                        for e, feat in payload["image_features"].items()},
        name=payload.get("name", "MMKG"),
    )


def save_pair_json(pair: KGPair, path: str | Path) -> Path:
    """Serialise a :class:`KGPair` (graphs, alignments, seed ratio) to JSON."""
    path = Path(path)
    payload = {
        "name": pair.name,
        "seed_ratio": pair.seed_ratio,
        "source": _graph_to_dict(pair.source),
        "target": _graph_to_dict(pair.target),
        "alignments": [[int(p.source), int(p.target)] for p in pair.alignments],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    return path


def load_pair_json(path: str | Path) -> KGPair:
    """Load a :class:`KGPair` previously saved with :func:`save_pair_json`."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    return KGPair(
        source=_graph_from_dict(payload["source"]),
        target=_graph_from_dict(payload["target"]),
        alignments=[AlignmentPair(int(s), int(t)) for s, t in payload["alignments"]],
        seed_ratio=float(payload["seed_ratio"]),
        name=payload.get("name", "kg-pair"),
    )


def save_pair_dbp_format(pair: KGPair, directory: str | Path) -> Path:
    """Write the pair in a DBP15K-style tab-separated directory layout."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for suffix, graph in (("1", pair.source), ("2", pair.target)):
        with open(directory / f"triples_{suffix}", "w", encoding="utf-8") as handle:
            for triple in graph.relation_triples:
                handle.write(f"{triple.head}\t{triple.relation}\t{triple.tail}\n")
        with open(directory / f"attr_triples_{suffix}", "w", encoding="utf-8") as handle:
            for triple in graph.attribute_triples:
                handle.write(f"{triple.entity}\t{triple.attribute}\t{triple.value}\n")
        with open(directory / f"ent_ids_{suffix}", "w", encoding="utf-8") as handle:
            for index, name in enumerate(graph.entity_names):
                handle.write(f"{index}\t{name}\n")
        np.savez(directory / f"images_{suffix}.npz",
                 **{str(e): feat for e, feat in graph.image_features.items()})
    with open(directory / "ent_links", "w", encoding="utf-8") as handle:
        for alignment in pair.alignments:
            handle.write(f"{alignment.source}\t{alignment.target}\n")
    with open(directory / "meta.json", "w", encoding="utf-8") as handle:
        json.dump({"name": pair.name, "seed_ratio": pair.seed_ratio,
                   "num_relations_1": pair.source.num_relations,
                   "num_relations_2": pair.target.num_relations,
                   "num_attributes_1": pair.source.num_attributes,
                   "num_attributes_2": pair.target.num_attributes}, handle)
    return directory


def _load_graph_dbp(directory: Path, suffix: str, name: str,
                    num_relations: int | None, num_attributes: int | None) -> MultiModalKG:
    with open(directory / f"ent_ids_{suffix}", encoding="utf-8") as handle:
        entity_names = [line.rstrip("\n").split("\t", 1)[1] for line in handle if line.strip()]
    relation_triples = []
    with open(directory / f"triples_{suffix}", encoding="utf-8") as handle:
        for line in handle:
            if not line.strip():
                continue
            head, relation, tail = line.strip().split("\t")
            relation_triples.append(RelationTriple(int(head), int(relation), int(tail)))
    attribute_triples = []
    attr_path = directory / f"attr_triples_{suffix}"
    if attr_path.exists():
        with open(attr_path, encoding="utf-8") as handle:
            for line in handle:
                if not line.strip():
                    continue
                entity, attribute, value = line.rstrip("\n").split("\t", 2)
                attribute_triples.append(AttributeTriple(int(entity), int(attribute), value))
    images: dict[int, np.ndarray] = {}
    image_path = directory / f"images_{suffix}.npz"
    if image_path.exists():
        with np.load(image_path) as archive:
            images = {int(key): np.asarray(archive[key], dtype=np.float64)
                      for key in archive.files}
    if num_relations is None:
        num_relations = 1 + max((t.relation for t in relation_triples), default=-1)
    if num_attributes is None:
        num_attributes = 1 + max((t.attribute for t in attribute_triples), default=-1)
    return MultiModalKG(
        entity_names=entity_names,
        num_relations=num_relations,
        num_attributes=num_attributes,
        relation_triples=relation_triples,
        attribute_triples=attribute_triples,
        image_features=images,
        name=name,
    )


def load_pair_dbp_format(directory: str | Path) -> KGPair:
    """Load a DBP15K-style directory written by :func:`save_pair_dbp_format`."""
    directory = Path(directory)
    meta: dict = {}
    meta_path = directory / "meta.json"
    if meta_path.exists():
        with open(meta_path, encoding="utf-8") as handle:
            meta = json.load(handle)
    source = _load_graph_dbp(directory, "1", meta.get("name", "KG1") + "/1",
                             meta.get("num_relations_1"), meta.get("num_attributes_1"))
    target = _load_graph_dbp(directory, "2", meta.get("name", "KG2") + "/2",
                             meta.get("num_relations_2"), meta.get("num_attributes_2"))
    alignments = []
    with open(directory / "ent_links", encoding="utf-8") as handle:
        for line in handle:
            if not line.strip():
                continue
            left, right = line.strip().split("\t")
            alignments.append(AlignmentPair(int(left), int(right)))
    return KGPair(
        source=source,
        target=target,
        alignments=alignments,
        seed_ratio=float(meta.get("seed_ratio", 0.3)),
        name=meta.get("name", directory.name),
    )
