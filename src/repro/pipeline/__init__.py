"""Declarative pipeline API: specs, registries, facade and artifacts.

The one-stop entry point for composing everything the scaling PRs built —
graph backends, blockwise decoding, neighbour-sampled training, candidate
generation — without threading a dozen keyword arguments by hand:

.. code-block:: python

    from repro.pipeline import AlignmentPipeline, PipelineSpec

    spec = PipelineSpec.from_json_file("spec.json")
    aligner = AlignmentPipeline.from_spec(spec).fit()
    print(aligner.metrics)
    aligner.save("artifacts/run")

Components plug in by name through the registries re-exported here
(``@register_model``, ``@register_training_loop``,
``@register_candidate_generator``).
"""

# Importing the model zoo populates the model registry the spec validator
# and the facade resolve names against (the loops and candidate generators
# register transitively through repro.core).
from .. import baselines as _baselines  # noqa: F401
from ..core.registries import (
    register_candidate_generator,
    register_model,
    register_training_loop,
)
from .facade import (
    Aligner,
    AlignmentPipeline,
    DECODE_FILENAME,
    PARAMS_FILENAME,
    SPEC_FILENAME,
    TopKAlignment,
)
from .spec import (CUSTOM_DATASET, DataSpec, DecodeSpec, DeltaSpec,
                   ModelSpec, PerturbationSpec, PipelineSpec)

__all__ = [
    "AlignmentPipeline",
    "Aligner",
    "TopKAlignment",
    "PipelineSpec",
    "DataSpec",
    "ModelSpec",
    "DecodeSpec",
    "PerturbationSpec",
    "DeltaSpec",
    "CUSTOM_DATASET",
    "SPEC_FILENAME",
    "PARAMS_FILENAME",
    "DECODE_FILENAME",
    "register_model",
    "register_training_loop",
    "register_candidate_generator",
]
