"""The :class:`AlignmentPipeline` facade and its fitted :class:`Aligner` handle.

This is the stable, declarative entry point over the engines the previous
PRs built (sparse backends, blockwise decoding, neighbour-sampled training,
IVF/LSH candidate generation):

.. code-block:: python

    spec = PipelineSpec.from_json_file("spec.json")
    aligner = AlignmentPipeline.from_spec(spec).fit()
    aligner.evaluate()            # H@1 / H@10 / MRR on the test split
    aligner.align(k=5)            # top-5 target candidates per source entity
    aligner.rank([3, 17])         # ranked candidates for chosen entities
    aligner.save("artifacts/run") # spec JSON + parameter/decode payloads
    Aligner.load("artifacts/run") # bit-identical decode, no retraining

Internally ``fit`` drives ``prepare_task``, the registered model builders,
the pluggable :class:`~repro.core.trainer.TrainingLoop` strategies, the
:class:`~repro.eval.Evaluator` and the streaming decode stack — all inside
:func:`~repro.core.compat.spec_driven`, so the legacy deprecation shims
stay silent on the facade's own plumbing.

The :class:`Aligner` caches the evaluation embeddings (per-propagation-round
state lists) and the fitted candidate structure (e.g. the IVF inverted
index's probe result) across repeated ``align`` / ``rank`` queries, so
serving several ``k`` values or entity subsets pays the encoder and
quantiser cost once.  ``save``/``load`` persist exactly those cached
arrays, which is what makes a reloaded aligner's decode bit-identical to
the in-memory one.
"""

from __future__ import annotations

import hashlib
import json
import shutil
import zipfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..core.ann import (RowCandidates, _normalize_rows, generate_candidates,
                        resolve_ann)
from ..core.compat import spec_driven
from ..core.registries import build_model_from_spec
from ..core.similarity import (DEFAULT_BLOCK_SIZE, TopKSimilarity,
                               _blockwise_topk_candidates, blockwise_topk)
from ..core.store import EmbeddingStore
from ..core.task import PreparedTask, prepare_task
from ..core.trainer import Trainer, TrainingResult
from ..data.benchmarks import load_benchmark
from ..eval.evaluator import Evaluator
from ..eval.metrics import AlignmentMetrics, evaluate_alignment
from ..kg.pair import KGPair
from ..robustness.operators import perturb_pair, perturb_task
from .spec import CUSTOM_DATASET, PipelineSpec

__all__ = ["AlignmentPipeline", "Aligner", "TopKAlignment",
           "SPEC_FILENAME", "PARAMS_FILENAME", "DECODE_FILENAME",
           "STORE_DIRNAME"]

#: Artifact directory layout written by :meth:`Aligner.save`.
SPEC_FILENAME = "spec.json"
PARAMS_FILENAME = "params.npz"
DECODE_FILENAME = "decode.npz"       # v1 artifacts (member zip)
STORE_DIRNAME = "store"              # v2 artifacts (shard-aligned .npy store)

#: Current artifact format: decode payloads live in an
#: :class:`~repro.core.store.EmbeddingStore` directory of mappable ``.npy``
#: files.  v1 (everything zipped into ``decode.npz``) is still read
#: byte-compatibly by :meth:`Aligner.load` and written on request by
#: :meth:`Aligner.save`.
_ARTIFACT_VERSION = 2
_LEGACY_ARTIFACT_VERSION = 1


@dataclass
class TopKAlignment:
    """Decoded top-``k`` alignment candidates for a set of source entities.

    ``target_ids[i, j]`` is the ``j``-th best target candidate of source
    entity ``source_ids[i]``, with ``scores`` descending along ``j``.
    ``approximate`` marks decodes restricted to ANN candidate sets.
    """

    source_ids: np.ndarray        # (n,)
    target_ids: np.ndarray        # (n, k)
    scores: np.ndarray            # (n, k)
    approximate: bool = False

    @property
    def k(self) -> int:
        return self.target_ids.shape[1]

    def pairs(self) -> list[tuple[int, int, float]]:
        """Best (top-1) target per source entity as ``(source, target, score)``."""
        return [(int(source), int(targets[0]), float(scores[0]))
                for source, targets, scores
                in zip(self.source_ids, self.target_ids, self.scores)]

    def to_records(self) -> list[dict]:
        """JSON-native per-entity records (the CLI's ``--format json``)."""
        return [
            {"source": int(source),
             "targets": [int(t) for t in targets],
             "scores": [float(s) for s in scores]}
            for source, targets, scores
            in zip(self.source_ids, self.target_ids, self.scores)
        ]

    def to_tsv(self) -> str:
        """``source<TAB>rank<TAB>target<TAB>score`` lines (``--format tsv``)."""
        lines = ["source\trank\ttarget\tscore"]
        for source, targets, scores in zip(self.source_ids, self.target_ids,
                                           self.scores):
            for rank, (target, score) in enumerate(zip(targets, scores), start=1):
                lines.append(f"{int(source)}\t{rank}\t{int(target)}\t{score:.10g}")
        return "\n".join(lines) + "\n"


class AlignmentPipeline:
    """Declarative facade: spec in, fitted :class:`Aligner` out."""

    def __init__(self, spec: PipelineSpec):
        self.spec = spec.validate()

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_spec(cls, spec: PipelineSpec) -> "AlignmentPipeline":
        return cls(spec)

    @classmethod
    def from_dict(cls, payload: dict) -> "AlignmentPipeline":
        return cls(PipelineSpec.from_dict(payload))

    @classmethod
    def from_json_file(cls, path) -> "AlignmentPipeline":
        return cls(PipelineSpec.from_json_file(path))

    # ------------------------------------------------------------------
    # Stage builders (usable standalone; fit() composes them)
    # ------------------------------------------------------------------
    def build_task(self, pair: KGPair | PreparedTask | None = None) -> PreparedTask:
        """Materialise and prepare the task the spec's ``data`` section names.

        An explicit ``pair`` overrides the benchmark preset: a ``KGPair``
        is prepared under the spec's backend/seed, a ``PreparedTask`` is
        used as-is (the model follows its backend unless the spec pins
        one).

        The spec's ``perturbation`` section is applied here, exactly once
        — graph-level corruptions before preparation, task-level ones
        after — so every model fitted on this task sees the identical
        corrupted world.  An all-zero section skips the operators
        entirely (bit-exact no-op).  A pre-built ``PreparedTask`` is
        assumed already perturbed by whoever prepared it.
        """
        data = self.spec.data
        perturbation = self.spec.perturbation
        if isinstance(pair, PreparedTask):
            return pair
        if pair is None:
            if data.dataset == CUSTOM_DATASET:
                raise ValueError(
                    "the spec declares dataset='custom'; pass the KGPair to "
                    "fit(pair=...) / build_task(pair=...)")
            pair = load_benchmark(
                data.dataset,
                seed_ratio=data.seed_ratio,
                image_ratio=data.image_ratio,
                text_ratio=data.text_ratio,
                num_entities=data.num_entities,
                seed=data.dataset_seed,
            )
        if not perturbation.is_noop():
            pair = perturb_pair(pair, perturbation)
        task = prepare_task(pair, structure_dim=self.spec.model.hidden_dim,
                            seed=data.seed, backend=data.backend)
        if not perturbation.is_noop():
            task = perturb_task(task, perturbation)
        return task

    def build_model(self, task: PreparedTask):
        """Instantiate the registered aligner the ``model`` section names."""
        return build_model_from_spec(self.spec.model, task,
                                     default_seed=self.spec.data.seed)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def fit(self, pair: KGPair | PreparedTask | None = None) -> "Aligner":
        """Prepare, train and evaluate; returns the fitted :class:`Aligner`."""
        task = self.build_task(pair)
        model = self.build_model(task)
        with spec_driven():
            result = Trainer(model, task, self.spec.training).fit()
        return Aligner(self.spec, task=task, model=model, result=result)


class Aligner:
    """A fitted alignment artefact: query handle plus persistence.

    Not constructed directly — obtained from
    :meth:`AlignmentPipeline.fit` or :meth:`Aligner.load`.  The decode
    inputs (per-round evaluation states) and the generated candidate
    structure are computed once and reused across ``align`` / ``rank``
    calls with different ``k``; they are also exactly what ``save``
    persists, so a loaded aligner decodes bit-identically.
    """

    def __init__(self, spec: PipelineSpec, *, task: PreparedTask | None = None,
                 model=None, result: TrainingResult | None = None,
                 states: tuple[list[np.ndarray], list[np.ndarray]] | None = None,
                 row_candidates: RowCandidates | None = None,
                 candidates_ready: bool = False,
                 train_pairs: np.ndarray | None = None,
                 test_pairs: np.ndarray | None = None,
                 params_path: Path | None = None):
        self.spec = spec
        self.task = task
        self.model = model
        self.result = result
        #: Saved parameters to restore into a lazily rebuilt model (load()).
        self._params_path = params_path
        self._states = states
        self._row_candidates = row_candidates
        self._candidates_ready = candidates_ready
        self._topk_cache: dict[int, TopKSimilarity] = {}
        self._train_pairs = (train_pairs if train_pairs is not None
                             else (task.train_pairs if task is not None else None))
        self._test_pairs = (test_pairs if test_pairs is not None
                            else (task.test_pairs if task is not None else None))
        # Serving caches: normalised decode tables, padded candidate
        # structures per k, and per-(k, entity) candidate row slices.
        self._norm_states: tuple[list[np.ndarray], list[np.ndarray]] | None = None
        self._padded_cache: dict[int, RowCandidates] = {}
        self._row_slice_cache: dict[tuple[int, int], np.ndarray] = {}
        #: Candidate-slice cache counters (observable via serving stats).
        self.candidate_slice_hits = 0
        self.candidate_slice_misses = 0

    # ------------------------------------------------------------------
    # Cached decode inputs
    # ------------------------------------------------------------------
    @property
    def metrics(self) -> AlignmentMetrics | None:
        """Test metrics recorded at fit time (``None`` on a bare load)."""
        return self.result.metrics if self.result is not None else None

    def _ensure_model(self) -> bool:
        """Rebuild the task/model from a loaded artifact on first need.

        ``load()`` defers this so pure serving queries (``align``/``rank``
        over the cached decode) never pay benchmark regeneration, task
        preparation or model construction.  Returns whether a model is
        available afterwards.
        """
        if self.model is not None:
            return True
        if self._params_path is None or self.spec.data.dataset == CUSTOM_DATASET:
            return False
        pipeline = AlignmentPipeline(self.spec)
        task = pipeline.build_task()
        model = pipeline.build_model(task)
        with np.load(self._params_path) as params:
            model.load_state_dict({key: params[key] for key in params.files})
        self.task = task
        self.model = model
        return True

    def decode_states(self) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """The (cached) per-round evaluation states feeding every decode."""
        if self._states is None:
            if self.model is None:
                raise RuntimeError(
                    "this aligner holds no model and no cached decode states; "
                    "load() an artifact saved by save() or fit() a pipeline")
            decode = self.spec.decode
            with spec_driven():
                self._states = self.model.decode_states(
                    use_propagation=decode.use_propagation,
                    encode=decode.encode,
                    encode_batch_size=decode.encode_batch_size)
        return self._states

    def row_candidates(self) -> RowCandidates | None:
        """The (cached) candidate sets of the spec's generator, fitted once.

        ``None`` for exhaustive decoding or when the generator proves
        complete coverage.  Building this is where the IVF quantiser /
        LSH tables are fitted; every subsequent ``align``/``rank``/``save``
        reuses the result.
        """
        if not self._candidates_ready:
            decode = self.spec.decode
            if decode.candidates != "exhaustive":
                source_states, target_states = self.decode_states()
                self._row_candidates = generate_candidates(
                    decode.candidates, source_states, target_states,
                    resolve_ann(decode.ann, self.spec.training.seed))
            self._candidates_ready = True
        return self._row_candidates

    def topk(self, k: int | None = None) -> TopKSimilarity:
        """The streaming decode at ``k`` (cached per ``k``)."""
        k = int(k) if k is not None else self.spec.decode.k
        if k <= 0:
            raise ValueError("k must be positive")
        cached = self._topk_cache.get(k)
        if cached is None:
            source_states, target_states = self.decode_states()
            cached = blockwise_topk(source_states, target_states, k=k,
                                    row_candidates=self.row_candidates(),
                                    num_workers=self.spec.decode.num_workers)
            self._topk_cache[k] = cached
        return cached

    def _normalized_states(self) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Row-normalised decode tables, computed once per artifact.

        Exactly the arrays the streaming engine derives internally
        (``_normalize_rows`` at float64), cached so row-subset serving
        decodes skip the full-table normalisation pass — and stay
        bit-identical to the full decode, because the very same
        normalised values enter the products (``pre_normalized=True``).
        """
        if self._norm_states is None:
            source_states, target_states = self.decode_states()
            dtype = np.dtype(np.float64)
            self._norm_states = (
                [_normalize_rows(state).astype(dtype, copy=False)
                 for state in source_states],
                [_normalize_rows(state).astype(dtype, copy=False)
                 for state in target_states])
        return self._norm_states

    def _candidate_rows(self, entity_ids: np.ndarray,
                        k_keep: int) -> RowCandidates:
        """Padded candidate rows for a subset, served from the slice cache.

        The full structure is padded once per ``k_keep`` and each entity's
        padded row slice is memoised, so consecutive ``rank`` calls on
        overlapping ids re-use the gathered slices instead of re-slicing
        (and re-padding) :class:`RowCandidates` every time.  ``padded`` is
        row-local, so pad-then-select equals select-then-pad and the
        subset decode sees exactly the rows the full decode would.
        """
        padded = self._padded_cache.get(k_keep)
        if padded is None:
            padded = self.row_candidates().padded(k_keep)
            self._padded_cache[k_keep] = padded
        rows = []
        for entity in entity_ids:
            key = (k_keep, int(entity))
            row = self._row_slice_cache.get(key)
            if row is None:
                self.candidate_slice_misses += 1
                row = padded.row(int(entity))
                self._row_slice_cache[key] = row
            else:
                self.candidate_slice_hits += 1
            rows.append(row)
        counts = np.asarray([len(row) for row in rows], dtype=np.int64)
        indptr = np.zeros(len(rows) + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        indices = (np.concatenate(rows) if rows
                   else np.empty(0, dtype=np.int64))
        return RowCandidates(indptr=indptr, indices=indices,
                             num_columns=padded.num_columns)

    def decode_fingerprint(self) -> str:
        """Stable identity of this artifact's decode configuration.

        A hash over the full validated spec: any change to the data,
        model, training or decode parameters changes the fingerprint.
        Serving result caches key on it (together with the engine's
        artifact generation) so cached rows can never outlive the decode
        parameters that produced them.
        """
        payload = json.dumps(self.spec.to_dict(), sort_keys=True)
        return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:16]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def align(self, k: int | None = None) -> TopKAlignment:
        """Top-``k`` target candidates for every source entity."""
        k = int(k) if k is not None else self.spec.decode.k
        topk = self.topk(k)
        # The engine may keep extra columns for CSLS statistics; the
        # alignment surfaces exactly the k the caller asked for.
        width = min(k, topk.indices.shape[1])
        return TopKAlignment(
            source_ids=np.arange(topk.shape[0], dtype=np.int64),
            target_ids=topk.indices[:, :width].copy(),
            scores=topk.scores[:, :width].copy(),
            approximate=topk.approximate,
        )

    def rank(self, entity_ids, k: int | None = None) -> TopKAlignment:
        """Ranked target candidates for selected source entities.

        Delegates to :meth:`rank_rows`, which serves from the cached full
        table when one exists and decodes only the requested rows
        otherwise — always with results bit-identical to slicing
        :meth:`align`.
        """
        return self.rank_rows(entity_ids, k)

    def rank_rows(self, entity_ids, k: int | None = None) -> TopKAlignment:
        """Ranked candidates for selected rows — the serving fast path.

        Candidate-restricted artifacts decode only the requested rows: a
        gathered ``einsum`` over each row's (cached, padded) candidate
        slice, so cost scales with the batch, not the corpus.  The
        per-cell products are row-local and independent of which other
        rows share the batch, which is what makes micro-batched,
        single-row and full-table decodes bit-identical — the GEMM kernel
        used by exhaustive decodes does *not* have that property (its
        last-ulp rounding depends on the batch shape), so exhaustive
        artifacts are served by slicing the cached full top-``k`` table
        instead: one corpus-sized decode on the first query per ``k``,
        O(1) row slices afterwards.
        """
        k = int(k) if k is not None else self.spec.decode.k
        if k <= 0:
            raise ValueError("k must be positive")
        entity_ids = np.asarray(entity_ids, dtype=np.int64).reshape(-1)
        candidates = self.row_candidates()
        restricted = candidates is not None and not candidates.is_complete()
        if not restricted or k in self._topk_cache:
            topk = self.topk(k)
            if len(entity_ids) and (entity_ids.min() < 0
                                    or entity_ids.max() >= topk.shape[0]):
                raise ValueError(
                    f"entity ids must lie in [0, {topk.shape[0]}), got "
                    f"{entity_ids.min()}..{entity_ids.max()}")
            width = min(k, topk.indices.shape[1])
            return TopKAlignment(
                source_ids=entity_ids,
                target_ids=topk.indices[entity_ids, :width].copy(),
                scores=topk.scores[entity_ids, :width].copy(),
                approximate=topk.approximate,
            )
        source_norm, target_norm = self._normalized_states()
        num_source = source_norm[0].shape[0]
        num_target = target_norm[0].shape[0]
        if len(entity_ids) and (entity_ids.min() < 0
                                or entity_ids.max() >= num_source):
            raise ValueError(
                f"entity ids must lie in [0, {num_source}), got "
                f"{entity_ids.min()}..{entity_ids.max()}")
        width = min(k, num_target)
        if not len(entity_ids):
            return TopKAlignment(
                source_ids=entity_ids,
                target_ids=np.empty((0, width), dtype=np.int64),
                scores=np.empty((0, width), dtype=np.float64),
                approximate=True)
        subset = self._candidate_rows(entity_ids, width)
        topk = _blockwise_topk_candidates(
            [state[entity_ids] for state in source_norm], target_norm,
            subset, k=k, block_size=DEFAULT_BLOCK_SIZE,
            dtype=np.float64, csls_k=10, pre_normalized=True)
        return TopKAlignment(
            source_ids=entity_ids,
            target_ids=topk.indices[:, :width].copy(),
            scores=topk.scores[:, :width].copy(),
            approximate=True)

    def with_decode(self, decode) -> "Aligner":
        """A sibling handle over the same fitted model with another decode spec.

        Shares the task, model and training result.  Decode caches carry
        over exactly as far as they stay valid: the cached states survive
        when the new :class:`~repro.pipeline.DecodeSpec` computes them the
        same way (``use_propagation`` / ``encode`` unchanged), and the
        fitted candidate structure additionally requires an unchanged
        ``candidates`` / ``ann`` — so changing only ``k`` or ``ranking``
        on a loaded model-less artifact keeps working.  Useful for
        ablations (e.g. re-evaluating without Semantic Propagation)
        without re-fitting.
        """
        from dataclasses import replace

        spec = replace(self.spec, decode=decode).validate()
        old, new = self.spec.decode, spec.decode
        same_states = (self._states is not None
                       and new.use_propagation == old.use_propagation
                       and new.encode == old.encode
                       and new.encode_batch_size == old.encode_batch_size)
        same_candidates = (same_states and self._candidates_ready
                           and new.candidates == old.candidates
                           and new.ann == old.ann)
        return Aligner(spec, task=self.task, model=self.model,
                       result=self.result,
                       states=self._states if same_states else None,
                       row_candidates=(self._row_candidates
                                       if same_candidates else None),
                       candidates_ready=same_candidates,
                       train_pairs=self._train_pairs,
                       test_pairs=self._test_pairs,
                       params_path=self._params_path)

    def evaluate(self) -> AlignmentMetrics:
        """H@1 / H@10 / MRR on the held-out test pairs, per the decode spec."""
        decode = self.spec.decode
        if self._ensure_model() and self.task is not None:
            evaluator = Evaluator(
                self.task, decode=decode.decode, encode=decode.encode,
                encode_batch_size=decode.encode_batch_size,
                ranking=decode.ranking, candidates=decode.candidates,
                ann=(resolve_ann(decode.ann, self.spec.training.seed)
                     if decode.candidates != "exhaustive" else None))
            with spec_driven():
                return evaluator.evaluate_model(
                    self.model, use_propagation=decode.use_propagation)
        if self._test_pairs is None:
            raise RuntimeError("this aligner carries no test pairs to evaluate on")
        return evaluate_alignment(self.topk(), self._test_pairs,
                                  ranking=decode.ranking)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, directory, *, format_version: int = _ARTIFACT_VERSION) -> Path:
        """Persist spec + parameters + decode payloads under ``directory``.

        Writes ``spec.json`` (the validated spec plus artifact metadata),
        ``params.npz`` (the model's state dict, when a model is attached)
        and the decode payloads — the cached per-round states, the
        candidate CSR (plus its IVF bucket map when grouped) and the
        train/test splits.  :meth:`load` rebuilds an aligner whose
        ``align``/``rank`` reproduce this one's decode bit-identically,
        because they consume these exact arrays.

        ``format_version=2`` (the default) lays the payloads out as an
        :class:`~repro.core.store.EmbeddingStore` — shard-aligned ``.npy``
        files that ``load(mmap=True)`` maps natively, the out-of-core
        serving layout.  ``format_version=1`` writes the legacy
        ``decode.npz`` member zip for consumers pinned to the old layout.
        """
        if format_version not in (_LEGACY_ARTIFACT_VERSION, _ARTIFACT_VERSION):
            raise ValueError(f"unsupported artifact format_version "
                             f"{format_version!r}")
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)

        source_states, target_states = self.decode_states()
        candidates = self.row_candidates()

        if format_version == _LEGACY_ARTIFACT_VERSION:
            arrays: dict[str, np.ndarray] = {}
            for index, state in enumerate(source_states):
                arrays[f"source_state_{index}"] = np.asarray(state)
            for index, state in enumerate(target_states):
                arrays[f"target_state_{index}"] = np.asarray(state)
            if self._train_pairs is not None:
                arrays["train_pairs"] = np.asarray(self._train_pairs)
            if self._test_pairs is not None:
                arrays["test_pairs"] = np.asarray(self._test_pairs)
            if candidates is not None:
                arrays["candidates_indptr"] = candidates.indptr
                arrays["candidates_indices"] = candidates.indices
            np.savez_compressed(directory / DECODE_FILENAME, **arrays)
        else:
            EmbeddingStore.create(
                directory / STORE_DIRNAME,
                source_states=source_states, target_states=target_states,
                row_candidates=candidates,
                train_pairs=self._train_pairs, test_pairs=self._test_pairs,
                block_size=DEFAULT_BLOCK_SIZE)

        target_params = directory / PARAMS_FILENAME
        if self.model is not None:
            np.savez_compressed(target_params, **self.model.state_dict())
        elif (self._params_path is not None
              and self._params_path.resolve() != target_params.resolve()):
            # A lazily-loaded aligner that never needed its model still
            # carries the parameter payload forward on re-save.
            shutil.copyfile(self._params_path, target_params)

        payload = {
            "format_version": format_version,
            "spec": self.spec.to_dict(),
            "num_rounds": len(source_states),
            "num_targets": int(np.asarray(target_states[0]).shape[0]),
            "has_candidates": candidates is not None,
            "has_model": (self.model is not None
                          or self._params_path is not None),
        }
        (directory / SPEC_FILENAME).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return directory

    @classmethod
    def load(cls, directory, *, mmap: bool = False) -> "Aligner":
        """Reconstruct a saved aligner; its decode is bit-identical to save time.

        ``align``/``rank`` serve straight from the persisted decode
        payloads.  When the spec's dataset is a regenerable benchmark
        preset, the task and model are rebuilt *lazily* — on the first
        operation that needs them (``evaluate``) — with the saved
        parameters restored, so pure serving queries pay no benchmark
        regeneration; for custom data only the cached decode artefacts
        are available (``align``/``rank``/``evaluate`` still work from
        them).

        ``mmap=True`` memory-maps the decode payloads read-only instead of
        loading them into process memory, so serving worker pools (and
        co-hosted processes) share a single page-cache copy of the
        embedding tables and row gathers touch only the pages they read.
        v2 artifacts map their :class:`~repro.core.store.EmbeddingStore`
        files natively; v1 artifacts unpack the ``decode.npz`` members
        once into a ``.mmap_cache/`` directory beside the artifact and map
        those.
        """
        directory = Path(directory)
        spec_path = directory / SPEC_FILENAME
        if not spec_path.exists():
            raise FileNotFoundError(f"no {SPEC_FILENAME} under {directory}")
        payload = json.loads(spec_path.read_text())
        version = payload.get("format_version")
        if version not in (_LEGACY_ARTIFACT_VERSION, _ARTIFACT_VERSION):
            raise ValueError(f"unsupported artifact format_version {version!r} "
                             f"(this build reads "
                             f"{_LEGACY_ARTIFACT_VERSION}..{_ARTIFACT_VERSION})")
        spec = PipelineSpec.from_dict(payload["spec"])
        rounds = int(payload["num_rounds"])

        if version == _ARTIFACT_VERSION:
            store = EmbeddingStore.open(directory / STORE_DIRNAME, mmap=mmap)
            states = store.states()
            train_pairs = store.train_pairs
            test_pairs = store.test_pairs
            row_candidates = store.row_candidates()
        else:
            # v1 migration path: the same arrays, zipped into decode.npz.
            # Bytes on disk are read as written by the v1 writer — the
            # regression test pins decode equality against a v2 load.
            if mmap:
                arrays = _mmap_npz(directory / DECODE_FILENAME,
                                   directory / ".mmap_cache")
            else:
                with np.load(directory / DECODE_FILENAME) as loaded:
                    arrays = {name: loaded[name] for name in loaded.files}
            states = ([arrays[f"source_state_{i}"] for i in range(rounds)],
                      [arrays[f"target_state_{i}"] for i in range(rounds)])
            train_pairs = arrays.get("train_pairs")
            test_pairs = arrays.get("test_pairs")
            row_candidates = None
            if payload.get("has_candidates"):
                row_candidates = RowCandidates(
                    indptr=arrays["candidates_indptr"],
                    indices=arrays["candidates_indices"],
                    num_columns=int(payload["num_targets"]))

        params_path: Path | None = None
        if payload.get("has_model"):
            params_path = directory / PARAMS_FILENAME
            if not params_path.exists():
                # Restoring without parameters would silently evaluate a
                # randomly initialised model; a truncated artifact must
                # fail loudly instead.
                raise FileNotFoundError(
                    f"artifact {directory} declares a model but "
                    f"{PARAMS_FILENAME} is missing — the artifact is "
                    "incomplete")

        return cls(spec, states=states, row_candidates=row_candidates,
                   candidates_ready=True, train_pairs=train_pairs,
                   test_pairs=test_pairs, params_path=params_path)


def _mmap_npz(npz_path: Path, cache_dir: Path) -> dict[str, np.ndarray]:
    """Extract ``.npz`` members once and memory-map them read-only.

    ``np.load(..., mmap_mode=...)`` cannot map members inside a zip
    archive, so they are unpacked (once, keyed on the archive's
    size + mtime) into ``cache_dir`` and each ``.npy`` is mapped
    read-only.  Re-saving the artifact invalidates the stamp and the
    members are re-extracted on the next mapped load.
    """
    stat = npz_path.stat()
    token = f"{stat.st_size}:{stat.st_mtime_ns}"
    stamp = cache_dir / "source.stamp"
    if not (stamp.exists() and stamp.read_text() == token):
        if cache_dir.exists():
            shutil.rmtree(cache_dir)
        cache_dir.mkdir(parents=True)
        with zipfile.ZipFile(npz_path) as archive:
            archive.extractall(cache_dir)
        stamp.write_text(token)
    return {member.stem: np.load(member, mmap_mode="r")
            for member in sorted(cache_dir.glob("*.npy"))}
