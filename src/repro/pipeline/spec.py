"""Declarative, JSON-round-trippable specification of an alignment pipeline.

A :class:`PipelineSpec` composes the four concerns a full alignment run
spans into one frozen, validated object:

* ``data`` — which benchmark split (or custom pair) to align, at what
  scale, under which graph backend (:class:`DataSpec`);
* ``model`` — which registered aligner, at what width, with which
  model-specific options (:class:`ModelSpec`);
* ``training`` — the optimisation recipe, reusing the existing
  :class:`~repro.core.config.TrainingConfig` verbatim;
* ``decode`` — how test-time similarities are produced and ranked
  (:class:`DecodeSpec`);
* ``perturbation`` — which seeded corruptions to inject into the task
  between data preparation and fit (:class:`PerturbationSpec`; the
  all-zero default is a bit-exact no-op).

Specs serialise losslessly: ``PipelineSpec.from_dict(spec.to_dict()) ==
spec``, and ``from_json_file`` / ``to_json_file`` move them through plain
JSON (tuples become lists on the way out and are restored on the way in).
Unknown keys and illegal combinations are rejected with actionable
messages; every cross-field legality rule — candidates × ranking,
candidates × decode, iterative × LSH, patience × cadence, backend
coherence, sampling capability — is enforced in exactly one place,
:meth:`PipelineSpec.validate`, through the shared rule functions of
:mod:`repro.core.rules`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from pathlib import Path

from ..core import rules
from ..core.ann import AnnConfig
from ..core.config import TrainingConfig
from ..core.registries import model_names, model_supports_sampling
from ..data.benchmarks import ALL_DATASETS

__all__ = ["DataSpec", "ModelSpec", "DecodeSpec", "PerturbationSpec",
           "DeltaSpec", "PipelineSpec", "CUSTOM_DATASET"]

#: ``DataSpec.dataset`` value declaring that the pair is supplied by the
#: caller (``AlignmentPipeline.fit(pair)``) instead of a benchmark preset.
CUSTOM_DATASET = "custom"


def _jsonable(value):
    """Tuples become lists and nested dataclasses (e.g. ``AnnConfig``)
    become dicts, so a section dict is directly ``json.dump``-able."""
    import dataclasses

    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: _jsonable(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {key: _jsonable(item) for key, item in value.items()}
    return value


def _section_to_dict(section) -> dict:
    return {f.name: _jsonable(getattr(section, f.name)) for f in fields(section)}


def _check_keys(cls, payload, section: str) -> dict:
    """Reject non-dict payloads and unknown keys with an actionable message."""
    if not isinstance(payload, dict):
        raise ValueError(f"the {section!r} section must be a JSON object, "
                         f"got {type(payload).__name__}")
    valid = {f.name for f in fields(cls)}
    unknown = sorted(set(payload) - valid)
    if unknown:
        raise ValueError(f"unknown key(s) {unknown} in the {section!r} section; "
                         f"valid keys: {sorted(valid)}")
    return dict(payload)


def _tuple_or_none(value):
    if value is None:
        return None
    return tuple(value)


def _ann_from_payload(value, section: str) -> AnnConfig | None:
    if value is None or isinstance(value, AnnConfig):
        return value
    data = _check_keys(AnnConfig, value, f"{section}.ann")
    return AnnConfig(**data)


@dataclass(frozen=True)
class DataSpec:
    """Which alignment task to materialise, at what scale.

    ``dataset`` names a benchmark preset (see
    :data:`repro.data.benchmarks.ALL_DATASETS`) or :data:`CUSTOM_DATASET`
    for a caller-supplied :class:`~repro.kg.KGPair`.  ``seed`` drives task
    preparation (feature hashing, imputation, train/test split);
    ``dataset_seed`` optionally overrides the preset's base seed for the
    synthetic generator itself (``None`` keeps the preset default, which is
    what the experiment harness uses).
    """

    dataset: str = "FBDB15K"
    num_entities: int = 120
    seed_ratio: float | None = None
    image_ratio: float | None = None
    text_ratio: float | None = None
    backend: str = "dense"
    seed: int = 0
    dataset_seed: int | None = None

    def __post_init__(self) -> None:
        rules.check_backend(self.backend)
        if self.num_entities <= 0:
            raise ValueError("num_entities must be positive")
        for name in ("seed_ratio", "image_ratio", "text_ratio"):
            value = getattr(self, name)
            if value is not None and not 0.0 < value <= 1.0:
                raise ValueError(f"{name} must lie in (0, 1], got {value!r}")

    @classmethod
    def from_dict(cls, payload: dict) -> "DataSpec":
        return cls(**_check_keys(cls, payload, "data"))


@dataclass(frozen=True)
class ModelSpec:
    """Which registered aligner to build, and how wide.

    ``name`` is looked up in the model registry
    (:func:`repro.core.registries.register_model`); ``options`` carries
    model-specific constructor options as a JSON-native mapping (e.g.
    ``{"propagation_iters": 3}`` for DESAlign, ``{"gnn": "gat"}`` for a
    modal baseline — list values are converted to tuples at build time).
    ``seed=None`` inherits the pipeline's data seed.
    """

    name: str = "DESAlign"
    hidden_dim: int = 32
    seed: int | None = None
    options: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.hidden_dim <= 0:
            raise ValueError("hidden_dim must be positive")
        if not isinstance(self.options, dict):
            raise ValueError("model options must be a mapping")
        # Canonicalise to the JSON-native form (tuples -> lists) so the
        # round-trip invariant from_dict(to_dict(s)) == s holds even for
        # tuple-valued options; the model builders re-tuple at build time.
        object.__setattr__(self, "options", _jsonable(self.options))

    @classmethod
    def from_dict(cls, payload: dict) -> "ModelSpec":
        return cls(**_check_keys(cls, payload, "model"))


@dataclass(frozen=True)
class DecodeSpec:
    """How the fitted aligner produces and ranks test-time similarities.

    Mirrors the keyword surface that used to be threaded through
    ``model.similarity`` / ``Evaluator``: decode engine (``dense`` /
    ``blockwise`` / ``auto``), stored neighbours ``k``, encoder path
    (``full`` / ``sampled`` + batch size), ranking (``cosine`` / ``csls``)
    and candidate generation (``exhaustive`` or a registered generator,
    with an optional :class:`~repro.core.ann.AnnConfig`).

    ``num_workers`` shards the full-table decode across that many forked
    worker processes (:mod:`repro.core.sharded`) — bit-identical to the
    single-process decode; ``None`` keeps the in-process scan.
    """

    decode: str = "auto"
    k: int = 10
    encode: str = "full"
    encode_batch_size: int | None = None
    ranking: str = "cosine"
    candidates: str = "exhaustive"
    ann: AnnConfig | None = None
    use_propagation: bool = True
    num_workers: int | None = None

    def __post_init__(self) -> None:
        rules.check_decode_method(self.decode)
        rules.check_encode_method(self.encode)
        rules.check_ranking_method(self.ranking)
        rules.check_candidates_method(self.candidates)
        if self.k <= 0:
            raise ValueError("k must be positive")
        if self.encode_batch_size is not None and self.encode_batch_size <= 0:
            raise ValueError("encode_batch_size must be positive")
        if self.num_workers is not None and self.num_workers <= 0:
            raise ValueError("num_workers must be positive")

    @classmethod
    def from_dict(cls, payload: dict) -> "DecodeSpec":
        data = _check_keys(cls, payload, "decode")
        if "ann" in data:
            data["ann"] = _ann_from_payload(data["ann"], "decode")
        return cls(**data)


#: Channels :class:`PerturbationSpec.dropout_channels` may name — the two
#: modalities an entity can lose while remaining a valid graph node.
DROPPABLE_CHANNELS = ("vision", "attribute")

#: Feature channels :class:`PerturbationSpec.noise_channels` may name —
#: any prepared modal feature matrix.
NOISE_CHANNELS = ("graph", "relation", "attribute", "vision")


@dataclass(frozen=True)
class PerturbationSpec:
    """Declarative corruption of the task, applied once before fitting.

    All rates are severities in ``[0, 1]``; a spec whose severities are
    all zero is a *bit-exact no-op* — the pipeline skips the operators
    entirely, so zero-severity sweep cells reproduce the unperturbed run
    bit for bit.  ``seed`` drives every operator through independent
    per-operator child generators, so enabling one corruption never
    shifts another's random stream.

    Graph-level corruptions (applied to the raw pair, before task
    preparation): ``modality_dropout`` removes each channel in
    ``dropout_channels`` from that fraction of carrying entities;
    ``edge_deletion`` drops relation triples uniformly;
    ``edge_rewiring`` reconnects triple tails uniformly at random;
    ``degree_skew`` reconnects tails preferentially toward hubs.

    Task-level corruptions (applied to the prepared artefacts):
    ``feature_noise`` adds Gaussian noise at that multiple of each
    matrix's own standard deviation to the channels in
    ``noise_channels``; ``seed_noise`` mislabels that fraction of the
    seed (train) pairs by permuting their targets — test pairs are never
    touched.
    """

    modality_dropout: float = 0.0
    dropout_channels: tuple = DROPPABLE_CHANNELS
    feature_noise: float = 0.0
    noise_channels: tuple = ("vision", "attribute")
    seed_noise: float = 0.0
    edge_deletion: float = 0.0
    edge_rewiring: float = 0.0
    degree_skew: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        # Canonicalise to tuples so the frozen spec hashes/compares and
        # the JSON round trip (lists in, tuples here) stays lossless.
        object.__setattr__(self, "dropout_channels",
                           tuple(self.dropout_channels))
        object.__setattr__(self, "noise_channels",
                           tuple(self.noise_channels))
        for name in ("modality_dropout", "seed_noise", "edge_deletion",
                     "edge_rewiring", "degree_skew"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
        if self.feature_noise < 0.0:
            raise ValueError("feature_noise must be non-negative, got "
                             f"{self.feature_noise!r}")
        for channel in self.dropout_channels:
            if channel not in DROPPABLE_CHANNELS:
                raise ValueError(
                    f"dropout_channels may only name {DROPPABLE_CHANNELS}, "
                    f"got {channel!r}")
        for channel in self.noise_channels:
            if channel not in NOISE_CHANNELS:
                raise ValueError(
                    f"noise_channels may only name {NOISE_CHANNELS}, "
                    f"got {channel!r}")
        # A positive severity aimed at zero channels would be a silent
        # no-op — reject it the way every other illegal spec is rejected.
        if self.modality_dropout > 0.0 and not self.dropout_channels:
            raise ValueError("modality_dropout > 0 requires at least one "
                             "dropout channel")
        if self.feature_noise > 0.0 and not self.noise_channels:
            raise ValueError("feature_noise > 0 requires at least one "
                             "noise channel")

    def is_noop(self) -> bool:
        """True when no corruption is declared (the pipeline skips it)."""
        return (self.modality_dropout == 0.0 and self.feature_noise == 0.0
                and self.seed_noise == 0.0 and self.edge_deletion == 0.0
                and self.edge_rewiring == 0.0 and self.degree_skew == 0.0)

    @classmethod
    def from_dict(cls, payload: dict) -> "PerturbationSpec":
        return cls(**_check_keys(cls, payload, "perturbation"))


@dataclass(frozen=True)
class DeltaSpec:
    """How the incremental subsystem ingests delta batches.

    The all-default section changes nothing about a non-incremental run
    (specs and artifacts written before it existed load unchanged); it
    only parameterises ``repro ingest`` /
    :meth:`~repro.serve.ServingEngine.ingest`.  ``fanouts`` bound the
    warm-encode receptive field per GNN layer (``None`` keeps the model's
    full neighbourhood, which keeps re-encoded rows bit-compatible with
    the full encode); ``encode_batch_size`` sizes the sampled re-encode
    batches (``None`` follows the decode section / model default);
    ``refit_threshold`` is the fraction of moved-or-inserted IVF vectors
    tolerated before the quantiser is re-trained, via
    ``refit_train_size``-subsampled k-means warm-started from the current
    centroids; ``seed`` drives the per-batch feature/parameter streams.
    """

    fanouts: tuple | None = None
    encode_batch_size: int | None = None
    refit_threshold: float = 0.25
    refit_train_size: int | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.fanouts is not None:
            object.__setattr__(
                self, "fanouts",
                tuple(None if f is None else int(f) for f in self.fanouts))
            for fanout in self.fanouts:
                if fanout is not None and fanout <= 0:
                    raise ValueError("fanouts must be positive or None, got "
                                     f"{fanout!r}")
        if self.encode_batch_size is not None and self.encode_batch_size <= 0:
            raise ValueError("encode_batch_size must be positive, got "
                             f"{self.encode_batch_size!r}")
        if self.refit_threshold <= 0.0:
            raise ValueError("refit_threshold must be positive, got "
                             f"{self.refit_threshold!r}")
        if self.refit_train_size is not None and self.refit_train_size <= 0:
            raise ValueError("refit_train_size must be positive, got "
                             f"{self.refit_train_size!r}")

    @classmethod
    def from_dict(cls, payload: dict) -> "DeltaSpec":
        data = _check_keys(cls, payload, "delta")
        if "fanouts" in data:
            data["fanouts"] = _tuple_or_none(data["fanouts"])
        return cls(**data)


def _training_from_dict(payload: dict) -> TrainingConfig:
    data = _check_keys(TrainingConfig, payload, "training")
    if "fanouts" in data:
        data["fanouts"] = _tuple_or_none(data["fanouts"])
    if "ann" in data:
        data["ann"] = _ann_from_payload(data["ann"], "training")
    return TrainingConfig(**data)


@dataclass(frozen=True)
class PipelineSpec:
    """One validated, serialisable description of a full alignment run."""

    data: DataSpec = field(default_factory=DataSpec)
    model: ModelSpec = field(default_factory=ModelSpec)
    training: TrainingConfig = field(default_factory=TrainingConfig)
    decode: DecodeSpec = field(default_factory=DecodeSpec)
    #: Declarative task corruption (all-zero default is a bit-exact no-op,
    #: so specs and artifacts written before this section existed load
    #: unchanged).
    perturbation: PerturbationSpec = field(default_factory=PerturbationSpec)
    #: Incremental-ingestion parameters (the default is inert outside
    #: ``repro ingest`` / ``ServingEngine.ingest``, so older specs and
    #: artifacts load unchanged).
    delta: DeltaSpec = field(default_factory=DeltaSpec)

    # ------------------------------------------------------------------
    # Validation (the single home of every cross-field legality rule)
    # ------------------------------------------------------------------
    def validate(self) -> "PipelineSpec":
        """Check every cross-field legality rule; returns ``self``.

        Section-local vocabulary is already validated at construction (the
        dataclasses delegate to :mod:`repro.core.rules` in their
        ``__post_init__``); this method adds everything that spans
        sections, so an illegal pipeline is rejected here — once — instead
        of partway through a run.
        """
        data, model, training, decode = (self.data, self.model,
                                         self.training, self.decode)
        # -- registry membership ---------------------------------------
        known_models = model_names()
        if model.name not in known_models:
            raise ValueError(f"unknown model {model.name!r}; "
                             f"registered: {known_models}")
        if data.dataset != CUSTOM_DATASET and data.dataset not in ALL_DATASETS:
            raise ValueError(
                f"unknown dataset {data.dataset!r}; use one of "
                f"{list(ALL_DATASETS)} or {CUSTOM_DATASET!r} with "
                "AlignmentPipeline.fit(pair=...)")
        # -- decode coherence ------------------------------------------
        rules.check_candidates_decode(decode.candidates, decode.decode)
        rules.check_ranking_candidates(decode.ranking, decode.candidates)
        # -- training coherence (re-run so validate() covers the full
        #    rule set even if TrainingConfig construction is bypassed) --
        rules.check_iterative_candidates(training.iterative, training.candidates)
        rules.check_patience_cadence(training.early_stopping_patience,
                                     training.eval_every)
        # -- capability: neighbour sampling / sampled inference --------
        if training.sampling == "neighbour" and not model_supports_sampling(model.name):
            raise ValueError(
                f"model {model.name!r} does not support sampling='neighbour' "
                "(it must expose subgraph_loss and neighbour_sampler); "
                "register it with supports_sampling=True or use sampling='full'")
        if decode.encode == "sampled" and not model_supports_sampling(model.name):
            raise ValueError(
                f"model {model.name!r} does not support encode='sampled' "
                "(batched subgraph inference); use encode='full'")
        # -- backend coherence -----------------------------------------
        model_backend = model.options.get("backend")
        if model_backend not in (None, "auto") and model_backend != data.backend:
            raise ValueError(
                f"model backend {model_backend!r} contradicts data backend "
                f"{data.backend!r}; drop the model override (backend='auto' "
                "follows the prepared task) or align the two sections")
        return self

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-native nested dict (tuples listed, dataclasses expanded)."""
        return {
            "data": _section_to_dict(self.data),
            "model": _section_to_dict(self.model),
            "training": _section_to_dict(self.training),
            "decode": _section_to_dict(self.decode),
            "perturbation": _section_to_dict(self.perturbation),
            "delta": _section_to_dict(self.delta),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "PipelineSpec":
        """Build and validate a spec from a (possibly partial) nested dict."""
        if not isinstance(payload, dict):
            raise ValueError("a pipeline spec must be a JSON object")
        known = {"data", "model", "training", "decode", "perturbation",
                 "delta"}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown top-level key(s) {unknown} in pipeline "
                             f"spec; valid sections: {sorted(known)}")
        spec = cls(
            data=DataSpec.from_dict(payload.get("data", {})),
            model=ModelSpec.from_dict(payload.get("model", {})),
            training=_training_from_dict(payload.get("training", {})),
            decode=DecodeSpec.from_dict(payload.get("decode", {})),
            perturbation=PerturbationSpec.from_dict(
                payload.get("perturbation", {})),
            delta=DeltaSpec.from_dict(payload.get("delta", {})),
        )
        return spec.validate()

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def to_json_file(self, path) -> Path:
        path = Path(path)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def from_json_file(cls, path) -> "PipelineSpec":
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as error:
            raise ValueError(f"spec file {path} is not valid JSON: {error}") from error
        return cls.from_dict(payload)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def with_overrides(self, **sections) -> "PipelineSpec":
        """Return a copy with whole sections replaced (and re-validated)."""
        from dataclasses import replace

        return replace(self, **sections).validate()
