"""Seeded, composable corruption operators over alignment tasks.

The paper's central claim is graceful degradation under semantic
inconsistency; these operators manufacture that inconsistency under
experimental control.  Each operator is

* **seeded** — it draws from its own child generator
  ``np.random.default_rng([spec.seed, op_offset])``, so toggling one
  operator never shifts another operator's random stream and repeated
  applications are bit-reproducible;
* **surgical** — it touches only the entities / edges / features it
  targets and copies everything else through bit-identically;
* **a strict no-op at severity 0.0** — the input object is returned
  unchanged (no RNG draw, no copy), which is what makes zero-severity
  sweep cells bit-identical to the unperturbed pipeline.

Two application layers mirror where each corruption lives naturally:
:func:`perturb_pair` rewrites the raw :class:`~repro.kg.KGPair` *before*
task preparation (modality dropout, edge deletion / rewiring, degree-skew
resampling — so imputation, masks, adjacency and Laplacians are rebuilt
consistently for the corrupted world), and :func:`perturb_task` rewrites
the prepared :class:`~repro.core.task.PreparedTask` *after* preparation
(Gaussian feature noise, mislabelled seed pairs — corruptions of the
derived artefacts, not of the graphs).  The pipeline facade applies both
once, between data preparation and fit, so every model in a sweep sees
the identical corrupted world.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from ..core.task import PreparedTask
from ..data.features import ModalFeatureSet
from ..kg.graph import MultiModalKG
from ..kg.pair import KGPair

__all__ = [
    "drop_modality",
    "delete_edges",
    "rewire_edges",
    "skew_degrees",
    "corrupt_seed_pairs",
    "add_feature_noise",
    "perturb_pair",
    "perturb_task",
]

#: Fixed per-operator child-seed offsets: every operator owns an
#: independent random stream derived from ``(spec.seed, offset)``, so
#: enabling or re-ordering one operator cannot perturb another's draws.
_OP_OFFSETS = {
    "modality_dropout": 11,
    "edge_deletion": 23,
    "edge_rewiring": 37,
    "degree_skew": 53,
    "seed_noise": 71,
    "feature_noise": 89,
}

#: Channels that can be dropped at the graph level (the structural and
#: relation channels are the graph — dropping them is edge deletion).
DROPPABLE_CHANNELS = ("vision", "attribute")


def _op_rng(seed: int, op: str, side: int = 0) -> np.random.Generator:
    """The operator's own child generator (independent per op and side)."""
    return np.random.default_rng([int(seed), _OP_OFFSETS[op], side])


def _check_rate(rate: float, name: str) -> float:
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {rate!r}")
    return float(rate)


def _copy_graph(graph: MultiModalKG, *, relation_triples=None,
                attribute_triples=None, image_features=None) -> MultiModalKG:
    """A structural copy of ``graph`` with selected ingredient sets replaced."""
    return MultiModalKG(
        entity_names=list(graph.entity_names),
        num_relations=graph.num_relations,
        num_attributes=graph.num_attributes,
        relation_triples=(list(graph.relation_triples)
                          if relation_triples is None else relation_triples),
        attribute_triples=(list(graph.attribute_triples)
                           if attribute_triples is None else attribute_triples),
        image_features=({e: feat.copy() for e, feat in graph.image_features.items()}
                        if image_features is None else image_features),
        name=graph.name,
    )


def _copy_pair(pair: KGPair, source: MultiModalKG,
               target: MultiModalKG) -> KGPair:
    return KGPair(source=source, target=target,
                  alignments=list(pair.alignments),
                  seed_ratio=pair.seed_ratio, name=pair.name)


# ---------------------------------------------------------------------------
# Graph-level operators (KGPair -> KGPair, applied before preparation)
# ---------------------------------------------------------------------------
def drop_modality(graph: MultiModalKG, channel: str, rate: float,
                  rng: np.random.Generator) -> MultiModalKG:
    """Remove ``channel`` from a ``rate`` fraction of the entities carrying it.

    ``"vision"`` strips the visual feature vector, ``"attribute"`` strips
    every textual attribute triple — the two missing-modality forms of
    semantic inconsistency the paper's Tables II/III stress.  Entities
    outside the dropped subset carry their features through untouched.
    """
    if channel not in DROPPABLE_CHANNELS:
        raise ValueError(f"channel must be one of {DROPPABLE_CHANNELS}, "
                         f"got {channel!r}")
    _check_rate(rate, "rate")
    if rate == 0.0:
        return graph
    if channel == "vision":
        carriers = np.asarray(sorted(graph.image_features), dtype=np.int64)
    else:
        carriers = np.asarray(sorted(graph.entities_with_attributes()),
                              dtype=np.int64)
    drop_count = int(round(rate * len(carriers)))
    dropped = set(carriers[rng.permutation(len(carriers))[:drop_count]].tolist())
    if channel == "vision":
        images = {e: feat.copy() for e, feat in graph.image_features.items()
                  if e not in dropped}
        return _copy_graph(graph, image_features=images)
    attributes = [t for t in graph.attribute_triples if t.entity not in dropped]
    return _copy_graph(graph, attribute_triples=attributes)


def delete_edges(graph: MultiModalKG, rate: float,
                 rng: np.random.Generator) -> MultiModalKG:
    """Delete a uniformly random ``rate`` fraction of the relation triples.

    Surviving triples are carried through in their original order and
    identity, so the untouched part of the graph is bit-identical.
    """
    _check_rate(rate, "rate")
    if rate == 0.0:
        return graph
    total = len(graph.relation_triples)
    delete_count = int(round(rate * total))
    doomed = set(rng.permutation(total)[:delete_count].tolist())
    survivors = [t for index, t in enumerate(graph.relation_triples)
                 if index not in doomed]
    return _copy_graph(graph, relation_triples=survivors)


def rewire_edges(graph: MultiModalKG, rate: float,
                 rng: np.random.Generator) -> MultiModalKG:
    """Rewire the tail of a ``rate`` fraction of triples to a uniform entity.

    The head and relation type stay; the tail jumps to a random other
    entity (never a self-loop), injecting structural noise while keeping
    edge count and degree totals comparable.
    """
    from ..kg.graph import RelationTriple

    _check_rate(rate, "rate")
    if rate == 0.0 or graph.num_entities < 2:
        return graph
    total = len(graph.relation_triples)
    rewire_count = int(round(rate * total))
    chosen = set(rng.permutation(total)[:rewire_count].tolist())
    new_tails = rng.integers(0, graph.num_entities - 1, size=total)
    triples = []
    for index, triple in enumerate(graph.relation_triples):
        if index not in chosen:
            triples.append(triple)
            continue
        # Draw from [0, n-1) and skip over the head so the result is a
        # uniform non-self-loop tail with a single deterministic draw.
        tail = int(new_tails[index])
        if tail >= triple.head:
            tail += 1
        triples.append(RelationTriple(triple.head, triple.relation, tail))
    return _copy_graph(graph, relation_triples=triples)


def skew_degrees(graph: MultiModalKG, rate: float,
                 rng: np.random.Generator) -> MultiModalKG:
    """Resample a ``rate`` fraction of tails proportionally to degree.

    A preferential-attachment rewire: chosen triples reconnect to
    endpoints drawn with probability proportional to current degree,
    concentrating edges on hubs and starving the tail of the degree
    distribution — the degree-skew robustness scenario.
    """
    from ..kg.graph import RelationTriple

    _check_rate(rate, "rate")
    if rate == 0.0 or graph.num_entities < 2:
        return graph
    degrees = graph.degree().astype(np.float64) + 1.0  # +1: no zero-prob sinks
    weights = degrees / degrees.sum()
    total = len(graph.relation_triples)
    skew_count = int(round(rate * total))
    chosen = set(rng.permutation(total)[:skew_count].tolist())
    new_tails = rng.choice(graph.num_entities, size=total, p=weights)
    triples = []
    for index, triple in enumerate(graph.relation_triples):
        if index not in chosen:
            triples.append(triple)
            continue
        tail = int(new_tails[index])
        if tail == triple.head:  # deterministic non-self-loop fallback
            tail = (tail + 1) % graph.num_entities
        triples.append(RelationTriple(triple.head, triple.relation, tail))
    return _copy_graph(graph, relation_triples=triples)


# ---------------------------------------------------------------------------
# Task-level operators (PreparedTask -> PreparedTask, applied after prep)
# ---------------------------------------------------------------------------
def corrupt_seed_pairs(task: PreparedTask, rate: float,
                       rng: np.random.Generator) -> PreparedTask:
    """Mislabel a ``rate`` fraction of the seed (train) pairs.

    The chosen rows keep their source entities but have their target
    entities cyclically shifted among themselves — every corrupted pair is
    guaranteed wrong (no fixed points for two or more rows) while the
    target multiset, and thus the supervision budget, is preserved.  Test
    pairs and unchosen rows are bit-identical.
    """
    _check_rate(rate, "rate")
    if rate == 0.0:
        return task
    train = np.array(task.train_pairs, copy=True)
    total = len(train)
    corrupt_count = int(round(rate * total))
    if corrupt_count == 1 and total >= 2:
        corrupt_count = 2  # a 1-cycle would be a silent no-op
    if corrupt_count < 2:
        return task
    rows = np.sort(rng.permutation(total)[:corrupt_count])
    train[rows, 1] = np.roll(train[rows, 1], 1)
    return replace(task, train_pairs=train)


def add_feature_noise(task: PreparedTask, channels: tuple[str, ...],
                      sigma: float, rng_by_side) -> PreparedTask:
    """Add Gaussian noise to the named modal feature matrices.

    ``sigma`` scales the per-matrix feature standard deviation, so a
    severity of 0.5 injects noise at half the signal's own spread
    regardless of the modality's units.  Masks, untouched channels and
    the graph matrices pass through bit-identically.
    """
    if sigma < 0.0:
        raise ValueError(f"sigma must be non-negative, got {sigma!r}")
    if sigma == 0.0 or not channels:
        return task
    sides = {}
    for side_index, (name, side) in enumerate((("source", task.source),
                                               ("target", task.target))):
        rng = rng_by_side(side_index)
        features = dict(side.features.features)
        for channel in channels:
            if channel not in features:
                raise ValueError(f"unknown feature channel {channel!r}; "
                                 f"known: {sorted(features)}")
            matrix = features[channel]
            scale = float(matrix.std())
            if scale == 0.0:
                scale = 1.0
            features[channel] = matrix + rng.normal(
                0.0, sigma * scale, size=matrix.shape)
        sides[name] = replace(side, features=ModalFeatureSet(
            features=features, masks=dict(side.features.masks),
            graph=side.features.graph))
    return replace(task, source=sides["source"], target=sides["target"])


# ---------------------------------------------------------------------------
# Spec-driven application (what the pipeline facade calls)
# ---------------------------------------------------------------------------
def perturb_pair(pair: KGPair, spec) -> KGPair:
    """Apply the graph-level corruptions a :class:`PerturbationSpec` declares.

    Operators run in a fixed order (modality dropout, edge deletion, edge
    rewiring, degree skew), each over both sides with its own per-side
    child generator.  Severity-zero operators are skipped entirely; a
    fully zero spec returns ``pair`` itself.
    """
    if not _pair_ops_active(spec):
        return pair
    graphs = [pair.source, pair.target]
    if spec.modality_dropout > 0.0:
        for side in range(2):
            rng = _op_rng(spec.seed, "modality_dropout", side)
            for channel in spec.dropout_channels:
                graphs[side] = drop_modality(graphs[side], channel,
                                             spec.modality_dropout, rng)
    if spec.edge_deletion > 0.0:
        for side in range(2):
            graphs[side] = delete_edges(
                graphs[side], spec.edge_deletion,
                _op_rng(spec.seed, "edge_deletion", side))
    if spec.edge_rewiring > 0.0:
        for side in range(2):
            graphs[side] = rewire_edges(
                graphs[side], spec.edge_rewiring,
                _op_rng(spec.seed, "edge_rewiring", side))
    if spec.degree_skew > 0.0:
        for side in range(2):
            graphs[side] = skew_degrees(
                graphs[side], spec.degree_skew,
                _op_rng(spec.seed, "degree_skew", side))
    return _copy_pair(pair, graphs[0], graphs[1])


def perturb_task(task: PreparedTask, spec) -> PreparedTask:
    """Apply the post-preparation corruptions a :class:`PerturbationSpec` declares."""
    if not _task_ops_active(spec):
        return task
    if spec.feature_noise > 0.0:
        task = add_feature_noise(
            task, tuple(spec.noise_channels), spec.feature_noise,
            lambda side: _op_rng(spec.seed, "feature_noise", side))
    if spec.seed_noise > 0.0:
        task = corrupt_seed_pairs(task, spec.seed_noise,
                                  _op_rng(spec.seed, "seed_noise"))
    return task


def _pair_ops_active(spec) -> bool:
    return any(rate > 0.0 for rate in (spec.modality_dropout,
                                       spec.edge_deletion,
                                       spec.edge_rewiring,
                                       spec.degree_skew))


def _task_ops_active(spec) -> bool:
    return spec.feature_noise > 0.0 or spec.seed_noise > 0.0
