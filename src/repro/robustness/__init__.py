"""Declarative corruption injection for robustness experiments.

The subsystem has two halves:

* **Data corruptions** (:mod:`repro.robustness.operators`) — seeded,
  composable perturbation operators over alignment tasks (modality
  dropout, edge deletion / rewiring, degree-skew resampling, Gaussian
  feature noise, mislabelled seed pairs), declared through the frozen
  :class:`~repro.pipeline.spec.PerturbationSpec` section of a
  :class:`~repro.pipeline.PipelineSpec` and applied exactly once by
  :meth:`AlignmentPipeline.build_task`, between data preparation and fit
  — so every model in a sweep sees the identical corrupted world under a
  fixed seed, and a severity of 0.0 is a bit-exact no-op.

* **Serving faults** (:mod:`repro.serve.faults`) — the
  :class:`~repro.serve.FaultInjector` companion that stresses the
  serving engine with decode failures, latency and worker death; it
  lives with the serving subsystem but shares this package's seeded,
  declarative philosophy.
"""

from .operators import (
    DROPPABLE_CHANNELS,
    add_feature_noise,
    corrupt_seed_pairs,
    delete_edges,
    drop_modality,
    perturb_pair,
    perturb_task,
    rewire_edges,
    skew_degrees,
)
from ..pipeline.spec import PerturbationSpec

__all__ = [
    "PerturbationSpec",
    "DROPPABLE_CHANNELS",
    "drop_modality",
    "delete_edges",
    "rewire_edges",
    "skew_degrees",
    "corrupt_seed_pairs",
    "add_feature_noise",
    "perturb_pair",
    "perturb_task",
]
