"""Shared infrastructure for the baseline entity-alignment models.

Every baseline implements the same minimal aligner interface used by
:class:`repro.core.trainer.Trainer`:

* ``loss(source_index, target_index)`` — training loss over seed pairs,
* ``similarity()`` — full source×target similarity matrix for decoding,
* ``parameters()`` / ``num_parameters()`` — inherited from ``Module``.

:class:`ModalBaselineModel` factors the plumbing common to the multi-modal
baselines (EVA, MCLEA, MEAformer, PoE): per-modality FC projections,
optional structural GNN channel and the contrastive loss helper.  The
specific fusion and objective of each published method live in their own
modules.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, no_grad
from ..core.compat import warn_legacy
from ..core.config import DEFAULT_ENCODE_BATCH, MODALITY_ORDER
from ..core.similarity import decode_similarity
from ..core.losses import bidirectional_contrastive_loss
from ..core.task import PreparedTask
from ..kg.sampling import NeighbourSampler, SubgraphView, attention_pattern
from ..nn import GAT, GCN, Linear, Module, ModuleDict, Parameter, init

__all__ = ["BaselineConfig", "ModalBaselineModel"]


class BaselineConfig:
    """Light-weight hyper-parameter bundle shared by the baselines."""

    def __init__(self, hidden_dim: int = 32, temperature: float = 0.1,
                 gnn: str = "gcn", gnn_layers: int = 2, gnn_heads: int = 2,
                 modalities: tuple[str, ...] = MODALITY_ORDER, seed: int = 0,
                 backend: str | None = None):
        if hidden_dim <= 0:
            raise ValueError("hidden_dim must be positive")
        if gnn not in {"gcn", "gat", "none"}:
            raise ValueError("gnn must be one of 'gcn', 'gat', 'none'")
        if backend not in {None, "dense", "sparse"}:
            raise ValueError("backend must be None (follow the task), 'dense' or 'sparse'")
        unknown = set(modalities) - set(MODALITY_ORDER)
        if unknown:
            raise ValueError(f"unknown modalities: {sorted(unknown)}")
        self.hidden_dim = hidden_dim
        self.temperature = temperature
        self.gnn = gnn
        self.gnn_layers = gnn_layers
        self.gnn_heads = gnn_heads
        self.modalities = tuple(modalities)
        self.seed = seed
        #: ``None`` keeps whatever backend the prepared task uses; setting it
        #: converts the task on model construction (GCN/GAT dispatch on the
        #: matrix type, so both backends share the code path below).
        self.backend = backend


class ModalBaselineModel(Module):
    """Base class providing modality encoders and decoding for baselines."""

    name = "baseline"

    def __init__(self, task: PreparedTask, config: BaselineConfig | None = None):
        super().__init__()
        self.config = config or BaselineConfig()
        if self.config.backend is not None:
            task = task.with_backend(self.config.backend)
        self.task = task
        rng = np.random.default_rng(self.config.seed)
        hidden = self.config.hidden_dim

        self._structure_keys: dict[str, str] = {}
        for side, prepared in (("source", task.source), ("target", task.target)):
            key = f"structure_{side}"
            self._parameters[key] = Parameter(
                init.normal(rng, (prepared.num_entities, hidden), std=0.3))
            self._structure_keys[side] = key

        if "graph" in self.config.modalities and self.config.gnn == "gat":
            self.gnn = GAT(hidden, self.config.gnn_layers, self.config.gnn_heads, rng)
        elif "graph" in self.config.modalities and self.config.gnn == "gcn":
            self.gnn = GCN(hidden, self.config.gnn_layers, rng)
        else:
            self.gnn = None

        self.projections = ModuleDict()
        for modality in self.config.modalities:
            if modality == "graph":
                continue
            self.projections[modality] = Linear(task.feature_dims[modality], hidden, rng)
        self._rng = rng
        # Full-neighbourhood samplers for batched inference, built lazily
        # once per side (cf. DESAlign._eval_samplers).
        self._eval_samplers: dict[str, NeighbourSampler] = {}

    # ------------------------------------------------------------------
    # Encoding helpers
    # ------------------------------------------------------------------
    def _prepared(self, side: str):
        return self.task.source if side == "source" else self.task.target

    def modal_embeddings(self, side: str) -> dict[str, Tensor]:
        """Per-modality hidden embeddings for one graph."""
        prepared = self._prepared(side)
        embeddings: dict[str, Tensor] = {}
        for modality in self.config.modalities:
            if modality == "graph":
                structure = self._parameters[self._structure_keys[side]]
                if isinstance(self.gnn, GCN):
                    embeddings["graph"] = self.gnn(structure, prepared.normalized_adjacency)
                elif isinstance(self.gnn, GAT):
                    embeddings["graph"] = self.gnn(structure, prepared.adjacency)
                else:
                    embeddings["graph"] = structure
            else:
                embeddings[modality] = self.projections[modality](
                    Tensor(prepared.features.features[modality]))
        return embeddings

    def joint_from_modal(self, modal: dict[str, Tensor]) -> Tensor:
        """Row-independent fusion of per-modality embeddings into the joint.

        Baselines whose fusion treats entities independently (GCN-Align's
        identity on the structure channel, EVA's globally-weighted
        concatenation) implement the fusion here; :meth:`joint_embedding`
        and the subgraph encoding path both route through it, which is what
        makes ``sampling="neighbour"`` / ``encode="sampled"`` numerically
        exact for them.  Baselines with entity-coupled objectives keep
        overriding :meth:`joint_embedding` instead and stay full-graph.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement a row-independent "
            f"fusion (joint_from_modal); neighbour-sampled encoding is "
            f"unavailable for it")

    def joint_embedding(self, side: str) -> Tensor:
        """Joint entity embedding used for decoding.

        Defaults to :meth:`joint_from_modal` over the full-graph modal
        embeddings; baselines with entity-coupled fusions override this
        directly.
        """
        return self.joint_from_modal(self.modal_embeddings(side))

    # ------------------------------------------------------------------
    # Neighbour-sampled encoding
    # ------------------------------------------------------------------
    def neighbour_sampler(self, side: str, fanouts=None, seed: int = 0) -> NeighbourSampler:
        """Layer-wise neighbour sampler over one side's GNN operator.

        A GCN channel samples the *normalised adjacency* with unbiased
        ``degree / fanout`` rescaling, so a sampled ``spmm`` aggregation
        estimates the full one; a GAT channel samples the binary
        :func:`~repro.kg.sampling.attention_pattern` (attention ignores
        edge weights, so rescaling is moot).  In both cases
        full-neighbourhood fanouts reproduce the full-graph forward
        bit-for-bit on the seed rows.
        """
        prepared = self._prepared(side)
        if self.gnn is None:
            raise ValueError(
                f"{type(self).__name__} has no structural GNN channel "
                f"(gnn={self.config.gnn!r}); neighbour sampling requires "
                f"gnn='gcn' or gnn='gat'")
        if fanouts is None:
            fanouts = (None,) * self.config.gnn_layers
        if len(fanouts) != self.config.gnn_layers:
            raise ValueError(f"need one fanout per GNN layer "
                             f"({self.config.gnn_layers}), got {len(fanouts)}")
        if isinstance(self.gnn, GCN):
            return NeighbourSampler(prepared.normalized_adjacency, fanouts,
                                    seed=seed, rescale=True)
        return NeighbourSampler(attention_pattern(prepared.adjacency), fanouts,
                                seed=seed, rescale=False)

    def modal_embeddings_subgraph(self, side: str,
                                  view: SubgraphView) -> dict[str, Tensor]:
        """Per-modality embeddings restricted to a sampled subgraph.

        The structural channel runs the GNN on the renumbered blocks (only
        ``view.input_nodes`` rows of the embedding table participate); the
        FC channels are row-independent and simply slice the seed rows.
        """
        prepared = self._prepared(side)
        node_ids = view.seed_nodes
        embeddings: dict[str, Tensor] = {}
        for modality in self.config.modalities:
            if modality == "graph":
                table = self._parameters[self._structure_keys[side]].index_select(
                    view.input_nodes)
                embeddings["graph"] = self.gnn(table, view)
            else:
                embeddings[modality] = self.projections[modality](
                    Tensor(prepared.features.features[modality][node_ids]))
        return embeddings

    def encode_subgraph(self, side: str, view: SubgraphView) -> Tensor:
        """Joint embeddings of the view's seed rows (sampled forward)."""
        return self.joint_from_modal(self.modal_embeddings_subgraph(side, view))

    def subgraph_loss(self, source_view: SubgraphView, target_view: SubgraphView,
                      source_index: np.ndarray, target_index: np.ndarray,
                      source_local: np.ndarray | None = None,
                      target_local: np.ndarray | None = None) -> Tensor:
        """Contrastive loss over seed pairs encoded through sampled subgraphs.

        Mirrors :meth:`repro.core.model.DESAlign.subgraph_loss` so the
        neighbour-sampled training loop drives any baseline implementing
        :meth:`joint_from_modal` unchanged; on full-neighbourhood views it
        is numerically identical to :meth:`loss`.
        """
        source = self.encode_subgraph("source", source_view)
        target = self.encode_subgraph("target", target_view)
        if source_local is None:
            source_local = source_view.global_to_local(source_index)
        if target_local is None:
            target_local = target_view.global_to_local(target_index)
        return self.contrastive(source, target, source_local, target_local)

    def encode_entities_sampled(self, side: str,
                                batch_size: int = DEFAULT_ENCODE_BATCH) -> np.ndarray:
        """Joint embeddings of *all* entities via batched subgraph forwards."""
        prepared = self._prepared(side)
        sampler = self._eval_samplers.get(side)
        if sampler is None:
            sampler = self.neighbour_sampler(side)
            self._eval_samplers[side] = sampler
        num_entities = prepared.num_entities
        embeddings: np.ndarray | None = None
        with no_grad():
            for start in range(0, num_entities, batch_size):
                seeds = np.arange(start, min(start + batch_size, num_entities))
                view = sampler.sample(seeds)
                values = self.encode_subgraph(side, view).numpy()
                if embeddings is None:
                    embeddings = np.empty((num_entities, values.shape[1]))
                view.scatter_rows(values, embeddings)
        return embeddings

    # ------------------------------------------------------------------
    # Aligner interface
    # ------------------------------------------------------------------
    def contrastive(self, source_embeddings: Tensor, target_embeddings: Tensor,
                    source_index: np.ndarray, target_index: np.ndarray,
                    pair_weights=None) -> Tensor:
        """Bi-directional in-batch contrastive loss at this baseline's temperature."""
        return bidirectional_contrastive_loss(
            source_embeddings, target_embeddings, source_index, target_index,
            self.config.temperature, pair_weights=pair_weights)

    def loss(self, source_index: np.ndarray, target_index: np.ndarray):
        raise NotImplementedError

    def decode_states(self, use_propagation: bool = False, encode: str = "full",
                      encode_batch_size: int | None = None
                      ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Evaluation states feeding the decode (single round: no propagation).

        Mirrors :meth:`repro.core.model.DESAlign.decode_states` so the
        pipeline facade can cache and persist any registered aligner's
        decode inputs uniformly.  ``use_propagation`` means "use the
        propagation decoder if you have one" and is ignored here exactly as
        :meth:`similarity` ignores it.  ``encode="sampled"`` computes the
        joints through batched subgraph forwards — available to baselines
        implementing :meth:`joint_from_modal` with a GNN channel (GCN-Align,
        EVA); entity-coupled baselines raise from that hook instead.
        """
        del use_propagation  # no propagation decoder: single-state decode
        if encode not in {"full", "sampled"}:
            raise ValueError("encode must be 'full' or 'sampled'")
        if encode == "sampled":
            batch = encode_batch_size or DEFAULT_ENCODE_BATCH
            return ([self.encode_entities_sampled("source", batch_size=batch)],
                    [self.encode_entities_sampled("target", batch_size=batch)])
        with no_grad():
            source = self.joint_embedding("source").numpy()
            target = self.joint_embedding("target").numpy()
        return [source], [target]

    def similarity(self, use_propagation: bool = False, decode: str = "auto",
                   k: int = 10, block_size: int | None = None,
                   encode: str = "full", encode_batch_size: int | None = None,
                   candidates: str = "exhaustive", ann=None):
        """Cosine similarity between joint embeddings (no propagation decoder).

        Routes through the shared decoding engine: ``decode="dense"``
        returns the full matrix, ``"blockwise"`` a streaming top-k decode,
        ``"auto"`` switches on the task size; ``candidates="ivf" | "lsh"``
        restricts the streaming decode to approximate candidate sets
        (seeded from this baseline's config unless the
        :class:`~repro.core.ann.AnnConfig` pins its own seed).  Non-default
        switches outside the facade emit a ``DeprecationWarning`` with the
        spec equivalent.
        """
        if decode != "auto" or candidates != "exhaustive" or encode != "full":
            warn_legacy(
                f"{type(self).__name__}.similarity(decode={decode!r}, "
                f"encode={encode!r}, candidates={candidates!r})",
                f"declare DecodeSpec(decode={decode!r}, encode={encode!r}, "
                f"candidates={candidates!r}) in PipelineSpec.decode and call "
                "Aligner.align() / Aligner.evaluate()")
        [source], [target] = self.decode_states(
            encode=encode, encode_batch_size=encode_batch_size)
        ann = self._resolve_ann(candidates, ann)
        return decode_similarity(source, target, decode=decode, k=k,
                                 block_size=block_size, candidates=candidates,
                                 ann=ann)

    def _resolve_ann(self, candidates: str, ann):
        """Default the candidate generator's seed to this model's seed."""
        if candidates == "exhaustive":
            return ann
        from ..core.ann import resolve_ann

        return resolve_ann(ann, self.config.seed)
