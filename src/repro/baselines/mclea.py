"""MCLEA baseline (Lin et al., COLING 2022): multi-modal contrastive learning.

MCLEA adds intra-modal contrastive objectives (one per modality) on top of a
joint-embedding contrastive loss.  Modalities are fused by concatenation
with global learnable weights; unlike MEAformer / DESAlign there is no
cross-modal attention and therefore no per-entity confidence, and missing
modal features remain whatever the predefined-distribution imputation
produced — the behaviour whose noise-sensitivity the paper analyses.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, l2_normalize, softmax
from ..core.task import PreparedTask
from ..nn import Parameter
from .base import BaselineConfig, ModalBaselineModel

__all__ = ["MCLEA"]


class MCLEA(ModalBaselineModel):
    """MCLEA: joint + intra-modal contrastive objectives with global weights."""

    name = "MCLEA"

    def __init__(self, task: PreparedTask, config: BaselineConfig | None = None,
                 modal_loss_weight: float = 1.0):
        config = config or BaselineConfig(gnn="gat")
        super().__init__(task, config)
        self.modal_loss_weight = modal_loss_weight
        self.modality_logits = Parameter(np.zeros(len(self.config.modalities)))

    def global_modality_weights(self) -> Tensor:
        return softmax(self.modality_logits, axis=-1)

    def joint_embedding(self, side: str) -> Tensor:
        modal = self.modal_embeddings(side)
        weights = self.global_modality_weights()
        weighted = []
        for index, modality in enumerate(self.config.modalities):
            weighted.append(l2_normalize(modal[modality]) * weights[index])
        return Tensor.concat(weighted, axis=-1)

    def loss(self, source_index: np.ndarray, target_index: np.ndarray) -> Tensor:
        source_modal = self.modal_embeddings("source")
        target_modal = self.modal_embeddings("target")
        weights = self.global_modality_weights()

        weighted_source = []
        weighted_target = []
        for index, modality in enumerate(self.config.modalities):
            weighted_source.append(l2_normalize(source_modal[modality]) * weights[index])
            weighted_target.append(l2_normalize(target_modal[modality]) * weights[index])
        joint_source = Tensor.concat(weighted_source, axis=-1)
        joint_target = Tensor.concat(weighted_target, axis=-1)

        total = self.contrastive(joint_source, joint_target, source_index, target_index)
        for modality in self.config.modalities:
            modal_loss = self.contrastive(source_modal[modality], target_modal[modality],
                                          source_index, target_index)
            total = total + modal_loss * self.modal_loss_weight
        return total
