"""MEAformer baseline (Chen et al., 2022): meta-modality hybrid transformer.

MEAformer introduces the cross-modal attention block that DESAlign's CAW is
adapted from: per-entity modality confidences produced by a transformer
layer weight both the fused embedding and the intra-modal objectives.  It
lacks DESAlign's Dirichlet-energy-driven objective structure (no task loss
on the early-fusion embedding, no layer-(k-1) modal terms) and has no
Semantic Propagation decoder, which is where the robustness gap against
missing modalities comes from in the paper's experiments.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, l2_normalize
from ..core.task import PreparedTask
from ..nn import CrossModalAttentionBlock
from .base import BaselineConfig, ModalBaselineModel

__all__ = ["MEAformer"]


class MEAformer(ModalBaselineModel):
    """MEAformer: cross-modal attention fusion with confidence-weighted losses."""

    name = "MEAformer"

    def __init__(self, task: PreparedTask, config: BaselineConfig | None = None,
                 attention_heads: int = 1, feed_forward_dim: int = 64):
        config = config or BaselineConfig(gnn="gat")
        super().__init__(task, config)
        self.cross_modal = CrossModalAttentionBlock(
            self.config.hidden_dim, attention_heads, feed_forward_dim, self._rng)

    # ------------------------------------------------------------------
    def _encode(self, side: str) -> tuple[dict[str, Tensor], dict[str, Tensor], Tensor]:
        modal = self.modal_embeddings(side)
        stacked = Tensor.stack([modal[m] for m in self.config.modalities], axis=1)
        attended_stack, confidences = self.cross_modal(stacked)
        attended = {m: attended_stack[:, i, :]
                    for i, m in enumerate(self.config.modalities)}
        return modal, attended, confidences

    def _fused(self, modal: dict[str, Tensor], confidences: Tensor) -> Tensor:
        """Confidence-weighted concatenation (early fusion, used for decoding)."""
        weighted = []
        for index, modality in enumerate(self.config.modalities):
            weight = confidences[:, index].reshape(-1, 1)
            weighted.append(l2_normalize(modal[modality]) * weight)
        return Tensor.concat(weighted, axis=-1)

    def joint_embedding(self, side: str) -> Tensor:
        modal, _, confidences = self._encode(side)
        return self._fused(modal, confidences)

    # ------------------------------------------------------------------
    def loss(self, source_index: np.ndarray, target_index: np.ndarray) -> Tensor:
        source_modal, source_attended, source_conf = self._encode("source")
        target_modal, target_attended, target_conf = self._encode("target")
        fused_source = self._fused(source_modal, source_conf)
        fused_target = self._fused(target_modal, target_conf)

        total = self.contrastive(fused_source, fused_target, source_index, target_index)
        source_conf_values = source_conf.detach().numpy()
        target_conf_values = target_conf.detach().numpy()
        for index, modality in enumerate(self.config.modalities):
            weights = np.minimum(source_conf_values[source_index, index],
                                 target_conf_values[target_index, index])
            modal_loss = self.contrastive(
                source_modal[modality], target_modal[modality],
                source_index, target_index, pair_weights=weights)
            attended_loss = self.contrastive(
                source_attended[modality], target_attended[modality],
                source_index, target_index, pair_weights=weights)
            total = total + modal_loss + attended_loss
        return total
