"""GCN-Align baseline (Wang et al., EMNLP 2018): structure-only alignment.

GCN-Align embeds entities with a graph convolutional network over each KG
and aligns them with a seed-supervised objective; it uses no textual or
visual modality, making it the canonical structure-only reference row of
Table IV.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor
from ..core.task import PreparedTask
from .base import BaselineConfig, ModalBaselineModel

__all__ = ["GCNAlign"]


class GCNAlign(ModalBaselineModel):
    """Structure-only GCN aligner with a contrastive seed objective."""

    name = "GCN-align"

    def __init__(self, task: PreparedTask, config: BaselineConfig | None = None):
        config = config or BaselineConfig(gnn="gcn", modalities=("graph",))
        if config.modalities != ("graph",):
            config = BaselineConfig(hidden_dim=config.hidden_dim,
                                    temperature=config.temperature,
                                    gnn="gcn", gnn_layers=config.gnn_layers,
                                    modalities=("graph",), seed=config.seed,
                                    backend=config.backend)
        super().__init__(task, config)

    def joint_from_modal(self, modal: dict[str, Tensor]) -> Tensor:
        # Structure-only: the GCN output is the joint embedding, making
        # the fusion trivially row-independent (neighbour-sampling safe).
        return modal["graph"]

    def loss(self, source_index: np.ndarray, target_index: np.ndarray) -> Tensor:
        source = self.joint_embedding("source")
        target = self.joint_embedding("target")
        return self.contrastive(source, target, source_index, target_index)
