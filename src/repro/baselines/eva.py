"""EVA baseline (Liu et al., AAAI 2021): visual-pivoted entity alignment.

EVA fuses the modalities with *global* learnable modality weights (a single
softmax-normalised scalar per modality, shared by every entity) and trains a
contrastive alignment objective on the fused embedding only.  Compared with
MCLEA / MEAformer / DESAlign it has no per-entity modality weighting and no
intra-modal objectives, which is why it degrades most under semantic
inconsistency (cf. Tables II-IV of the paper).
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, l2_normalize, softmax
from ..core.task import PreparedTask
from ..nn import Parameter
from .base import BaselineConfig, ModalBaselineModel

__all__ = ["EVA"]


class EVA(ModalBaselineModel):
    """EVA: weighted modality concatenation with a fused contrastive loss."""

    name = "EVA"

    def __init__(self, task: PreparedTask, config: BaselineConfig | None = None):
        config = config or BaselineConfig(gnn="gcn")
        super().__init__(task, config)
        self.modality_logits = Parameter(np.zeros(len(self.config.modalities)))

    def global_modality_weights(self) -> Tensor:
        """Softmax-normalised global modality weights (one scalar per modality)."""
        return softmax(self.modality_logits, axis=-1)

    def joint_from_modal(self, modal: dict[str, Tensor]) -> Tensor:
        # Global scalar weights + per-row L2 normalisation: every output
        # row depends only on its own input rows, so the fusion is
        # row-independent (neighbour-sampling safe).
        weights = self.global_modality_weights()
        weighted = []
        for index, modality in enumerate(self.config.modalities):
            weighted.append(l2_normalize(modal[modality]) * weights[index])
        return Tensor.concat(weighted, axis=-1)

    def loss(self, source_index: np.ndarray, target_index: np.ndarray) -> Tensor:
        source = self.joint_embedding("source")
        target = self.joint_embedding("target")
        return self.contrastive(source, target, source_index, target_index)
