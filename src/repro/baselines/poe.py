"""PoE baseline (Liu et al., ESWC 2019 "MMKG"): product-of-experts style fusion.

PoE represents each entity by concatenating the (projected) features of all
its modalities into a single vector — no graph neural network, no learned
modality weighting — and aligns with a seed-supervised contrastive loss.
This is the simplest multi-modal row of Table IV.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, l2_normalize
from ..core.task import PreparedTask
from .base import BaselineConfig, ModalBaselineModel

__all__ = ["PoE"]


class PoE(ModalBaselineModel):
    """Concatenation-of-modalities aligner without structural message passing."""

    name = "PoE"

    def __init__(self, task: PreparedTask, config: BaselineConfig | None = None):
        config = config or BaselineConfig(gnn="none")
        if config.gnn != "none":
            config = BaselineConfig(hidden_dim=config.hidden_dim,
                                    temperature=config.temperature, gnn="none",
                                    modalities=config.modalities, seed=config.seed,
                                    backend=config.backend)
        super().__init__(task, config)

    def joint_embedding(self, side: str) -> Tensor:
        modal = self.modal_embeddings(side)
        return Tensor.concat([l2_normalize(modal[m]) for m in self.config.modalities], axis=-1)

    def loss(self, source_index: np.ndarray, target_index: np.ndarray) -> Tensor:
        source = self.joint_embedding("source")
        target = self.joint_embedding("target")
        return self.contrastive(source, target, source_index, target_index)
