"""TransE baseline (Bordes et al., NeurIPS 2013) adapted to entity alignment.

Entities and relations of both graphs are embedded in a shared space with
the translation objective ``h + r ≈ t`` (margin ranking against corrupted
triples); seed alignments are additionally pulled together so that the two
graphs share the space, following the common TransE-for-EA recipe that the
paper uses as its weakest "basic model" row.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, no_grad
from ..core.compat import warn_legacy
from ..core.similarity import decode_similarity
from ..core.task import PreparedTask
from ..nn import Module, Parameter, init

__all__ = ["TransE"]


class TransE(Module):
    """Translation-based embedding aligner over both graphs' relation triples."""

    name = "TransE"

    def __init__(self, task: PreparedTask, hidden_dim: int = 32, margin: float = 1.0,
                 num_negatives: int = 2, alignment_weight: float = 1.0, seed: int = 0):
        super().__init__()
        self.task = task
        self.margin = margin
        self.num_negatives = num_negatives
        self.alignment_weight = alignment_weight
        rng = np.random.default_rng(seed)
        self._rng = rng
        self._seed = seed
        scale = 1.0 / np.sqrt(hidden_dim)
        self.source_entities = Parameter(
            rng.uniform(-scale, scale, size=(task.source.num_entities, hidden_dim)))
        self.target_entities = Parameter(
            rng.uniform(-scale, scale, size=(task.target.num_entities, hidden_dim)))
        self.source_relations = Parameter(
            rng.uniform(-scale, scale,
                        size=(max(1, task.pair.source.num_relations), hidden_dim)))
        self.target_relations = Parameter(
            rng.uniform(-scale, scale,
                        size=(max(1, task.pair.target.num_relations), hidden_dim)))
        self._source_triples = np.asarray(
            [[t.head, t.relation, t.tail] for t in task.pair.source.relation_triples]
            or np.empty((0, 3)), dtype=np.int64).reshape(-1, 3)
        self._target_triples = np.asarray(
            [[t.head, t.relation, t.tail] for t in task.pair.target.relation_triples]
            or np.empty((0, 3)), dtype=np.int64).reshape(-1, 3)

    # ------------------------------------------------------------------
    def _triple_loss(self, entities: Parameter, relations: Parameter,
                     triples: np.ndarray, max_triples: int = 256) -> Tensor:
        """Margin ranking loss on a sample of triples with corrupted tails."""
        if len(triples) == 0:
            return Tensor(0.0)
        if len(triples) > max_triples:
            sampled = triples[self._rng.choice(len(triples), size=max_triples, replace=False)]
        else:
            sampled = triples
        heads = entities.index_select(sampled[:, 0])
        rels = relations.index_select(sampled[:, 1])
        tails = entities.index_select(sampled[:, 2])
        corrupt_ids = self._rng.integers(0, entities.shape[0], size=len(sampled))
        corrupt = entities.index_select(corrupt_ids)
        positive = (heads + rels - tails).norm(axis=1)
        negative = (heads + rels - corrupt).norm(axis=1)
        return (positive - negative + self.margin).relu().mean()

    def loss(self, source_index: np.ndarray, target_index: np.ndarray) -> Tensor:
        structure = (self._triple_loss(self.source_entities, self.source_relations,
                                       self._source_triples)
                     + self._triple_loss(self.target_entities, self.target_relations,
                                         self._target_triples))
        aligned_source = self.source_entities.index_select(np.asarray(source_index))
        aligned_target = self.target_entities.index_select(np.asarray(target_index))
        alignment = (aligned_source - aligned_target).norm(axis=1).mean()
        return structure + alignment * self.alignment_weight

    def decode_states(self, use_propagation: bool = False, encode: str = "full",
                      encode_batch_size: int | None = None
                      ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Evaluation states feeding the decode (single round, entity tables).

        ``use_propagation`` is ignored (TransE has no propagation decoder),
        matching :meth:`similarity`.
        """
        del use_propagation
        if encode != "full":
            raise ValueError("TransE only supports encode='full'")
        with no_grad():
            return ([self.source_entities.numpy()], [self.target_entities.numpy()])

    def similarity(self, use_propagation: bool = False, decode: str = "auto",
                   k: int = 10, block_size: int | None = None,
                   candidates: str = "exhaustive", ann=None):
        if decode != "auto" or candidates != "exhaustive":
            warn_legacy(
                f"TransE.similarity(decode={decode!r}, candidates={candidates!r})",
                f"declare DecodeSpec(decode={decode!r}, candidates={candidates!r}) "
                "in PipelineSpec.decode and call Aligner.align() / "
                "Aligner.evaluate()")
        [source], [target] = self.decode_states()
        if candidates != "exhaustive":
            from ..core.ann import resolve_ann

            ann = resolve_ann(ann, self._seed)
        return decode_similarity(source, target, decode=decode, k=k,
                                 block_size=block_size, candidates=candidates,
                                 ann=ann)
