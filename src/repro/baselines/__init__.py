"""Baseline entity-alignment models re-implemented on the shared substrate.

The registry maps the model names used in the paper's tables to factory
callables accepting a :class:`~repro.core.task.PreparedTask`, so the
experiment harness can instantiate any row of any table uniformly.
"""

from __future__ import annotations

from ..core.model import DESAlign
from ..core.task import PreparedTask
from .base import BaselineConfig, ModalBaselineModel
from .eva import EVA
from .mclea import MCLEA
from .meaformer import MEAformer
from .gcn_align import GCNAlign
from .transe import TransE
from .poe import PoE

__all__ = [
    "BaselineConfig",
    "ModalBaselineModel",
    "EVA",
    "MCLEA",
    "MEAformer",
    "GCNAlign",
    "TransE",
    "PoE",
    "MODEL_REGISTRY",
    "build_model",
]

#: Name -> constructor for every aligner usable by the experiment harness.
MODEL_REGISTRY = {
    "TransE": TransE,
    "GCN-align": GCNAlign,
    "PoE": PoE,
    "EVA": EVA,
    "MCLEA": MCLEA,
    "MEAformer": MEAformer,
    "DESAlign": DESAlign,
}


def build_model(name: str, task: PreparedTask, **kwargs):
    """Instantiate a registered aligner by its paper-table name."""
    if name not in MODEL_REGISTRY:
        raise KeyError(f"unknown model {name!r}; registered: {sorted(MODEL_REGISTRY)}")
    return MODEL_REGISTRY[name](task, **kwargs)
