"""Baseline entity-alignment models re-implemented on the shared substrate.

Every aligner registers itself in the shared component registry
(:mod:`repro.core.registries`) under the model name used in the paper's
tables, together with a *spec builder* that adapts a declarative
:class:`~repro.pipeline.ModelSpec` to the model's own constructor — so the
experiment harness, the CLI and the :class:`~repro.pipeline.AlignmentPipeline`
facade can instantiate any row of any table uniformly, and downstream code
can plug new aligners in with one ``@register_model`` decoration.

``MODEL_REGISTRY`` / ``build_model`` are re-exported here for backward
compatibility; they are the registry itself.
"""

from __future__ import annotations

import inspect

from ..core.config import DESAlignConfig
from ..core.model import DESAlign
from ..core.registries import MODEL_REGISTRY, build_model, register_model
from ..core.task import PreparedTask
from .base import BaselineConfig, ModalBaselineModel
from .eva import EVA
from .mclea import MCLEA
from .meaformer import MEAformer
from .gcn_align import GCNAlign
from .transe import TransE
from .poe import PoE

__all__ = [
    "BaselineConfig",
    "ModalBaselineModel",
    "EVA",
    "MCLEA",
    "MEAformer",
    "GCNAlign",
    "TransE",
    "PoE",
    "MODEL_REGISTRY",
    "build_model",
    "register_model",
]


def _transe_from_spec(task: PreparedTask, hidden_dim: int, seed: int, options: dict):
    return TransE(task, hidden_dim=hidden_dim, seed=seed, **options)


def _desalign_from_spec(task: PreparedTask, hidden_dim: int, seed: int, options: dict):
    return DESAlign(task, DESAlignConfig(hidden_dim=hidden_dim, seed=seed, **options))


#: BaselineConfig's keyword surface (minus the ModelSpec-owned fields):
#: spec options matching these go into the config, the rest are forwarded
#: to the model constructor (e.g. MCLEA's modal_loss_weight).
_CONFIG_FIELDS = (set(inspect.signature(BaselineConfig.__init__).parameters)
                  - {"self", "hidden_dim", "seed"})


def _modal_baseline_from_spec(model_cls, **config_defaults):
    """Spec builder for the ModalBaselineModel family.

    ``config_defaults`` reproduce the model's own no-config defaults (e.g.
    MCLEA and MEAformer default to a GAT structure channel), so a bare
    ``ModelSpec(name=...)`` builds exactly what ``model_cls(task)`` builds.
    """
    def build(task: PreparedTask, hidden_dim: int, seed: int, options: dict):
        merged = {**config_defaults, **options}
        config_kwargs = {key: merged.pop(key) for key in list(merged)
                         if key in _CONFIG_FIELDS}
        config = BaselineConfig(hidden_dim=hidden_dim, seed=seed, **config_kwargs)
        return model_cls(task, config, **merged)
    return build


# Registration order fixes the registry's (insertion) ordering used by the
# CLI's --model listing: basic models first, DESAlign last, as in Table IV.
register_model("TransE", spec_builder=_transe_from_spec)(TransE)
# GCN-align and EVA fuse row-independently through joint_from_modal, so
# the neighbour-sampled training/inference path is exact for them.
register_model("GCN-align", spec_builder=_modal_baseline_from_spec(GCNAlign),
               supports_sampling=True)(GCNAlign)
register_model("PoE", spec_builder=_modal_baseline_from_spec(PoE))(PoE)
register_model("EVA", spec_builder=_modal_baseline_from_spec(EVA),
               supports_sampling=True)(EVA)
register_model("MCLEA",
               spec_builder=_modal_baseline_from_spec(MCLEA, gnn="gat"))(MCLEA)
register_model("MEAformer",
               spec_builder=_modal_baseline_from_spec(MEAformer, gnn="gat"))(MEAformer)
register_model("DESAlign", spec_builder=_desalign_from_spec,
               supports_sampling=True)(DESAlign)
