"""Reproduction of DESAlign (ICDE 2024): Dirichlet Energy Driven Robust
Multi-Modal Entity Alignment.

The public API is organised in layers:

* :mod:`repro.autograd` / :mod:`repro.nn` — numpy autodiff and NN substrate,
* :mod:`repro.kg` / :mod:`repro.data` — multi-modal KG structures, synthetic
  benchmark datasets and modal feature construction,
* :mod:`repro.core` — the DESAlign model, MMSL objective, Semantic
  Propagation and the shared training loop,
* :mod:`repro.baselines` — EVA, MCLEA, MEAformer and simpler baselines,
* :mod:`repro.eval` / :mod:`repro.experiments` — metrics and the per
  table/figure experiment harness.

Quickstart (the declarative pipeline API, see :mod:`repro.pipeline`)::

    from repro import AlignmentPipeline, DataSpec, PipelineSpec

    spec = PipelineSpec(data=DataSpec(dataset="FBDB15K", seed_ratio=0.2))
    aligner = AlignmentPipeline.from_spec(spec).fit()
    print(aligner.metrics)
    aligner.save("artifacts/run")
"""

from .core import (
    DESAlign,
    DESAlignConfig,
    TrainingConfig,
    Trainer,
    TrainingResult,
    SemanticPropagation,
    prepare_task,
    PreparedTask,
)
from .data import load_benchmark, benchmark_suite, SyntheticPairConfig, generate_pair
from .eval import AlignmentMetrics, evaluate_alignment, Evaluator
from .kg import MultiModalKG, KGPair, AlignmentPair
from .pipeline import (
    Aligner,
    AlignmentPipeline,
    DataSpec,
    DecodeSpec,
    ModelSpec,
    PipelineSpec,
    register_candidate_generator,
    register_model,
    register_training_loop,
)

__version__ = "1.0.0"

__all__ = [
    "DESAlign",
    "DESAlignConfig",
    "TrainingConfig",
    "Trainer",
    "TrainingResult",
    "SemanticPropagation",
    "prepare_task",
    "PreparedTask",
    "load_benchmark",
    "benchmark_suite",
    "SyntheticPairConfig",
    "generate_pair",
    "AlignmentMetrics",
    "evaluate_alignment",
    "Evaluator",
    "MultiModalKG",
    "KGPair",
    "AlignmentPair",
    "AlignmentPipeline",
    "Aligner",
    "PipelineSpec",
    "DataSpec",
    "ModelSpec",
    "DecodeSpec",
    "register_model",
    "register_training_loop",
    "register_candidate_generator",
    "__version__",
]
