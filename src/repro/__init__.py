"""Reproduction of DESAlign (ICDE 2024): Dirichlet Energy Driven Robust
Multi-Modal Entity Alignment.

The public API is organised in layers:

* :mod:`repro.autograd` / :mod:`repro.nn` — numpy autodiff and NN substrate,
* :mod:`repro.kg` / :mod:`repro.data` — multi-modal KG structures, synthetic
  benchmark datasets and modal feature construction,
* :mod:`repro.core` — the DESAlign model, MMSL objective, Semantic
  Propagation and the shared training loop,
* :mod:`repro.baselines` — EVA, MCLEA, MEAformer and simpler baselines,
* :mod:`repro.eval` / :mod:`repro.experiments` — metrics and the per
  table/figure experiment harness.

Quickstart::

    from repro import load_benchmark, prepare_task, DESAlign, Trainer

    pair = load_benchmark("FBDB15K", seed_ratio=0.2)
    task = prepare_task(pair)
    model = DESAlign(task)
    result = Trainer(model, task).fit()
    print(result.metrics)
"""

from .core import (
    DESAlign,
    DESAlignConfig,
    TrainingConfig,
    Trainer,
    TrainingResult,
    SemanticPropagation,
    prepare_task,
    PreparedTask,
)
from .data import load_benchmark, benchmark_suite, SyntheticPairConfig, generate_pair
from .eval import AlignmentMetrics, evaluate_alignment, Evaluator
from .kg import MultiModalKG, KGPair, AlignmentPair

__version__ = "1.0.0"

__all__ = [
    "DESAlign",
    "DESAlignConfig",
    "TrainingConfig",
    "Trainer",
    "TrainingResult",
    "SemanticPropagation",
    "prepare_task",
    "PreparedTask",
    "load_benchmark",
    "benchmark_suite",
    "SyntheticPairConfig",
    "generate_pair",
    "AlignmentMetrics",
    "evaluate_alignment",
    "Evaluator",
    "MultiModalKG",
    "KGPair",
    "AlignmentPair",
    "__version__",
]
