"""Command-line interface for the DESAlign reproduction.

Three sub-commands cover the common workflows without writing any Python:

``python -m repro.cli train``
    Train one aligner (DESAlign or a baseline) on a benchmark split and
    print its test metrics.

``python -m repro.cli experiment``
    Run one of the registered table/figure experiments at a chosen scale and
    print (and optionally save) the regenerated table.

``python -m repro.cli datasets``
    List the benchmark presets and the 60-split evaluation suite.
"""

from __future__ import annotations

import argparse
import sys

from .baselines import MODEL_REGISTRY
from .data.benchmarks import ALL_DATASETS, benchmark_suite
from .experiments import ExperimentScale, list_experiments, run_experiment
from .experiments.runner import build_task, run_cell

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of DESAlign (ICDE 2024): training, experiments, datasets.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    train = subparsers.add_parser("train", help="train one aligner on one benchmark split")
    train.add_argument("--model", default="DESAlign", choices=sorted(MODEL_REGISTRY))
    train.add_argument("--dataset", default="FBDB15K", choices=ALL_DATASETS)
    train.add_argument("--seed-ratio", type=float, default=None)
    train.add_argument("--image-ratio", type=float, default=None)
    train.add_argument("--text-ratio", type=float, default=None)
    train.add_argument("--entities", type=int, default=100)
    train.add_argument("--epochs", type=int, default=80)
    train.add_argument("--iterative", action="store_true")
    train.add_argument("--candidates", default="exhaustive",
                       choices=["exhaustive", "ivf", "lsh"],
                       help="decode candidate generation (ivf/lsh = approximate, "
                            "sub-quadratic FLOPs)")
    train.add_argument("--seed", type=int, default=0)

    experiment = subparsers.add_parser(
        "experiment", help="regenerate one of the paper's tables or figures")
    experiment.add_argument("experiment_id",
                            choices=[key for key, _ in list_experiments()])
    experiment.add_argument("--entities", type=int, default=100)
    experiment.add_argument("--epochs", type=int, default=60)
    experiment.add_argument("--seed", type=int, default=0)
    experiment.add_argument("--output", default=None,
                            help="optional path for a JSON copy of the results")

    subparsers.add_parser("datasets", help="list benchmark presets and the 60-split suite")
    return parser


def _command_train(args: argparse.Namespace) -> int:
    scale = ExperimentScale(num_entities=args.entities, epochs=args.epochs, seed=args.seed)
    task = build_task(args.dataset, scale, seed_ratio=args.seed_ratio,
                      image_ratio=args.image_ratio, text_ratio=args.text_ratio)
    overrides = ({"candidates": args.candidates}
                 if args.candidates != "exhaustive" else None)
    result = run_cell(args.model, task, scale, iterative=args.iterative,
                      training_overrides=overrides)
    print(f"model={args.model} dataset={args.dataset} "
          f"seeds={len(task.train_pairs)} test={len(task.test_pairs)}")
    print(f"metrics: {result.metrics}")
    print(f"train time: {result.train_seconds:.1f}s, parameters: {result.num_parameters}")
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    scale = ExperimentScale(num_entities=args.entities, epochs=args.epochs, seed=args.seed)
    result = run_experiment(args.experiment_id, scale=scale)
    print(result.to_table())
    if args.output:
        result.to_json(args.output)
        print(f"\nsaved JSON results to {args.output}")
    return 0


def _command_datasets() -> int:
    print("Benchmark presets:")
    for dataset in ALL_DATASETS:
        print(f"  {dataset}")
    suite = benchmark_suite()
    print(f"\nEvaluation suite ({len(suite)} splits):")
    for split in suite:
        print(f"  {split.identifier}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "train":
        return _command_train(args)
    if args.command == "experiment":
        return _command_experiment(args)
    if args.command == "datasets":
        return _command_datasets()
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
