"""Command-line interface for the DESAlign reproduction.

Five sub-commands cover the common workflows without writing any Python:

``python -m repro.cli train``
    Train one aligner (DESAlign or a baseline) on a benchmark split and
    print its test metrics (a shorthand for ``run`` with an inline spec).

``python -m repro.cli run --config spec.json``
    Run a declarative pipeline spec end to end; optionally save the fitted
    alignment artifact and a JSON metrics file.

``python -m repro.cli align --artifact DIR``
    Load a saved alignment artifact and emit top-k aligned pairs as JSON
    or TSV — no retraining, bit-identical to the decode at save time.

``python -m repro.cli serve --artifact DIR``
    Serve a saved artifact long-lived over a stdin/stdout JSON-lines
    protocol: micro-batched concurrent ranking, LRU result caching and
    graceful artifact hot-swap (see :mod:`repro.serve`).

``python -m repro.cli experiment``
    Run one of the registered table/figure experiments at a chosen scale and
    print (and optionally save) the regenerated table.

``python -m repro.cli robustness``
    Sweep corruption type x severity across the model zoo (declarative
    :class:`~repro.pipeline.PerturbationSpec` injection) and print the
    degradation summary; ``--fast`` smokes a tiny grid.

``python -m repro.cli ingest --artifact DIR --delta FILE``
    Fold a JSON delta batch (new entities/triples/features/seed pairs)
    into a saved artifact without a re-fit: warm-start encoding over the
    delta's receptive field, online IVF inserts and a selective re-decode
    (see :mod:`repro.incremental`).

``python -m repro.cli datasets``
    List the benchmark presets and the 60-split evaluation suite.
"""

from __future__ import annotations

import argparse
import json
import sys

from .baselines import MODEL_REGISTRY
from .data.benchmarks import ALL_DATASETS, benchmark_suite
from .experiments import (CORRUPTIONS, DEFAULT_CORRUPTIONS, ROBUSTNESS_MODELS,
                          ExperimentScale, list_experiments, run_experiment,
                          run_robustness)
from .pipeline import Aligner, AlignmentPipeline, DataSpec, ModelSpec, PipelineSpec

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of DESAlign (ICDE 2024): training, experiments, datasets.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    train = subparsers.add_parser("train", help="train one aligner on one benchmark split")
    train.add_argument("--model", default="DESAlign", choices=sorted(MODEL_REGISTRY))
    train.add_argument("--dataset", default="FBDB15K", choices=ALL_DATASETS)
    train.add_argument("--seed-ratio", type=float, default=None)
    train.add_argument("--image-ratio", type=float, default=None)
    train.add_argument("--text-ratio", type=float, default=None)
    train.add_argument("--entities", type=int, default=100)
    train.add_argument("--epochs", type=int, default=80)
    train.add_argument("--iterative", action="store_true")
    train.add_argument("--candidates", default="exhaustive",
                       choices=["exhaustive", "ivf", "lsh"],
                       help="decode candidate generation (ivf/lsh = approximate, "
                            "sub-quadratic FLOPs)")
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--save", default=None, metavar="DIR",
                       help="optional directory for the fitted alignment artifact")

    run = subparsers.add_parser(
        "run", help="run a declarative pipeline spec (JSON) end to end")
    run.add_argument("--config", required=True,
                     help="path to a PipelineSpec JSON file")
    run.add_argument("--save", default=None, metavar="DIR",
                     help="optional directory for the fitted alignment artifact")
    run.add_argument("--output", default=None,
                     help="optional path for a JSON copy of the test metrics")

    align = subparsers.add_parser(
        "align", help="decode top-k aligned pairs from a saved artifact")
    align.add_argument("--artifact", required=True,
                       help="directory written by Aligner.save / run --save")
    align.add_argument("--k", type=int, default=None,
                       help="neighbours per source entity (default: the spec's k)")
    align.add_argument("--entities", default=None,
                       help="comma-separated source entity ids (default: all)")
    align.add_argument("--format", choices=["json", "tsv"], default="json")
    align.add_argument("--num-workers", type=int, default=None,
                       help="decode worker processes for the sharded "
                            "blockwise decode (default: the spec's setting)")
    align.add_argument("--output", default=None,
                       help="write the pairs here instead of stdout")

    serve = subparsers.add_parser(
        "serve", help="serve a saved artifact over a stdin/stdout JSON protocol")
    serve.add_argument("--artifact", required=True,
                       help="directory written by Aligner.save / run --save")
    serve.add_argument("--no-mmap", action="store_true",
                       help="load decode payloads into memory instead of "
                            "memory-mapping them read-only")
    serve.add_argument("--batch-window", type=float, default=0.002,
                       help="seconds the micro-batcher waits to coalesce "
                            "concurrent requests (default 0.002)")
    serve.add_argument("--max-batch", type=int, default=64,
                       help="max entity rows per coalesced batch (default 64)")
    serve.add_argument("--pool-size", type=int, default=2,
                       help="decode worker threads (default 2)")
    serve.add_argument("--queue-size", type=int, default=128,
                       help="bounded work-queue depth; full = structured "
                            "'overloaded' errors (default 128)")
    serve.add_argument("--cache-size", type=int, default=4096,
                       help="result-cache entries (default 4096)")
    serve.add_argument("--cache-admission", choices=["frequency", "lru"],
                       default="frequency",
                       help="cache admission policy: 'frequency' gates "
                            "inserts through a TinyLFU-style sketch so "
                            "one-shot churn cannot evict the hot set; "
                            "'lru' admits everything (default frequency)")
    serve.add_argument("--num-workers", type=int, default=None,
                       help="decode worker processes for full-table decodes "
                            "(default: the spec's setting)")
    serve.add_argument("--timeout", type=float, default=30.0,
                       help="default per-request deadline in seconds "
                            "(default 30)")
    faults = serve.add_argument_group(
        "fault injection", "seeded faults on the decode path (testing / "
        "chaos drills; all off by default)")
    faults.add_argument("--fault-decode-failure-rate", type=float, default=0.0,
                        help="probability a decode raises a structured "
                             "injected error instead of running")
    faults.add_argument("--fault-code", default="internal",
                        help="error code injected decode failures carry "
                             "(default internal; try overloaded/timeout "
                             "to exercise client retries)")
    faults.add_argument("--fault-latency", type=float, default=0.0,
                        help="seconds of injected latency before a decode")
    faults.add_argument("--fault-latency-rate", type=float, default=1.0,
                        help="probability the latency fires (default 1.0)")
    faults.add_argument("--fault-worker-death-rate", type=float, default=0.0,
                        help="probability a batch kills its worker thread "
                             "(the pool respawns a replacement)")
    faults.add_argument("--fault-seed", type=int, default=0,
                        help="seed of the fault schedule (default 0)")

    robustness = subparsers.add_parser(
        "robustness",
        help="sweep corruption type x severity across the model zoo")
    robustness.add_argument("--fast", action="store_true",
                            help="tiny smoke grid (one corruption, two "
                                 "severities, two models, short training)")
    robustness.add_argument("--dataset", default="FBDB15K", choices=ALL_DATASETS)
    robustness.add_argument("--corruptions", default=None,
                            help="comma-separated corruption axes "
                                 f"(default {','.join(DEFAULT_CORRUPTIONS)}; "
                                 f"available: {','.join(CORRUPTIONS)})")
    robustness.add_argument("--severities", default=None,
                            help="comma-separated severities in [0,1] "
                                 "(default 0.0,0.3,0.6; 0.0 is the bit-exact "
                                 "clean baseline)")
    robustness.add_argument("--models", default=None,
                            help="comma-separated registered models "
                                 f"(default {','.join(ROBUSTNESS_MODELS)})")
    robustness.add_argument("--entities", type=int, default=100)
    robustness.add_argument("--epochs", type=int, default=60)
    robustness.add_argument("--seed", type=int, default=0)
    robustness.add_argument("--output", default=None, metavar="PATH.json",
                            help="write the sweep as JSON here and the "
                                 "rendered table beside it as PATH.txt")

    experiment = subparsers.add_parser(
        "experiment", help="regenerate one of the paper's tables or figures")
    experiment.add_argument("experiment_id",
                            choices=[key for key, _ in list_experiments()])
    experiment.add_argument("--entities", type=int, default=100)
    experiment.add_argument("--epochs", type=int, default=60)
    experiment.add_argument("--seed", type=int, default=0)
    experiment.add_argument("--output", default=None,
                            help="optional path for a JSON copy of the results")

    ingest = subparsers.add_parser(
        "ingest", help="fold a JSON delta batch into a saved artifact "
                       "(warm-start incremental update, no re-fit)")
    ingest.add_argument("--artifact", required=True,
                        help="directory written by Aligner.save / run --save")
    ingest.add_argument("--delta", required=True,
                        help="JSON delta batch (see repro.incremental.DeltaBatch)")
    ingest.add_argument("--out", default=None, metavar="DIR",
                        help="directory for the updated artifact "
                             "(default: <artifact>-updated)")

    subparsers.add_parser("datasets", help="list benchmark presets and the 60-split suite")
    return parser


def _train_spec(args: argparse.Namespace) -> PipelineSpec:
    """The spec equivalent of the ``train`` sub-command's flag surface."""
    scale = ExperimentScale(num_entities=args.entities, epochs=args.epochs,
                            seed=args.seed)
    training = scale.training_config(iterative=args.iterative)
    if args.candidates != "exhaustive":
        training = training.with_overrides(candidates=args.candidates)
    return PipelineSpec(
        data=scale.data_spec(args.dataset, seed_ratio=args.seed_ratio,
                             image_ratio=args.image_ratio,
                             text_ratio=args.text_ratio),
        model=ModelSpec(name=args.model, hidden_dim=scale.hidden_dim),
        training=training,
    )


def _report_fit(aligner: Aligner, header: str) -> None:
    result = aligner.result
    print(header)
    print(f"metrics: {result.metrics}")
    print(f"train time: {result.train_seconds:.1f}s, "
          f"parameters: {result.num_parameters}")


def _command_train(args: argparse.Namespace) -> int:
    spec = _train_spec(args)
    aligner = AlignmentPipeline.from_spec(spec).fit()
    task = aligner.task
    _report_fit(aligner, f"model={args.model} dataset={args.dataset} "
                         f"seeds={len(task.train_pairs)} test={len(task.test_pairs)}")
    if args.save:
        directory = aligner.save(args.save)
        print(f"saved alignment artifact to {directory}")
    return 0


def _command_run(args: argparse.Namespace) -> int:
    pipeline = AlignmentPipeline.from_json_file(args.config)
    spec = pipeline.spec
    aligner = pipeline.fit()
    _report_fit(aligner, f"model={spec.model.name} dataset={spec.data.dataset} "
                         f"entities={spec.data.num_entities} "
                         f"sampling={spec.training.sampling} "
                         f"candidates={spec.decode.candidates}")
    if args.save:
        directory = aligner.save(args.save)
        print(f"saved alignment artifact to {directory}")
    if args.output:
        payload = {"spec": spec.to_dict(),
                   "metrics": aligner.result.as_dict()}
        with open(args.output, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"saved JSON metrics to {args.output}")
    return 0


def _with_num_workers(aligner: Aligner, num_workers: int | None) -> Aligner:
    """Apply a ``--num-workers`` override through ``with_decode``.

    Only the worker count changes, so every decode cache (states,
    candidates) carries over and the results stay bit-identical — the
    sharded decode is partition-invariant.
    """
    if num_workers is None:
        return aligner
    from dataclasses import replace

    return aligner.with_decode(replace(aligner.spec.decode,
                                       num_workers=num_workers))


def _command_align(args: argparse.Namespace) -> int:
    aligner = _with_num_workers(Aligner.load(args.artifact), args.num_workers)
    if args.entities:
        entity_ids = [int(token) for token in args.entities.split(",") if token]
        table = aligner.rank(entity_ids, k=args.k)
    else:
        table = aligner.align(k=args.k)
    if args.format == "tsv":
        rendered = table.to_tsv()
    else:
        rendered = json.dumps({"k": table.k, "approximate": table.approximate,
                               "alignments": table.to_records()}, indent=2)
        rendered += "\n"
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(rendered)
        print(f"wrote {len(table.source_ids)} alignment rows to {args.output}")
    else:
        sys.stdout.write(rendered)
    return 0


def _command_serve(args: argparse.Namespace, stdin=None, stdout=None) -> int:
    from .serve import FaultInjector, ServingEngine, ServingServer

    injector = None
    if (args.fault_decode_failure_rate > 0 or args.fault_latency > 0
            or args.fault_worker_death_rate > 0):
        injector = FaultInjector(
            decode_failure_rate=args.fault_decode_failure_rate,
            failure_code=args.fault_code,
            latency=args.fault_latency,
            latency_rate=args.fault_latency_rate,
            worker_death_rate=args.fault_worker_death_rate,
            seed=args.fault_seed)
        print(f"fault injection ON: {injector.stats()}", file=sys.stderr)
    aligner = _with_num_workers(
        Aligner.load(args.artifact, mmap=not args.no_mmap), args.num_workers)
    engine = ServingEngine(
        aligner,
        batch_window=args.batch_window, max_batch=args.max_batch,
        pool_size=args.pool_size, queue_size=args.queue_size,
        cache_size=args.cache_size, default_timeout=args.timeout,
        cache_admission=args.cache_admission, fault_injector=injector)
    server = ServingServer(engine)
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    print(f"serving artifact {args.artifact} "
          f"(generation {engine.generation}); one JSON request per line, "
          "op in rank|stats|swap|ping|shutdown", file=sys.stderr)
    server.serve_forever(stdin, stdout)
    return 0


def _command_robustness(args: argparse.Namespace) -> int:
    kwargs = {"dataset": args.dataset}
    if args.fast:
        scale = ExperimentScale(num_entities=min(args.entities, 40),
                                epochs=min(args.epochs, 8), seed=args.seed)
        kwargs.update(corruptions=("modality_dropout",),
                      severities=(0.0, 0.6), models=("EVA", "DESAlign"))
    else:
        scale = ExperimentScale(num_entities=args.entities,
                                epochs=args.epochs, seed=args.seed)
    if args.corruptions:
        kwargs["corruptions"] = tuple(
            token for token in args.corruptions.split(",") if token)
    if args.severities:
        kwargs["severities"] = tuple(
            float(token) for token in args.severities.split(",") if token)
    if args.models:
        kwargs["models"] = tuple(
            token for token in args.models.split(",") if token)
    result = run_robustness(scale=scale, **kwargs)
    print(result.to_table())
    print("\ndegradation (H@1):")
    for entry in result.parameters["degradation"]:
        print(f"  {entry['corruption']:>16s}  {entry['model']:<10s} "
              f"clean={entry['clean_H@1']:.1f} worst={entry['worst_H@1']:.1f} "
              f"drop={entry['drop_H@1']:.1f} "
              f"slope={entry['slope_H@1_per_severity']:.1f}")
    if args.output:
        result.to_json(args.output)
        text_path = args.output.rsplit(".", 1)[0] + ".txt"
        with open(text_path, "w", encoding="utf-8") as handle:
            handle.write(result.to_table() + "\n")
        print(f"\nsaved JSON results to {args.output} "
              f"and the table to {text_path}")
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    scale = ExperimentScale(num_entities=args.entities, epochs=args.epochs, seed=args.seed)
    result = run_experiment(args.experiment_id, scale=scale)
    print(result.to_table())
    if args.output:
        result.to_json(args.output)
        print(f"\nsaved JSON results to {args.output}")
    return 0


def _command_ingest(args: argparse.Namespace) -> int:
    from .incremental import DeltaBatch, IncrementalAligner

    out = args.out if args.out else args.artifact.rstrip("/") + "-updated"
    incremental = IncrementalAligner.from_artifact(args.artifact)
    report = incremental.ingest(DeltaBatch.load(args.delta), directory=out)
    payload = dict(report.to_dict(), artifact=out)
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def _command_datasets() -> int:
    print("Benchmark presets:")
    for dataset in ALL_DATASETS:
        print(f"  {dataset}")
    suite = benchmark_suite()
    print(f"\nEvaluation suite ({len(suite)} splits):")
    for split in suite:
        print(f"  {split.identifier}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "train":
        return _command_train(args)
    if args.command == "run":
        return _command_run(args)
    if args.command == "align":
        return _command_align(args)
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "robustness":
        return _command_robustness(args)
    if args.command == "experiment":
        return _command_experiment(args)
    if args.command == "ingest":
        return _command_ingest(args)
    if args.command == "datasets":
        return _command_datasets()
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
