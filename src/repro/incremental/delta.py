"""Delta ingestion: place-preserving extension of a prepared alignment task.

A :class:`DeltaBatch` describes a batch of *arriving* data — new entities,
new relation / attribute triples, new image features and newly revealed
seed pairs, per side.  :func:`apply_delta` folds one batch into an existing
:class:`~repro.core.task.PreparedTask` **place-preservingly**:

* every existing entity keeps its id, every CSR keeps its row order, and
  new entities are appended at the end of the id range;
* modal features are extended in place semantics: Bag-of-Words rows are
  recounted only where new triples touch them (counts are additive and
  deterministic, so untouched native rows stay bit-for-bit identical),
  rows that stay imputed keep their imputed values bit-for-bit, and new
  rows are built natively or imputed from the extended native
  distribution under the delta's own seeded generator;
* the train/test split is stable: the old split is carried over verbatim
  (new seed pairs extend the train side only — test pairs are never
  touched by ingestion).

The returned :class:`DeltaApplication` also reports the *directly touched*
existing rows per side — rows whose adjacency, features or modality masks
changed — which is the seed set the incremental aligner expands into the
warm-encode receptive field.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..core.task import PreparedSide, PreparedTask
from ..data.features import (ModalFeatureSet, bag_of_attributes,
                             bag_of_relations, visual_feature_matrix)
from ..kg.graph import AttributeTriple, MultiModalKG, RelationTriple
from ..kg.laplacian import graph_laplacian, normalized_adjacency
from ..kg.pair import AlignmentPair, KGPair
from ..kg.sparse import graph_laplacian_sparse, normalized_adjacency_sparse

__all__ = ["SideDelta", "DeltaBatch", "DeltaApplication", "apply_delta"]


@dataclass
class SideDelta:
    """Arriving data for one side of the alignment task.

    ``entity_names`` are appended to the graph (ids continue the existing
    range); triples may reference both old and new entities.  Relation /
    attribute ids beyond the current vocabulary grow it.  ``image_features``
    maps entity ids (old entities gaining a visual modality, or new ones)
    to their feature vectors.
    """

    entity_names: tuple = ()
    relation_triples: tuple = ()     # (head, relation, tail)
    attribute_triples: tuple = ()    # (entity, attribute, value)
    image_features: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.entity_names = tuple(str(name) for name in self.entity_names)
        self.relation_triples = tuple(
            (int(h), int(r), int(t)) for h, r, t in self.relation_triples)
        self.attribute_triples = tuple(
            (int(e), int(a), str(v)) for e, a, v in self.attribute_triples)
        self.image_features = {
            int(entity): np.asarray(vector, dtype=np.float64)
            for entity, vector in dict(self.image_features).items()}

    def is_empty(self) -> bool:
        return not (self.entity_names or self.relation_triples
                    or self.attribute_triples or self.image_features)

    def to_dict(self) -> dict:
        return {
            "entity_names": list(self.entity_names),
            "relation_triples": [list(t) for t in self.relation_triples],
            "attribute_triples": [list(t) for t in self.attribute_triples],
            "image_features": {str(entity): np.asarray(vector).tolist()
                               for entity, vector in self.image_features.items()},
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SideDelta":
        known = {"entity_names", "relation_triples", "attribute_triples",
                 "image_features"}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown key(s) {unknown} in a side delta; "
                             f"valid keys: {sorted(known)}")
        return cls(
            entity_names=payload.get("entity_names", ()),
            relation_triples=payload.get("relation_triples", ()),
            attribute_triples=payload.get("attribute_triples", ()),
            image_features={int(k): v for k, v in
                            payload.get("image_features", {}).items()},
        )


@dataclass
class DeltaBatch:
    """One batch of arriving entities/triples/features/seed pairs.

    ``seed_pairs`` are newly revealed gold correspondences (source id,
    target id); they extend the *train* split only.
    """

    source: SideDelta = field(default_factory=SideDelta)
    target: SideDelta = field(default_factory=SideDelta)
    seed_pairs: tuple = ()

    def __post_init__(self) -> None:
        if not isinstance(self.source, SideDelta):
            self.source = SideDelta.from_dict(dict(self.source))
        if not isinstance(self.target, SideDelta):
            self.target = SideDelta.from_dict(dict(self.target))
        self.seed_pairs = tuple((int(s), int(t)) for s, t in self.seed_pairs)

    def is_empty(self) -> bool:
        return (self.source.is_empty() and self.target.is_empty()
                and not self.seed_pairs)

    def to_dict(self) -> dict:
        return {
            "source": self.source.to_dict(),
            "target": self.target.to_dict(),
            "seed_pairs": [list(p) for p in self.seed_pairs],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "DeltaBatch":
        known = {"source", "target", "seed_pairs"}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown key(s) {unknown} in a delta batch; "
                             f"valid keys: {sorted(known)}")
        return cls(
            source=SideDelta.from_dict(payload.get("source", {})),
            target=SideDelta.from_dict(payload.get("target", {})),
            seed_pairs=payload.get("seed_pairs", ()),
        )

    def save(self, path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True)
                        + "\n")
        return path

    @classmethod
    def load(cls, path) -> "DeltaBatch":
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as error:
            raise ValueError(f"delta file {path} is not valid JSON: "
                             f"{error}") from error
        return cls.from_dict(payload)


@dataclass
class DeltaApplication:
    """The extended task plus the bookkeeping incremental encoding needs."""

    task: PreparedTask
    num_source_before: int
    num_target_before: int
    new_source_ids: np.ndarray
    new_target_ids: np.ndarray
    #: Existing rows whose adjacency, features or masks changed directly.
    touched_source: np.ndarray
    touched_target: np.ndarray

    def seed_rows(self, side: str) -> np.ndarray:
        """New rows plus directly-touched existing rows of one side."""
        if side == "source":
            return np.union1d(self.new_source_ids, self.touched_source)
        return np.union1d(self.new_target_ids, self.touched_target)


# ---------------------------------------------------------------------------
# Graph / feature extension
# ---------------------------------------------------------------------------
def _extend_graph(graph: MultiModalKG, delta: SideDelta) -> MultiModalKG:
    """Append the delta to one graph; existing ids are untouched."""
    num_new = graph.num_entities + len(delta.entity_names)
    for head, _, tail in delta.relation_triples:
        if not (0 <= head < num_new and 0 <= tail < num_new):
            raise ValueError(
                f"delta relation triple ({head}, _, {tail}) references an "
                f"entity outside the extended range [0, {num_new})")
    for entity, _, _ in delta.attribute_triples:
        if not 0 <= entity < num_new:
            raise ValueError(
                f"delta attribute triple references entity {entity} outside "
                f"the extended range [0, {num_new})")
    for entity in delta.image_features:
        if not 0 <= entity < num_new:
            raise ValueError(
                f"delta image feature references entity {entity} outside "
                f"the extended range [0, {num_new})")
    num_relations = max([graph.num_relations]
                        + [r + 1 for _, r, _ in delta.relation_triples])
    num_attributes = max([graph.num_attributes]
                         + [a + 1 for _, a, _ in delta.attribute_triples])
    images = dict(graph.image_features)
    images.update(delta.image_features)
    return MultiModalKG(
        entity_names=list(graph.entity_names) + list(delta.entity_names),
        num_relations=num_relations,
        num_attributes=num_attributes,
        relation_triples=(list(graph.relation_triples)
                          + [RelationTriple(h, r, t)
                             for h, r, t in delta.relation_triples]),
        attribute_triples=(list(graph.attribute_triples)
                           + [AttributeTriple(e, a, v)
                              for e, a, v in delta.attribute_triples]),
        image_features=images,
        name=graph.name,
    )


def _extend_features(old: ModalFeatureSet, new_graph: MultiModalKG,
                     dims: dict, rng: np.random.Generator
                     ) -> tuple[ModalFeatureSet, np.ndarray]:
    """Extend one side's modal features place-preservingly.

    Returns the extended feature set and a boolean mask over the *old*
    rows marking those whose features or masks changed.  Bag-of-Words
    counts are deterministic and additive, so recounting over the extended
    graph reproduces untouched native rows bit-for-bit; rows that stay
    imputed keep their stored imputed values bit-for-bit (re-imputing them
    would re-draw the random fill and invalidate the whole side).
    """
    num_old = old.num_entities
    num_new = new_graph.num_entities
    masks_new = new_graph.modality_mask()
    vision_raw, vision_mask = visual_feature_matrix(new_graph, dims["vision"])
    fresh = {
        "relation": (bag_of_relations(new_graph, dims["relation"]),
                     masks_new["relation"]),
        "attribute": (bag_of_attributes(new_graph, dims["attribute"]),
                      masks_new["attribute"]),
        "vision": (vision_raw, vision_mask),
    }

    changed = np.zeros(num_old, dtype=bool)
    features: dict[str, np.ndarray] = {}
    masks: dict[str, np.ndarray] = {}

    # Structural features: existing rows carry over verbatim, new rows get
    # the same N(0, 0.3) initialisation build_feature_set uses — drawn from
    # the delta's own generator so the old rows' stream is never replayed.
    structure = np.empty((num_new, dims["graph"]))
    structure[:num_old] = old.features["graph"]
    structure[num_old:] = rng.normal(0.0, 0.3,
                                     size=(num_new - num_old, dims["graph"]))
    features["graph"] = structure
    masks["graph"] = masks_new["graph"]

    for modality, (raw, mask) in fresh.items():
        old_mask = old.masks[modality]
        filled = np.asarray(raw, dtype=np.float64).copy()
        still_imputed = ~old_mask & ~mask[:num_old]
        filled[:num_old][still_imputed] = old.features[modality][still_imputed]
        to_impute = ~mask
        to_impute[:num_old] &= ~still_imputed
        if to_impute.any():
            # Same random_from_distribution rule as build_feature_set,
            # against the extended native population.
            if mask.any():
                mean = filled[mask].mean(axis=0)
                std = filled[mask].std(axis=0) + 1e-8
            else:
                mean = np.zeros(filled.shape[1])
                std = np.ones(filled.shape[1])
            filled[to_impute] = rng.normal(
                mean, std, size=(int(to_impute.sum()), filled.shape[1]))
        features[modality] = filled
        masks[modality] = mask
        changed |= np.any(filled[:num_old] != old.features[modality], axis=1)
        changed |= mask[:num_old] != old_mask

    return (ModalFeatureSet(features=features, masks=masks, graph=new_graph),
            changed)


def _prepare_side(graph: MultiModalKG, features: ModalFeatureSet,
                  backend: str) -> PreparedSide:
    """Rebuild one side's matrices from the extended graph (prepare_task's
    construction, row order stable by the positional-id invariant)."""
    if backend == "sparse":
        adjacency = graph.adjacency_matrix(sparse=True)
        normalized = normalized_adjacency_sparse(adjacency)
        laplacian = graph_laplacian_sparse(adjacency)
    else:
        adjacency = graph.adjacency_matrix()
        normalized = normalized_adjacency(adjacency)
        laplacian = graph_laplacian(adjacency)
    return PreparedSide(features=features, adjacency=adjacency,
                        normalized_adjacency=normalized,
                        laplacian=laplacian, backend=backend)


def apply_delta(task: PreparedTask, delta: DeltaBatch,
                seed: int = 0) -> DeltaApplication:
    """Fold one delta batch into a prepared task, place-preservingly.

    The input task is never mutated; the returned application holds a new
    :class:`~repro.core.task.PreparedTask` over extended copies of both
    graphs.  ``seed`` drives the delta's own feature generator (new-row
    structure init and imputation draws) — existing rows never consume
    from it, so an empty delta reproduces the input bit-for-bit.
    """
    pair = task.pair
    rng = np.random.default_rng(seed)
    num_source_before = pair.source.num_entities
    num_target_before = pair.target.num_entities

    source_graph = _extend_graph(pair.source, delta.source)
    target_graph = _extend_graph(pair.target, delta.target)

    source_features, source_feature_changed = _extend_features(
        task.source.features, source_graph, task.feature_dims, rng)
    target_features, target_feature_changed = _extend_features(
        task.target.features, target_graph, task.feature_dims, rng)

    # Existing rows whose adjacency changed: endpoints of new relation
    # triples (the adjacency is symmetric, so both ends gain a column).
    def _adjacency_touched(side_delta: SideDelta, num_before: int) -> np.ndarray:
        endpoints = [e for h, _, t in side_delta.relation_triples
                     for e in (h, t) if e < num_before]
        return np.unique(np.asarray(endpoints, dtype=np.int64))

    touched_source = np.union1d(
        _adjacency_touched(delta.source, num_source_before),
        np.flatnonzero(source_feature_changed))
    touched_target = np.union1d(
        _adjacency_touched(delta.target, num_target_before),
        np.flatnonzero(target_feature_changed))

    # Split stability: carry the old split over verbatim; new seed pairs
    # extend the train side only.  KGPair.split() returns the cached lists
    # whenever they are non-empty, so the extended pair never re-shuffles.
    train, test = pair.split()
    new_seed_pairs = [AlignmentPair(s, t) for s, t in delta.seed_pairs]
    new_pair = KGPair(
        source=source_graph,
        target=target_graph,
        alignments=list(pair.alignments) + new_seed_pairs,
        seed_ratio=pair.seed_ratio,
        name=pair.name,
        _train=list(train) + new_seed_pairs,
        _test=list(test),
    )

    train_pairs = (np.concatenate([
        task.train_pairs.reshape(-1, 2),
        np.asarray([[p.source, p.target] for p in new_seed_pairs],
                   dtype=np.int64).reshape(-1, 2)])
        if new_seed_pairs else task.train_pairs)

    new_task = PreparedTask(
        pair=new_pair,
        source=_prepare_side(source_graph, source_features, task.backend),
        target=_prepare_side(target_graph, target_features, task.backend),
        train_pairs=np.asarray(train_pairs, dtype=np.int64),
        test_pairs=task.test_pairs,
        feature_dims=dict(task.feature_dims),
    )
    return DeltaApplication(
        task=new_task,
        num_source_before=num_source_before,
        num_target_before=num_target_before,
        new_source_ids=np.arange(num_source_before,
                                 source_graph.num_entities, dtype=np.int64),
        new_target_ids=np.arange(num_target_before,
                                 target_graph.num_entities, dtype=np.int64),
        touched_source=touched_source.astype(np.int64),
        touched_target=touched_target.astype(np.int64),
    )
