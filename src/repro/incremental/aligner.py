"""Warm-start incremental alignment over a fitted artifact.

:class:`IncrementalAligner` wraps a fitted :class:`~repro.pipeline.Aligner`
and folds :class:`~repro.incremental.DeltaBatch` es into it without a
re-fit.  One :meth:`ingest` runs the delta lifecycle:

1. **apply_delta** extends the task place-preservingly (existing ids and
   CSR row orders stable, new rows appended);
2. **warm encode**: the fitted model's parameters are reused — only the
   structural embedding tables grow by freshly initialised rows — and the
   model's :class:`~repro.kg.sampling.NeighbourSampler` re-encodes just
   the delta's receptive field (new rows plus existing rows within the
   fanout horizon of any touched row);
3. **IVF insert**: new target vectors are bucketed by nearest centroid
   through :meth:`~repro.core.ann.IVFIndex.insert` (moved vectors are
   re-assigned in place); a staleness counter triggers periodic
   re-quantisation via subsampled k-means warm-started from the current
   centroids;
4. **selective re-decode**: top-k rows are recomputed only where the
   candidate sets changed (new rows, rows whose states moved, rows whose
   IVF buckets gained or lost members) and merged into the cached decode
   table with the sharded-decode :func:`~repro.core.similarity.merge_partials`
   reducer;
5. the result is a fresh :class:`~repro.pipeline.Aligner` (optionally
   persisted with :meth:`~repro.pipeline.Aligner.save`) ready for the
   serving engine's prewarm–drain–swap promotion.

A zero-sized delta is a bit-exact no-op: the current aligner is returned
untouched.  Work is proportional to the delta — the per-ingest counters
(``rows_encoded`` / ``rows_decoded``) expose exactly how many rows each
stage recomputed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from pathlib import Path

import numpy as np

from ..autograd import no_grad
from ..core.ann import (GroupedRowCandidates, IVFIndex, RowCandidates,
                        _concat_states, _flat_bucket_positions,
                        _normalize_rows, resolve_ann)
from ..core.config import DEFAULT_ENCODE_BATCH
from ..core.similarity import (DEFAULT_BLOCK_SIZE, PartialTopK,
                               TopKSimilarity, compute_partial_topk_candidates,
                               merge_partials)
from ..nn import Parameter
from ..pipeline.facade import Aligner
from ..pipeline.spec import CUSTOM_DATASET, DeltaSpec
from .delta import DeltaBatch, apply_delta

__all__ = ["IncrementalAligner", "IngestReport"]


@dataclass
class IngestReport:
    """What one :meth:`IncrementalAligner.ingest` did, and at what cost."""

    aligner: Aligner
    generation: int
    seconds: float
    num_new_source: int = 0
    num_new_target: int = 0
    #: Rows whose evaluation embedding was recomputed (both sides).
    rows_encoded: int = 0
    #: Source rows whose top-k entry was recomputed.
    rows_decoded: int = 0
    refit: bool = False
    noop: bool = False

    def to_dict(self) -> dict:
        return {
            "generation": self.generation,
            "seconds": self.seconds,
            "num_new_source": self.num_new_source,
            "num_new_target": self.num_new_target,
            "rows_encoded": self.rows_encoded,
            "rows_decoded": self.rows_decoded,
            "refit": self.refit,
            "noop": self.noop,
        }


def _rebuild_buckets(index: IVFIndex) -> None:
    """Rebuild the bucket CSR after in-place assignment changes.

    The stable argsort keeps ids ascending within every bucket — the same
    ordering ``IVFIndex.__init__`` and ``insert`` establish, so candidate
    tie semantics are preserved.
    """
    order = np.argsort(index.assignments, kind="stable")
    index.bucket_indices = order.astype(np.int64)
    counts = np.bincount(index.assignments, minlength=index.n_clusters)
    index.bucket_indptr = np.zeros(index.n_clusters + 1, dtype=np.int64)
    np.cumsum(counts, out=index.bucket_indptr[1:])


def _rows_with_changed_candidates(old: RowCandidates, new: RowCandidates,
                                  num_old_rows: int) -> np.ndarray:
    """Boolean mask over the *old* rows whose candidate row differs.

    Exact CSR diff, fully vectorised: rows with different candidate counts
    differ outright; equal-count rows are compared by one flat gather of
    both structures (candidate ids are sorted ascending within a row, so
    elementwise comparison is a set comparison).
    """
    changed = np.zeros(num_old_rows, dtype=bool)
    old_counts = np.diff(old.indptr)[:num_old_rows]
    new_counts = np.diff(new.indptr)[:num_old_rows]
    changed |= old_counts != new_counts
    same = np.flatnonzero(~changed)
    if len(same):
        counts = old_counts[same]
        old_flat = old.indices[_flat_bucket_positions(old.indptr[same], counts)]
        new_flat = new.indices[_flat_bucket_positions(new.indptr[same], counts)]
        mismatch = old_flat != new_flat
        if mismatch.any():
            rows_rep = np.repeat(same, counts)
            changed[np.unique(rows_rep[mismatch])] = True
    return changed


class IncrementalAligner:
    """Delta-ingestion over one fitted aligner (see the module docstring).

    The constructor pays the warm-start cost once: it re-derives the
    fitted IVF quantiser (k-means is a deterministic, seeded function of
    the persisted decode states, so the rebuilt index reproduces the
    artifact's candidate structure exactly) and materialises the base
    decode table at the spec's ``k``.  Every subsequent :meth:`ingest` is
    then proportional to its delta.
    """

    def __init__(self, aligner: Aligner, *, delta_spec: DeltaSpec | None = None):
        aligner._ensure_model()
        if aligner.model is None or aligner.task is None:
            raise ValueError(
                "incremental ingestion needs the fitted model; custom-dataset "
                "artifacts drop it on load — ingest through the aligner "
                "returned by AlignmentPipeline.fit, or re-save with the "
                "model attached")
        spec = aligner.spec
        decode = spec.decode
        if decode.candidates == "lsh":
            raise ValueError(
                "incremental ingestion supports candidates='ivf' or "
                "'exhaustive'; LSH tables have no centroid structure to "
                "insert new vectors into")
        if decode.candidates == "ivf":
            config = resolve_ann(decode.ann, spec.training.seed)
            if config.exact_escalation or config.adaptive_slack > 0.0:
                raise ValueError(
                    "incremental ingestion does not support exact-escalation "
                    "or adaptive-slack IVF decodes (their per-query probe "
                    "sets depend on bucket radii that in-place inserts only "
                    "over-approximate); decode with plain nprobe probing")
        model_config = getattr(aligner.model, "config", None)
        if (decode.use_propagation
                and getattr(model_config, "propagation_iters", 0) > 0
                and not getattr(model_config, "propagation_average", True)):
            raise ValueError(
                "incremental ingestion needs propagation_average=True when "
                "decoding through Semantic Propagation: with average=False "
                "only the final round is persisted, so the raw round-0 "
                "embeddings the warm encode must scatter into are "
                "unrecoverable from the artifact")

        self.delta_spec = (delta_spec if delta_spec is not None
                           else getattr(spec, "delta", None) or DeltaSpec())
        self.aligner = aligner
        self.spec = spec
        self.model = aligner.model
        self.task = aligner.task
        self._generation = 0
        self.total_rows_encoded = 0
        self.total_rows_decoded = 0
        self.total_refits = 0

        self._states = aligner.decode_states()
        self._candidates = aligner.row_candidates()
        self._ann = (resolve_ann(decode.ann, spec.training.seed)
                     if decode.candidates == "ivf" else None)
        if decode.candidates == "ivf" and self._candidates is not None:
            # Deterministic re-derivation of the fitted quantiser: same
            # vectors, n_clusters, iteration budget and seed as
            # _ivf_candidates used at fit time, hence identical centroids,
            # assignments and candidate sets.
            self._ivf = IVFIndex(
                _concat_states(self._states[1]),
                n_clusters=self._ann.n_clusters,
                kmeans_iters=self._ann.kmeans_iters,
                seed=self._ann.resolved_seed(),
                train_size=self._ann.train_size)
        else:
            # Exhaustive decode, or an IVF config that provably covers
            # every cell (candidates=None): there is no index to maintain
            # and every ingest re-decodes in full.
            self._ivf = None
        self._table = aligner.topk(decode.k) if self._ivf is not None else None

    @classmethod
    def from_artifact(cls, directory, *, mmap: bool = False,
                      delta_spec: DeltaSpec | None = None) -> "IncrementalAligner":
        """Warm-start from a persisted artifact directory."""
        return cls(Aligner.load(Path(directory), mmap=mmap),
                   delta_spec=delta_spec)

    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        return self._generation

    def ingest(self, delta: DeltaBatch, *, directory=None) -> IngestReport:
        """Fold one delta batch in; returns the updated aligner + counters.

        ``directory`` optionally persists the updated artifact (through
        the :class:`~repro.core.store.EmbeddingStore` chunked writers) so
        a serving engine can promote it.
        """
        start = time.perf_counter()
        if delta.is_empty():
            # Bit-exact no-op: nothing moved, the current aligner (states,
            # candidates, cached tables) is returned untouched.
            if directory is not None:
                self.aligner.save(Path(directory))
            return IngestReport(aligner=self.aligner,
                                generation=self._generation,
                                seconds=time.perf_counter() - start, noop=True)

        seed = self.delta_spec.seed + self._generation
        app = apply_delta(self.task, delta, seed=seed)
        new_task = app.task
        self._extend_parameters(app, seed)
        self.model.task = new_task.with_backend(self.model.task.backend)
        self.model._eval_samplers = {}

        # Warm encode: scatter-update the raw evaluation embeddings over
        # the delta's receptive fields only.
        src_raw = self._extended_raw(self._states[0][0],
                                     new_task.source.num_entities)
        tgt_raw = self._extended_raw(self._states[1][0],
                                     new_task.target.num_entities)
        rows_encoded = (
            self._warm_encode("source", src_raw, app.seed_rows("source"))
            + self._warm_encode("target", tgt_raw, app.seed_rows("target")))

        # Re-run propagation over the extended graphs (O(|E|·d) smoothing,
        # not an encode — the expensive GNN forwards above were delta-sized).
        src_states, tgt_states = self._propagated(src_raw, tgt_raw)

        # Exact changed-row bookkeeping: a row re-decodes only if any of
        # its per-round states actually moved.
        n_s_old, n_t_old = app.num_source_before, app.num_target_before
        changed_src = self._changed_rows(src_states, self._states[0], n_s_old)
        changed_tgt = self._changed_rows(tgt_states, self._states[1], n_t_old)

        src_norm = [_normalize_rows(s).astype(np.float64, copy=False)
                    for s in src_states]
        tgt_norm = [_normalize_rows(s).astype(np.float64, copy=False)
                    for s in tgt_states]

        if self._ivf is not None:
            refit = self._update_index(tgt_states, changed_tgt, n_t_old)
            candidates = self._recompute_candidates(src_states)
            table, rows_decoded = self._selective_redecode(
                candidates, src_norm, tgt_norm, changed_src, changed_tgt,
                n_s_old, full=refit)
        else:
            refit = False
            candidates, table = None, None
            rows_decoded = len(src_norm[0])

        new_aligner = self._build_aligner(new_task, src_states, tgt_states,
                                          src_norm, tgt_norm, candidates,
                                          table)
        if self._ivf is None:
            # Full re-decode fallback: force the table now so the reported
            # wall-clock covers it (and serving prewarms hit a warm cache).
            table = new_aligner.topk(self.spec.decode.k)

        self.aligner = new_aligner
        self.spec = new_aligner.spec
        self.task = new_task
        self._states = (src_states, tgt_states)
        self._candidates = candidates
        self._table = table if self._ivf is not None else None
        self._generation += 1
        self.total_rows_encoded += rows_encoded
        self.total_rows_decoded += rows_decoded
        self.total_refits += int(refit)

        if directory is not None:
            new_aligner.save(Path(directory))
        return IngestReport(
            aligner=new_aligner, generation=self._generation,
            seconds=time.perf_counter() - start,
            num_new_source=len(app.new_source_ids),
            num_new_target=len(app.new_target_ids),
            rows_encoded=rows_encoded, rows_decoded=rows_decoded,
            refit=refit)

    # ------------------------------------------------------------------
    # Step 2: parameter / embedding extension
    # ------------------------------------------------------------------
    def _extend_parameters(self, app, seed: int) -> None:
        """Append warm-initialised structural-embedding rows per side.

        All fitted parameters are kept; only the per-entity tables grow.
        A new entity starts from the mean of its old neighbours' *trained*
        structure embeddings — a random row would inject noise into every
        neighbour's attention aggregate and measurably degrade the decode
        around the arrival point.  Entities with no old neighbour fall
        back to the ``N(0, 0.3)`` initialisation the table was born with,
        drawn from a delta-local generator so existing rows never shift.
        """
        owner = getattr(self.model, "encoder", self.model)
        rng = np.random.default_rng([max(seed, 0), self._generation, 17])
        for side, new_ids, num_old in (
                ("source", app.new_source_ids, app.num_source_before),
                ("target", app.new_target_ids, app.num_target_before)):
            if len(new_ids) == 0:
                continue
            key = owner._structure_keys[side]
            old = owner._parameters[key]
            table = np.asarray(old.data, dtype=np.float64)
            prepared = (app.task.source if side == "source"
                        else app.task.target)
            adjacency = prepared.adjacency
            fresh = np.empty((len(new_ids), table.shape[1]))
            for offset, entity in enumerate(new_ids):
                row = adjacency[int(entity)]
                if hasattr(row, "toarray"):   # sparse backend
                    row = row.toarray()
                neighbours = np.flatnonzero(
                    np.asarray(row).ravel()[:num_old])
                if len(neighbours):
                    fresh[offset] = table[neighbours].mean(axis=0)
                else:
                    fresh[offset] = rng.normal(0.0, 0.3,
                                               size=table.shape[1])
            owner._parameters[key] = Parameter(
                np.concatenate([table, fresh]),
                name=getattr(old, "name", None))

    @staticmethod
    def _extended_raw(old_raw: np.ndarray, num_new: int) -> np.ndarray:
        out = np.empty((num_new, old_raw.shape[1]), dtype=np.float64)
        out[:len(old_raw)] = old_raw
        return out

    def _warm_encode(self, side: str, raw: np.ndarray,
                     direct: np.ndarray) -> int:
        """Re-encode the receptive field of ``direct`` rows into ``raw``.

        The sampler's attention pattern is symmetric, so the k-hop
        *input* neighbourhood of the directly touched rows equals the set
        of rows whose *output* can depend on them — re-encoding exactly
        that set leaves every other row's stored embedding untouched.
        New rows are part of ``direct``, so they are always encoded.
        """
        if len(direct) == 0:
            return 0
        model = self.model
        sampler = model.neighbour_sampler(side, fanouts=self.delta_spec.fanouts)
        affected = sampler.sample(np.asarray(direct, dtype=np.int64)).input_nodes
        batch = (self.delta_spec.encode_batch_size
                 or self.spec.decode.encode_batch_size
                 or DEFAULT_ENCODE_BATCH)
        kind = getattr(getattr(model, "config", None),
                       "evaluation_embedding", None)
        with no_grad():
            for lo in range(0, len(affected), batch):
                view = sampler.sample(affected[lo:lo + batch])
                output = model.encode_subgraph(side, view)
                values = (output.joint(kind).numpy()
                          if hasattr(output, "joint") else output.numpy())
                view.scatter_rows(np.asarray(values, dtype=np.float64), raw)
        return len(affected)

    def _propagated(self, src_raw: np.ndarray, tgt_raw: np.ndarray
                    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Mirror ``model.decode_states`` over the updated raw embeddings."""
        decode = self.spec.decode
        model = self.model
        config = getattr(model, "config", None)
        if (decode.use_propagation
                and getattr(config, "propagation_iters", 0) > 0
                and hasattr(model, "propagation")):
            src_known, tgt_known = model.propagation_masks()
            src_states = model.propagation.propagate_features(
                src_raw, model.task.source.adjacency, src_known)
            tgt_states = model.propagation.propagate_features(
                tgt_raw, model.task.target.adjacency, tgt_known)
            return ([np.asarray(s, dtype=np.float64) for s in src_states],
                    [np.asarray(s, dtype=np.float64) for s in tgt_states])
        return [src_raw], [tgt_raw]

    @staticmethod
    def _changed_rows(new_states: list[np.ndarray],
                      old_states: list[np.ndarray], num_old: int) -> np.ndarray:
        if len(new_states) != len(old_states):
            raise RuntimeError(
                "propagation round count changed across an ingest; the "
                "model configuration must stay fixed while ingesting")
        changed = np.zeros(num_old, dtype=bool)
        for new, old in zip(new_states, old_states):
            changed |= np.any(np.asarray(new)[:num_old] != np.asarray(old),
                              axis=1)
        return changed

    # ------------------------------------------------------------------
    # Step 3: online IVF maintenance
    # ------------------------------------------------------------------
    def _update_index(self, tgt_states: list[np.ndarray],
                      changed_tgt: np.ndarray, n_t_old: int) -> bool:
        """Insert / re-assign target vectors; refit when staleness trips.

        Returns whether a re-quantisation ran (in which case every bucket
        may have changed and the caller re-decodes in full).
        """
        index = self._ivf
        concat = _concat_states(tgt_states)
        moved = np.flatnonzero(changed_tgt)
        pending = len(moved) + (len(concat) - n_t_old)
        if (index.num_inserted + pending
                > self.delta_spec.refit_threshold * len(concat)):
            # Periodic re-quantisation: subsampled k-means warm-started
            # from the current centroids (IVFIndex.refit semantics, over
            # the updated vectors), staleness counter reset.
            self._ivf = IVFIndex(
                concat, n_clusters=index.n_clusters,
                kmeans_iters=self._ann.kmeans_iters,
                seed=self._ann.resolved_seed(),
                init_centroids=index.centroids,
                train_size=(self.delta_spec.refit_train_size
                            or self._ann.train_size))
            return True
        # Moved vectors keep their slot but may hop buckets; centroids
        # stay fixed (that drift is what the staleness counter measures).
        index.vectors = concat[:n_t_old]
        if len(moved):
            index.assignments[moved] = index._assign(concat[moved],
                                                     index.centroids)
            distances = np.linalg.norm(
                concat[moved] - index.centroids[index.assignments[moved]],
                axis=1)
            np.maximum.at(index.radii, index.assignments[moved], distances)
            index.num_inserted += len(moved)
        if len(concat) > n_t_old:
            index.insert(concat[n_t_old:])   # appends + rebuilds the CSR
        elif len(moved):
            _rebuild_buckets(index)
        return False

    def _recompute_candidates(self, src_states: list[np.ndarray]):
        """All candidate rows against the updated index (O(n·K) probing).

        Unchanged source rows provably keep their candidate row whenever
        their probed buckets kept their members: identical queries against
        identical centroids select identical buckets, so the CSR diff in
        the re-decode step finds exactly the rows whose sets moved.
        Mirrors ``_ivf_candidates`` + ``generate_candidates`` (grouping,
        then ``min_candidates`` padding).
        """
        result = self._ivf.candidates(_concat_states(src_states),
                                      nprobe=self._ann.nprobe)
        if self._ann.gather == "bucket":
            result = GroupedRowCandidates.from_candidates(
                result, self._ivf.assignments)
        if self._ann.min_candidates is not None:
            result = result.padded(self._ann.min_candidates)
        return result

    # ------------------------------------------------------------------
    # Step 4: selective re-decode + merge
    # ------------------------------------------------------------------
    def _selective_redecode(self, candidates, src_norm, tgt_norm,
                            changed_src: np.ndarray, changed_tgt: np.ndarray,
                            n_s_old: int, *, full: bool
                            ) -> tuple[TopKSimilarity, int]:
        n_s_new = len(src_norm[0])
        n_t_new = len(tgt_norm[0])
        n_t_old = len(changed_tgt)
        k = self.spec.decode.k
        k_keep = min(k, n_t_new)
        old_table = self._table

        redecode = np.zeros(n_s_new, dtype=bool)
        redecode[n_s_old:] = True
        redecode[:n_s_old] |= changed_src
        if full or old_table is None or old_table.indices.shape[1] != k_keep:
            # Refit, first ingest after an exhaustive fallback, or a k_keep
            # width change (k > old target count): no mergeable base.
            redecode[:] = True
        else:
            redecode[:n_s_old] |= _rows_with_changed_candidates(
                self._candidates, candidates, n_s_old)
            # Rows whose candidate set contains a moved target (same ids,
            # different vectors) or a freshly inserted one.
            dirty_target = np.ones(n_t_new, dtype=bool)
            dirty_target[:n_t_old] = changed_tgt
            counts = np.diff(candidates.indptr)
            rows_of = np.repeat(np.arange(n_s_new), counts)
            hit = dirty_target[candidates.indices]
            if hit.any():
                redecode[np.unique(rows_of[hit])] = True

        rows = np.flatnonzero(redecode)
        subset = candidates.select_rows(rows)
        if isinstance(candidates, GroupedRowCandidates):
            # select_rows returns the plain structure by design; restore
            # the bucket grouping so the gather path matches the full
            # decode's bit for bit.
            subset = GroupedRowCandidates.from_candidates(
                subset, self._ivf.assignments)
        partial = compute_partial_topk_candidates(
            [s[rows] for s in src_norm], tgt_norm, subset.padded(k_keep),
            0, len(rows), k_keep, DEFAULT_BLOCK_SIZE, np.float64)
        # Remap the shard-local row ids to global ids before merging.
        partial.rows = rows.astype(np.int64)
        touched = partial.col_max > -np.inf
        partial.col_argmax[touched] = rows[partial.col_argmax[touched]]

        kept = np.flatnonzero(~redecode)
        if len(kept):
            merged = merge_partials(
                self._retained_shard(old_table, kept, n_s_new, n_t_new),
                partial)
        else:
            merged = partial

        table = TopKSimilarity(
            shape=(n_s_new, n_t_new), k=k_keep,
            csls_k=old_table.csls_k if old_table is not None else 10,
            indices=merged.indices, scores=merged.scores,
            col_max=merged.col_max, col_argmax=merged.col_argmax,
            row_knn_mean=np.full(n_s_new, np.nan),
            col_knn_mean=np.full(n_t_new, np.nan),
            columns=None, dtype=np.dtype(np.float64), approximate=True,
            computed_cells=merged.computed_cells,
            _source_norm=src_norm, _target_norm=tgt_norm)
        return table, len(rows)

    @staticmethod
    def _retained_shard(old_table: TopKSimilarity, kept: np.ndarray,
                        n_s_new: int, n_t_new: int) -> PartialTopK:
        """The surviving rows of the cached table as a mergeable shard.

        Column statistics are rebuilt from the kept rows' surviving top-k
        entries (ties resolved to the lowest source row, the merge's
        convention).  Cells that were computed at decode time but fell
        outside the kept top-k are gone, so the merged ``col_max`` is a
        lower bound on the exact column maximum — the row-wise data every
        evaluation and serving path reads is exact.
        """
        indices = np.asarray(old_table.indices[kept], dtype=np.int64)
        scores = np.asarray(old_table.scores[kept], dtype=np.float64)
        col_max = np.full(n_t_new, -np.inf, dtype=np.float64)
        col_argmax = np.zeros(n_t_new, dtype=np.int64)
        flat_cols = indices.ravel()
        flat_scores = scores.ravel()
        np.maximum.at(col_max, flat_cols, flat_scores)
        rows_rep = np.repeat(kept.astype(np.int64), indices.shape[1])
        at_max = flat_scores == col_max[flat_cols]
        best_row = np.full(n_t_new, n_s_new, dtype=np.int64)
        np.minimum.at(best_row, flat_cols[at_max], rows_rep[at_max])
        filled = best_row < n_s_new
        col_argmax[filled] = best_row[filled]
        return PartialTopK(rows=kept.astype(np.int64), indices=indices,
                           scores=scores, col_max=col_max,
                           col_argmax=col_argmax, col_top=None, csls_k_col=0,
                           computed_cells=0)

    # ------------------------------------------------------------------
    # Step 5: the promotable artifact
    # ------------------------------------------------------------------
    def _build_aligner(self, new_task, src_states, tgt_states, src_norm,
                       tgt_norm, candidates, table) -> Aligner:
        # The extended task is caller-supplied data: flip the dataset to
        # "custom" so a later Aligner.load never tries to regenerate the
        # (smaller) benchmark task around the persisted parameters.
        spec = self.spec
        if spec.data.dataset != CUSTOM_DATASET:
            spec = spec.with_overrides(
                data=replace(spec.data, dataset=CUSTOM_DATASET))
        aligner = Aligner(
            spec, task=new_task, model=self.model,
            states=(src_states, tgt_states),
            row_candidates=candidates,
            candidates_ready=candidates is not None,
            train_pairs=new_task.train_pairs, test_pairs=new_task.test_pairs)
        if table is not None:
            aligner._topk_cache[spec.decode.k] = table
            aligner._norm_states = (src_norm, tgt_norm)
        return aligner
