"""Incremental alignment: delta ingestion over a fitted artifact.

The subsystem folds arriving entities, triples, features and seed pairs
into a fitted aligner without a re-fit, in work proportional to the delta:

.. code-block:: python

    from repro.incremental import DeltaBatch, IncrementalAligner

    incremental = IncrementalAligner.from_artifact("artifacts/run")
    report = incremental.ingest(DeltaBatch.load("delta.json"),
                                directory="artifacts/run-next")
    print(report.rows_encoded, report.rows_decoded, report.seconds)

See :mod:`repro.incremental.delta` for the place-preserving task
extension and :mod:`repro.incremental.aligner` for the warm-encode /
IVF-insert / selective-re-decode lifecycle.  Live promotion into a
running server goes through :meth:`repro.serve.ServingEngine.ingest`.
"""

from .aligner import IncrementalAligner, IngestReport
from .delta import DeltaApplication, DeltaBatch, SideDelta, apply_delta

__all__ = [
    "DeltaBatch",
    "SideDelta",
    "DeltaApplication",
    "apply_delta",
    "IncrementalAligner",
    "IngestReport",
]
