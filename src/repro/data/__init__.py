"""Dataset generation: synthetic MMKG pairs, modal features and benchmark presets."""

from .features import (
    bag_of_relations,
    bag_of_attributes,
    visual_feature_matrix,
    ModalFeatureSet,
    build_feature_set,
)
from .loader import SeedPairBatch, SeedPairLoader
from .synthetic import SyntheticPairConfig, SyntheticWorld, generate_world, generate_pair
from .benchmarks import (
    MONOLINGUAL_DATASETS,
    BILINGUAL_DATASETS,
    ALL_DATASETS,
    MISSING_RATIOS,
    BenchmarkSplit,
    dataset_preset,
    load_benchmark,
    benchmark_suite,
    is_bilingual,
)

__all__ = [
    "bag_of_relations",
    "bag_of_attributes",
    "visual_feature_matrix",
    "ModalFeatureSet",
    "build_feature_set",
    "SeedPairBatch",
    "SeedPairLoader",
    "SyntheticPairConfig",
    "SyntheticWorld",
    "generate_world",
    "generate_pair",
    "MONOLINGUAL_DATASETS",
    "BILINGUAL_DATASETS",
    "ALL_DATASETS",
    "MISSING_RATIOS",
    "BenchmarkSplit",
    "dataset_preset",
    "load_benchmark",
    "benchmark_suite",
    "is_bilingual",
]
