"""Mini-batch seed-pair loading for neighbour-sampled training.

A :class:`SeedPairLoader` turns the seed-alignment array of a prepared task
into a stream of :class:`SeedPairBatch` objects: for every mini-batch of
``[source_id, target_id]`` pairs it extracts the paired source and target
:class:`~repro.kg.sampling.SubgraphView`\\ s (one per graph, sampled by the
callers' :class:`~repro.kg.sampling.NeighbourSampler`\\ s) plus the local row
indices of the batch entities inside each view's seed set — everything a
subgraph-aware loss needs.

Batching semantics mirror the full-graph trainer exactly: when all pairs fit
in one batch they are yielded unpermuted, otherwise the epoch order is a
fresh permutation from the loader's generator.  Sharing one generator
between the trainer and the loader therefore keeps the full-graph and the
sampled strategies on identical batch schedules, which is what lets the
full-fanout equivalence benchmark compare them within float tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..kg.sampling import NeighbourSampler, SubgraphView

__all__ = ["SeedPairBatch", "SeedPairLoader", "epoch_order"]


def epoch_order(rng: np.random.Generator, num_items: int, batch_size: int,
                shuffle: bool = True) -> np.ndarray:
    """One epoch's visiting order over ``num_items`` seed pairs.

    The single source of truth for batch scheduling, shared by the
    full-graph trainer loop and :class:`SeedPairLoader`: a permutation is
    drawn from ``rng`` only when shuffling *and* more than one batch is
    needed, so both strategies consume the generator identically — the
    invariant behind the full-fanout training-equivalence contract.
    """
    if shuffle and num_items > batch_size:
        return rng.permutation(num_items)
    return np.arange(num_items)


@dataclass
class SeedPairBatch:
    """One mini-batch of seed pairs with their paired subgraph views.

    ``source_index`` / ``target_index`` are the positions of
    ``pairs[:, 0]`` / ``pairs[:, 1]`` inside ``source_view.seed_nodes`` /
    ``target_view.seed_nodes`` — i.e. the rows of the subgraph encoder
    outputs that belong to this batch's entities.
    """

    pairs: np.ndarray
    source_view: SubgraphView
    target_view: SubgraphView
    source_index: np.ndarray
    target_index: np.ndarray

    def __len__(self) -> int:
        return len(self.pairs)


class SeedPairLoader:
    """Iterate seed pairs in mini-batches, sampling paired subgraphs.

    Parameters
    ----------
    pairs:
        ``(num_pairs, 2)`` array of ``[source_id, target_id]`` alignments.
    source_sampler, target_sampler:
        The per-graph neighbour samplers (their fanouts set the receptive
        field of each batch).
    batch_size:
        Seed pairs per batch.
    rng:
        Optional generator shared with the caller; falls back to a fresh
        ``default_rng(seed)``.
    shuffle:
        Permute the pair order every epoch (only when more than one batch
        is needed, matching the full-graph trainer).
    """

    def __init__(self, pairs: np.ndarray, source_sampler: NeighbourSampler,
                 target_sampler: NeighbourSampler, batch_size: int = 512,
                 rng: np.random.Generator | None = None, seed: int = 0,
                 shuffle: bool = True):
        pairs = np.asarray(pairs, dtype=np.int64)
        if pairs.ndim != 2 or pairs.shape[1] != 2:
            raise ValueError("pairs must have shape (num_pairs, 2)")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.pairs = pairs
        self.source_sampler = source_sampler
        self.target_sampler = target_sampler
        self.batch_size = batch_size
        self.shuffle = shuffle
        self._rng = rng if rng is not None else np.random.default_rng(seed)

    def __len__(self) -> int:
        """Number of batches per epoch."""
        return int(np.ceil(len(self.pairs) / self.batch_size))

    def __iter__(self):
        num_pairs = len(self.pairs)
        if num_pairs == 0:
            return
        order = epoch_order(self._rng, num_pairs, self.batch_size, self.shuffle)
        for start in range(0, num_pairs, self.batch_size):
            batch_pairs = self.pairs[order[start:start + self.batch_size]]
            source_view = self.source_sampler.sample(batch_pairs[:, 0])
            target_view = self.target_sampler.sample(batch_pairs[:, 1])
            yield SeedPairBatch(
                pairs=batch_pairs,
                source_view=source_view,
                target_view=target_view,
                source_index=source_view.global_to_local(batch_pairs[:, 0]),
                target_index=target_view.global_to_local(batch_pairs[:, 1]),
            )
