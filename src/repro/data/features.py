"""Modal feature construction for MMKG entities.

Following Sec. V-A(4) of the paper, relations and textual attributes are
encoded as Bag-of-Words vectors of fixed length and the visual modality
uses pre-extracted image features (ResNet-152 in the paper, synthetic
vectors in this reproduction).  Entities lacking a modality receive randomly
generated initial features drawn from the distribution of the existing
features of that modality — exactly the interpolation-by-predefined-
distribution baseline behaviour that Semantic Propagation later improves on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..kg.graph import MultiModalKG

__all__ = [
    "bag_of_relations",
    "bag_of_attributes",
    "visual_feature_matrix",
    "ModalFeatureSet",
    "build_feature_set",
]


def _hashed_index(index: int, dim: int) -> int:
    """Stable feature-hashing of a vocabulary index into ``dim`` buckets."""
    return (index * 2654435761) % dim


def bag_of_relations(graph: MultiModalKG, dim: int | None = None) -> np.ndarray:
    """Bag-of-Words relation features: counts of incident relation types.

    When ``dim`` is smaller than the relation vocabulary, feature hashing is
    used (the paper fixes the BoW length to 1000 regardless of vocabulary).
    """
    dim = dim or max(1, graph.num_relations)
    features = np.zeros((graph.num_entities, dim))
    for triple in graph.relation_triples:
        bucket = _hashed_index(triple.relation, dim)
        features[triple.head, bucket] += 1.0
        features[triple.tail, bucket] += 1.0
    return features


def bag_of_attributes(graph: MultiModalKG, dim: int | None = None) -> np.ndarray:
    """Bag-of-Words attribute features: counts of attribute predicates per entity."""
    dim = dim or max(1, graph.num_attributes)
    features = np.zeros((graph.num_entities, dim))
    for triple in graph.attribute_triples:
        bucket = _hashed_index(triple.attribute, dim)
        features[triple.entity, bucket] += 1.0
    return features


def visual_feature_matrix(graph: MultiModalKG, dim: int | None = None) -> tuple[np.ndarray, np.ndarray]:
    """Stack visual features into an ``(N, dim)`` matrix plus a presence mask.

    Rows for entities without images are left at zero; the mask records
    which rows carry native features.
    """
    if graph.image_features:
        native_dim = len(next(iter(graph.image_features.values())))
    else:
        native_dim = dim or 1
    dim = dim or native_dim
    features = np.zeros((graph.num_entities, dim))
    mask = np.zeros(graph.num_entities, dtype=bool)
    for entity, vector in graph.image_features.items():
        vector = np.asarray(vector, dtype=np.float64)
        if len(vector) < dim:
            vector = np.pad(vector, (0, dim - len(vector)))
        features[entity] = vector[:dim]
        mask[entity] = True
    return features, mask


@dataclass
class ModalFeatureSet:
    """Per-modality raw input features and presence masks for one MMKG.

    Attributes
    ----------
    features:
        ``modality -> (N, d_m)`` raw feature matrices (after missing-entity
        imputation with the chosen strategy).
    masks:
        ``modality -> (N,)`` boolean arrays; True where the entity has
        *native* (non-imputed) features.  These masks drive both the MMSL
        confidence weighting and Semantic Propagation's boundary conditions.
    """

    features: dict[str, np.ndarray]
    masks: dict[str, np.ndarray]
    graph: MultiModalKG | None = field(default=None, repr=False)

    @property
    def num_entities(self) -> int:
        return next(iter(self.features.values())).shape[0]

    @property
    def modalities(self) -> list[str]:
        return list(self.features)

    def dims(self) -> dict[str, int]:
        return {m: mat.shape[1] for m, mat in self.features.items()}

    def missing_ratio(self, modality: str) -> float:
        """Fraction of entities whose features for ``modality`` were imputed."""
        mask = self.masks[modality]
        return float(1.0 - mask.mean())

    def consistency_partition(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Split entities into the ``E_c`` / ``E_{o1}`` / ``E_{o2}`` sets of Eq. 2.

        ``E_c``: native features in every modality; ``E_{o2}``: at least one
        modality entirely missing (imputed); ``E_{o1}``: all modalities
        present but with below-median attribute/relation counts, modelling
        the attribute-count disparity form of inconsistency.
        """
        masks = np.stack([self.masks[m] for m in self.modalities], axis=1)
        has_all = masks.all(axis=1)
        missing = np.where(~has_all)[0]
        present = np.where(has_all)[0]
        if self.graph is not None and len(present) > 2:
            counts = np.zeros(self.num_entities)
            for triple in self.graph.attribute_triples:
                counts[triple.entity] += 1.0
            for triple in self.graph.relation_triples:
                counts[triple.head] += 1.0
                counts[triple.tail] += 1.0
            median = np.median(counts[present])
            sparse = present[counts[present] < 0.5 * median]
            consistent = np.setdiff1d(present, sparse)
            if len(consistent) == 0:
                consistent, sparse = present, np.array([], dtype=np.int64)
            return consistent, sparse, missing
        return present, np.array([], dtype=np.int64), missing


def _impute_missing(features: np.ndarray, mask: np.ndarray,
                    rng: np.random.Generator, strategy: str) -> np.ndarray:
    """Fill rows where ``mask`` is False according to ``strategy``."""
    if mask.all():
        return features
    filled = features.copy()
    missing = ~mask
    if strategy == "zero":
        filled[missing] = 0.0
    elif strategy == "random_from_distribution":
        if mask.any():
            mean = features[mask].mean(axis=0)
            std = features[mask].std(axis=0) + 1e-8
        else:
            mean = np.zeros(features.shape[1])
            std = np.ones(features.shape[1])
        filled[missing] = rng.normal(mean, std, size=(missing.sum(), features.shape[1]))
    elif strategy == "mean":
        mean = features[mask].mean(axis=0) if mask.any() else np.zeros(features.shape[1])
        filled[missing] = mean
    else:
        raise ValueError(f"unknown imputation strategy {strategy!r}")
    return filled


def build_feature_set(graph: MultiModalKG,
                      rng: np.random.Generator,
                      relation_dim: int | None = None,
                      attribute_dim: int | None = None,
                      vision_dim: int | None = None,
                      structure_dim: int = 64,
                      imputation: str = "random_from_distribution") -> ModalFeatureSet:
    """Build the full modal feature set ``{x^g, x^r, x^t, x^v}`` for a graph.

    The structural modality ``x^g`` is randomly initialised (Sec. IV-A(1));
    the other modalities come from Bag-of-Words / visual features with
    missing entities imputed via ``imputation``.
    """
    relation_features = bag_of_relations(graph, relation_dim)
    attribute_features = bag_of_attributes(graph, attribute_dim)
    vision_features, vision_mask = visual_feature_matrix(graph, vision_dim)

    masks = graph.modality_mask()
    features = {
        "graph": rng.normal(0.0, 0.3, size=(graph.num_entities, structure_dim)),
        "relation": _impute_missing(relation_features, masks["relation"], rng, imputation),
        "attribute": _impute_missing(attribute_features, masks["attribute"], rng, imputation),
        "vision": _impute_missing(vision_features, vision_mask, rng, imputation),
    }
    return ModalFeatureSet(
        features=features,
        masks={
            "graph": masks["graph"],
            "relation": masks["relation"],
            "attribute": masks["attribute"],
            "vision": vision_mask,
        },
        graph=graph,
    )
