"""Synthetic multi-modal knowledge-graph pair generator.

The paper evaluates on DBP15K (bilingual) and FBDB15K / FBYG15K
(monolingual), none of which — nor their ResNet image features — are
available offline.  This module builds scaled-down synthetic replicas that
preserve the properties the method actually exercises:

* two graphs describing the *same* underlying set of entities, each entity
  carrying a latent semantic vector shared across graphs;
* community-structured (homophilous) relation structure so that Dirichlet
  energy and propagation behave as on real KGs;
* per-graph relation and attribute vocabularies of different sizes, with
  noisy, partially overlapping attribute assignments (count disparity);
* visual features derived from the shared latent semantics through
  graph-specific projections plus noise, with configurable coverage
  (missing-image ratio), and analogously configurable attribute coverage;
* structural heterogeneity (edge dropout / rewiring) that can be increased
  to emulate the bilingual setting.

Every quantity is driven by an explicit seed so benchmark tables are
reproducible run to run.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import networkx as nx
import numpy as np

from ..kg.graph import AttributeTriple, MultiModalKG, RelationTriple
from ..kg.pair import AlignmentPair, KGPair

__all__ = ["SyntheticPairConfig", "SyntheticWorld", "generate_world", "generate_pair"]


@dataclass(frozen=True)
class SyntheticPairConfig:
    """Configuration of a synthetic MMKG alignment task.

    The defaults produce a small monolingual-style pair; the benchmark
    presets in :mod:`repro.data.benchmarks` override them per dataset.
    """

    num_entities: int = 200
    num_communities: int = 8
    latent_dim: int = 16
    vision_dim: int = 24
    avg_degree: float = 6.0
    intra_community_bias: float = 8.0
    num_relations_source: int = 24
    num_relations_target: int = 12
    num_attributes_source: int = 30
    num_attributes_target: int = 20
    attributes_per_entity: float = 3.0
    image_coverage_source: float = 0.85
    image_coverage_target: float = 0.75
    attribute_coverage_source: float = 0.9
    attribute_coverage_target: float = 0.8
    edge_noise_source: float = 0.05
    edge_noise_target: float = 0.15
    triple_ratio_target: float = 0.7
    feature_noise: float = 0.15
    seed_ratio: float = 0.3
    seed: int = 0
    name: str = "synthetic"

    def with_overrides(self, **kwargs) -> "SyntheticPairConfig":
        """Return a copy with selected fields replaced."""
        return replace(self, **kwargs)


@dataclass
class SyntheticWorld:
    """Shared latent ground truth both graphs are derived from."""

    latent: np.ndarray                  # (N, latent_dim) entity semantics
    communities: np.ndarray             # (N,) community assignment
    base_edges: list[tuple[int, int]]   # undirected skeleton edges
    attribute_affinity: np.ndarray      # (num_communities, max_attributes) sampling logits


#: Above this entity count the skeleton sampler switches from enumerating
#: all O(n²) node pairs to drawing the expected number of edges directly.
_PAIRWISE_SAMPLING_CUTOFF = 1000


def _sample_block_edges(communities: np.ndarray, probability_intra: float,
                        probability_inter: float,
                        rng: np.random.Generator) -> set[tuple[int, int]]:
    """Draw stochastic-block-model edges in ``O(|E|)`` memory.

    Instead of flipping a coin for every one of the ``n(n-1)/2`` node pairs,
    draw the *number* of intra-/inter-community edges binomially and then
    sample that many pairs uniformly within their class.  For sparse graphs
    (``p ~ degree/n``) duplicate draws are vanishingly rare and are simply
    deduplicated, matching the pairwise sampler's edge statistics.
    """
    num_entities = len(communities)
    sizes = np.bincount(communities)
    intra_pairs_per_community = sizes * (sizes - 1) // 2
    total_intra = int(intra_pairs_per_community.sum())
    total_pairs = num_entities * (num_entities - 1) // 2
    total_inter = total_pairs - total_intra
    members = [np.flatnonzero(communities == c) for c in range(len(sizes))]

    edges: set[tuple[int, int]] = set()
    num_intra = rng.binomial(total_intra, probability_intra) if total_intra else 0
    if num_intra:
        weights = intra_pairs_per_community / max(total_intra, 1)
        chosen = rng.choice(len(sizes), size=num_intra, p=weights)
        for community in chosen:
            group = members[community]
            head, tail = rng.choice(len(group), size=2, replace=False)
            edges.add(tuple(sorted((int(group[head]), int(group[tail])))))
    num_inter = rng.binomial(total_inter, probability_inter) if total_inter else 0
    drawn = 0
    while drawn < num_inter:
        head, tail = rng.integers(0, num_entities, size=2)
        if head == tail or communities[head] == communities[tail]:
            continue
        edges.add(tuple(sorted((int(head), int(tail)))))
        drawn += 1
    return edges


def generate_world(config: SyntheticPairConfig, rng: np.random.Generator) -> SyntheticWorld:
    """Sample the shared latent world underlying both graphs."""
    communities = rng.integers(0, config.num_communities, size=config.num_entities)
    centers = rng.normal(0.0, 1.0, size=(config.num_communities, config.latent_dim))
    latent = centers[communities] + 0.35 * rng.normal(size=(config.num_entities, config.latent_dim))

    # Degree-corrected stochastic-block-model style skeleton with guaranteed
    # connectivity (a spanning chain), so sub-Laplacians stay invertible.
    probability_intra = min(1.0, config.avg_degree * config.intra_community_bias
                            / (config.num_entities * (1.0 + config.intra_community_bias)))
    probability_inter = min(1.0, config.avg_degree
                            / (config.num_entities * (1.0 + config.intra_community_bias)))
    if config.num_entities > _PAIRWISE_SAMPLING_CUTOFF:
        # Large graphs: draw edges directly (O(|E|)); the pairwise route
        # below would materialise several O(n²) index/probability arrays.
        edges = _sample_block_edges(communities, probability_intra,
                                    probability_inter, rng)
        order = rng.permutation(config.num_entities)
        for left, right in zip(order[:-1], order[1:]):
            edges.add(tuple(sorted((int(left), int(right)))))
        base_edges = sorted(edges)
    else:
        graph = nx.Graph()
        graph.add_nodes_from(range(config.num_entities))
        upper = np.triu_indices(config.num_entities, k=1)
        same = communities[upper[0]] == communities[upper[1]]
        probabilities = np.where(same, probability_intra, probability_inter)
        sampled = rng.random(len(probabilities)) < probabilities
        for head, tail in zip(upper[0][sampled], upper[1][sampled]):
            graph.add_edge(int(head), int(tail))
        order = rng.permutation(config.num_entities)
        for left, right in zip(order[:-1], order[1:]):
            graph.add_edge(int(left), int(right))
        base_edges = [tuple(sorted(edge)) for edge in graph.edges()]

    max_attributes = max(config.num_attributes_source, config.num_attributes_target)
    attribute_affinity = rng.normal(0.0, 1.0, size=(config.num_communities, max_attributes))
    return SyntheticWorld(
        latent=latent,
        communities=communities,
        base_edges=base_edges,
        attribute_affinity=attribute_affinity,
    )


def _sample_entity_attributes(world: SyntheticWorld, entity: int, num_attributes: int,
                              count: int, rng: np.random.Generator) -> list[int]:
    """Sample attribute predicates for an entity from its community affinity."""
    logits = world.attribute_affinity[world.communities[entity], :num_attributes]
    probabilities = np.exp(logits - logits.max())
    probabilities /= probabilities.sum()
    count = min(count, num_attributes)
    return list(rng.choice(num_attributes, size=count, replace=False, p=probabilities))


def _derive_graph(world: SyntheticWorld, config: SyntheticPairConfig,
                  rng: np.random.Generator, side: str) -> MultiModalKG:
    """Materialise one MMKG (source or target) from the shared world."""
    if side == "source":
        num_relations = config.num_relations_source
        num_attributes = config.num_attributes_source
        edge_noise = config.edge_noise_source
        image_coverage = config.image_coverage_source
        attribute_coverage = config.attribute_coverage_source
        triple_ratio = 1.0
    else:
        num_relations = config.num_relations_target
        num_attributes = config.num_attributes_target
        edge_noise = config.edge_noise_target
        image_coverage = config.image_coverage_target
        attribute_coverage = config.attribute_coverage_target
        triple_ratio = config.triple_ratio_target

    num_entities = len(world.latent)
    # Relation triples: keep each skeleton edge with probability governed by
    # the triple ratio and edge noise, then add a small amount of rewired
    # noise edges so the two graphs are not structurally identical.
    relation_triples: list[RelationTriple] = []
    keep_probability = triple_ratio * (1.0 - edge_noise)
    relation_shift = rng.integers(0, num_relations)
    for head, tail in world.base_edges:
        if rng.random() > keep_probability:
            continue
        community_pair = (int(world.communities[head]) * 31 + int(world.communities[tail]))
        relation = (community_pair + relation_shift) % num_relations
        relation_triples.append(RelationTriple(head, relation, tail))
    num_noise_edges = int(edge_noise * len(world.base_edges))
    for _ in range(num_noise_edges):
        head, tail = rng.integers(0, num_entities, size=2)
        if head == tail:
            continue
        relation_triples.append(RelationTriple(int(head), int(rng.integers(0, num_relations)),
                                               int(tail)))

    # Attribute triples: per entity, a community-driven attribute bag whose
    # size varies, creating the attribute-count disparity of E_{o1}.
    attribute_triples: list[AttributeTriple] = []
    with_attributes = rng.random(num_entities) < attribute_coverage
    for entity in range(num_entities):
        if not with_attributes[entity]:
            continue
        count = max(1, int(rng.poisson(config.attributes_per_entity)))
        for attribute in _sample_entity_attributes(world, entity, num_attributes, count, rng):
            attribute_triples.append(AttributeTriple(entity, int(attribute),
                                                     f"{side}-value-{attribute}"))

    # Visual features: graph-specific linear view of the shared latent
    # semantics plus Gaussian noise, present only for a coverage fraction.
    projection = rng.normal(0.0, 1.0, size=(world.latent.shape[1], config.vision_dim))
    projection /= np.sqrt(world.latent.shape[1])
    visual = world.latent @ projection
    visual += config.feature_noise * rng.normal(size=visual.shape)
    with_images = rng.random(num_entities) < image_coverage
    image_features = {int(e): visual[e].copy() for e in range(num_entities) if with_images[e]}

    return MultiModalKG(
        entity_names=[f"{config.name}/{side}/e{i}" for i in range(num_entities)],
        num_relations=num_relations,
        num_attributes=num_attributes,
        relation_triples=relation_triples,
        attribute_triples=attribute_triples,
        image_features=image_features,
        name=f"{config.name}-{side}",
    )


def _permute_graph(graph: MultiModalKG, permutation: np.ndarray) -> MultiModalKG:
    """Relabel entities of ``graph`` according to ``permutation[old] = new``."""
    inverse = np.argsort(permutation)
    entity_names = [graph.entity_names[inverse[new]] for new in range(graph.num_entities)]
    relation_triples = [RelationTriple(int(permutation[t.head]), t.relation,
                                       int(permutation[t.tail]))
                        for t in graph.relation_triples]
    attribute_triples = [AttributeTriple(int(permutation[t.entity]), t.attribute, t.value)
                         for t in graph.attribute_triples]
    image_features = {int(permutation[e]): feat for e, feat in graph.image_features.items()}
    return MultiModalKG(
        entity_names=entity_names,
        num_relations=graph.num_relations,
        num_attributes=graph.num_attributes,
        relation_triples=relation_triples,
        attribute_triples=attribute_triples,
        image_features=image_features,
        name=graph.name,
    )


def generate_pair(config: SyntheticPairConfig) -> KGPair:
    """Generate a full synthetic alignment task from a configuration."""
    rng = np.random.default_rng(config.seed)
    world = generate_world(config, rng)
    source = _derive_graph(world, config, rng, "source")
    target = _derive_graph(world, config, rng, "target")

    permutation = rng.permutation(config.num_entities)
    target = _permute_graph(target, permutation)
    alignments = [AlignmentPair(int(i), int(permutation[i])) for i in range(config.num_entities)]

    return KGPair(
        source=source,
        target=target,
        alignments=alignments,
        seed_ratio=config.seed_ratio,
        name=config.name,
    )
