"""Benchmark presets mirroring the paper's datasets and its 60-split suite.

Table I of the paper lists two monolingual tasks (FBDB15K, FBYG15K) and
three bilingual tasks (DBP15K ZH-EN / JA-EN / FR-EN).  Each preset here is a
scaled-down synthetic replica (see ``DESIGN.md`` for the substitution
rationale): the relative characteristics — vocabulary size asymmetry,
attribute richness, image coverage, structural heterogeneity — follow the
statistics of the corresponding real dataset, while the entity count is a
tunable ``scale`` knob so the full experiment grid runs on CPU in minutes.

The split builders reproduce the paper's evaluation axes:

* ``R_seed`` ∈ {20%, 50%, 80%} (monolingual) and 30% (bilingual), plus the
  weakly supervised sweep 1%–30% of Fig. 3 (right);
* ``R_img`` and ``R_tex`` ∈ {5%, 20%, 30%, 40%, 50%, 60%} for the
  missing-modality robustness studies of Tables II and III.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..kg.pair import KGPair
from .synthetic import SyntheticPairConfig, generate_pair

__all__ = [
    "MONOLINGUAL_DATASETS",
    "BILINGUAL_DATASETS",
    "ALL_DATASETS",
    "MISSING_RATIOS",
    "BenchmarkSplit",
    "dataset_preset",
    "load_benchmark",
    "benchmark_suite",
]

#: Dataset identifiers matching the paper's naming.
MONOLINGUAL_DATASETS = ("FBDB15K", "FBYG15K")
BILINGUAL_DATASETS = ("DBP15K_ZH_EN", "DBP15K_JA_EN", "DBP15K_FR_EN")
ALL_DATASETS = MONOLINGUAL_DATASETS + BILINGUAL_DATASETS

#: Missing-modality ratios used in Tables II and III.
MISSING_RATIOS = (0.05, 0.20, 0.30, 0.40, 0.50, 0.60)

#: Default scaled-down entity count (the real datasets have ~15k entities).
DEFAULT_NUM_ENTITIES = 120

# Per-dataset characteristics loosely mirroring Table I: relative relation /
# attribute vocabulary sizes, image coverage and structural heterogeneity.
_PRESET_TRAITS: dict[str, dict[str, float]] = {
    "FBDB15K": {
        "num_relations_source": 40, "num_relations_target": 14,
        "num_attributes_source": 12, "num_attributes_target": 22,
        "image_coverage_source": 0.90, "image_coverage_target": 0.95,
        "attribute_coverage_source": 0.75, "attribute_coverage_target": 0.85,
        "edge_noise_target": 0.10, "triple_ratio_target": 0.55,
        "attributes_per_entity": 2.5, "seed_ratio": 0.2, "base_seed": 11,
    },
    "FBYG15K": {
        "num_relations_source": 40, "num_relations_target": 6,
        "num_attributes_source": 12, "num_attributes_target": 5,
        "image_coverage_source": 0.90, "image_coverage_target": 0.73,
        "attribute_coverage_source": 0.75, "attribute_coverage_target": 0.65,
        "edge_noise_target": 0.12, "triple_ratio_target": 0.5,
        "attributes_per_entity": 2.0, "seed_ratio": 0.2, "base_seed": 23,
    },
    "DBP15K_ZH_EN": {
        "num_relations_source": 34, "num_relations_target": 28,
        "num_attributes_source": 60, "num_attributes_target": 55,
        "image_coverage_source": 0.82, "image_coverage_target": 0.72,
        "attribute_coverage_source": 0.92, "attribute_coverage_target": 0.92,
        "edge_noise_target": 0.22, "triple_ratio_target": 0.9,
        "attributes_per_entity": 4.0, "seed_ratio": 0.3, "base_seed": 37,
    },
    "DBP15K_JA_EN": {
        "num_relations_source": 30, "num_relations_target": 26,
        "num_attributes_source": 50, "num_attributes_target": 52,
        "image_coverage_source": 0.64, "image_coverage_target": 0.69,
        "attribute_coverage_source": 0.92, "attribute_coverage_target": 0.92,
        "edge_noise_target": 0.20, "triple_ratio_target": 0.9,
        "attributes_per_entity": 4.0, "seed_ratio": 0.3, "base_seed": 41,
    },
    "DBP15K_FR_EN": {
        "num_relations_source": 22, "num_relations_target": 28,
        "num_attributes_source": 45, "num_attributes_target": 55,
        "image_coverage_source": 0.72, "image_coverage_target": 0.69,
        "attribute_coverage_source": 0.92, "attribute_coverage_target": 0.92,
        "edge_noise_target": 0.18, "triple_ratio_target": 0.9,
        "attributes_per_entity": 4.0, "seed_ratio": 0.3, "base_seed": 53,
    },
}


@dataclass(frozen=True)
class BenchmarkSplit:
    """One entry of the 60-split suite."""

    dataset: str
    seed_ratio: float
    image_ratio: float | None = None
    text_ratio: float | None = None

    @property
    def identifier(self) -> str:
        parts = [self.dataset, f"seed{int(round(self.seed_ratio * 100))}"]
        if self.image_ratio is not None:
            parts.append(f"img{int(round(self.image_ratio * 100))}")
        if self.text_ratio is not None:
            parts.append(f"tex{int(round(self.text_ratio * 100))}")
        return "-".join(parts)


def is_bilingual(dataset: str) -> bool:
    """True for DBP15K-style cross-lingual datasets."""
    return dataset in BILINGUAL_DATASETS


def dataset_preset(dataset: str,
                   num_entities: int = DEFAULT_NUM_ENTITIES,
                   seed: int | None = None) -> SyntheticPairConfig:
    """Return the synthetic configuration replicating ``dataset``."""
    if dataset not in _PRESET_TRAITS:
        raise KeyError(f"unknown dataset {dataset!r}; choose one of {ALL_DATASETS}")
    traits = dict(_PRESET_TRAITS[dataset])
    base_seed = int(traits.pop("base_seed"))
    return SyntheticPairConfig(
        num_entities=num_entities,
        num_communities=max(4, num_entities // 25),
        name=dataset,
        seed=base_seed if seed is None else seed,
        **traits,
    )


def load_benchmark(dataset: str,
                   seed_ratio: float | None = None,
                   image_ratio: float | None = None,
                   text_ratio: float | None = None,
                   num_entities: int = DEFAULT_NUM_ENTITIES,
                   seed: int | None = None) -> KGPair:
    """Materialise a benchmark split as a :class:`KGPair`.

    ``image_ratio`` / ``text_ratio`` restrict the fraction of entities (in
    *both* graphs) that keep their visual / textual modality, replicating the
    ``R_img`` and ``R_tex`` splits of Tables II and III.
    """
    config = dataset_preset(dataset, num_entities=num_entities, seed=seed)
    pair = generate_pair(config)
    if seed_ratio is not None:
        pair = pair.with_seed_ratio(seed_ratio)
    if image_ratio is None and text_ratio is None:
        return pair

    mask_rng = np.random.default_rng(config.seed + 9973)
    source, target = pair.source, pair.target
    if image_ratio is not None:
        source = source.with_image_ratio(image_ratio, mask_rng)
        target = target.with_image_ratio(image_ratio, mask_rng)
    if text_ratio is not None:
        source = source.with_attribute_ratio(text_ratio, mask_rng)
        target = target.with_attribute_ratio(text_ratio, mask_rng)
    return KGPair(
        source=source,
        target=target,
        alignments=list(pair.alignments),
        seed_ratio=pair.seed_ratio,
        name=pair.name,
    )


def benchmark_suite() -> list[BenchmarkSplit]:
    """Enumerate the full 60-split suite proposed by the paper.

    * 2 monolingual datasets × 3 seed ratios = 6 standard splits,
    * 3 bilingual datasets × 1 seed ratio = 3 standard splits,
    * 2 monolingual datasets × 6 text ratios = 12 ``R_tex`` splits,
    * 3 bilingual datasets × 6 image ratios = 18 ``R_img`` splits,
    * 2 datasets × 9 weak-supervision ratios = 18 weakly supervised splits,
    * 3 extra high-inconsistency propagation-analysis splits,
    totalling 60 distinct evaluation configurations.
    """
    splits: list[BenchmarkSplit] = []
    for dataset in MONOLINGUAL_DATASETS:
        for seed_ratio in (0.2, 0.5, 0.8):
            splits.append(BenchmarkSplit(dataset, seed_ratio))
    for dataset in BILINGUAL_DATASETS:
        splits.append(BenchmarkSplit(dataset, 0.3))
    for dataset in MONOLINGUAL_DATASETS:
        for ratio in MISSING_RATIOS:
            splits.append(BenchmarkSplit(dataset, 0.2, text_ratio=ratio))
    for dataset in BILINGUAL_DATASETS:
        for ratio in MISSING_RATIOS:
            splits.append(BenchmarkSplit(dataset, 0.3, image_ratio=ratio))
    # Weakly supervised sweep (Fig. 3 right); 30% is already covered by the
    # standard splits above, so the sweep stops just below it to keep the
    # suite free of duplicates.
    for dataset in ("FBDB15K", "DBP15K_FR_EN"):
        for seed_ratio in (0.01, 0.03, 0.05, 0.08, 0.12, 0.15, 0.19, 0.23, 0.26):
            splits.append(BenchmarkSplit(dataset, seed_ratio))
    splits.append(BenchmarkSplit("FBDB15K", 0.25, image_ratio=0.5))
    splits.append(BenchmarkSplit("FBYG15K", 0.25, image_ratio=0.5))
    splits.append(BenchmarkSplit("DBP15K_ZH_EN", 0.3, text_ratio=0.5))
    return splits
