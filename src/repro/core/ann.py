"""Approximate candidate generation for sub-quadratic similarity decoding.

The blockwise streaming engine (:mod:`repro.core.similarity`) removed the
``O(n_s · n_t)`` *memory* of decoding but still computes every source-target
dot product.  This module supplies the third scaling layer: per-source-row
**candidate sets** that restrict the streamed decode to a small fraction of
the similarity cells, so decode FLOPs drop below ``O(n_s · n_t)``.

Two candidate generators are provided, both deterministic for a fixed seed:

* :class:`IVFIndex` — a k-means coarse quantiser over the target embeddings
  with inverted bucket lists.  Queries probe their ``nprobe`` nearest
  centroids; an optional *exact-escalation* mode keeps probing buckets in
  descending centroid-score order until the triangle-inequality bound

  ``sim(q, x) = q·μ_c + q·(x − μ_c)  ≤  q·μ_c + ‖q‖ · r_c``

  (``r_c`` the bucket radius) proves no unprobed bucket can beat the best
  score found, which guarantees a provably correct top-1 per row — the
  property mutual-NN pseudo-seeding needs.  Escalation runs in both
  directions (targets probed from sources and vice versa), so the running
  column argmax of the restricted decode is exact too and the streamed
  mutual-NN pair set matches the dense selection wherever scores are
  untied.

* :class:`RandomHyperplaneLSH` — sign-random-projection hashing with
  several independent tables; a query's candidates are the union of its
  colliding buckets.  Cheaper to build than IVF (no k-means) but with no
  exactness bound, hence no escalation mode.

The candidate sets feed :func:`repro.core.similarity.blockwise_topk` as a
sparse gather (``row_candidates=``) instead of full block matmuls; the
resulting :class:`~repro.core.similarity.TopKSimilarity` is flagged
``approximate`` and every consumer that would be silently lossy on it
(CSLS ranking, exact-row fallbacks) refuses instead of degrading.

All candidate generation and the restricted decode report their work to an
optional :func:`flops_counter`, measured in *similarity cells* (one cell is
one d-dimensional dot product) so benchmarks can enforce a FLOPs budget
relative to the ``n_s · n_t`` exhaustive decode.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, replace

import numpy as np

from .registries import CANDIDATE_REGISTRY, register_candidate_generator

__all__ = [
    "AnnConfig",
    "RowCandidates",
    "GroupedRowCandidates",
    "IVFIndex",
    "IVFWarmStart",
    "RandomHyperplaneLSH",
    "generate_candidates",
    "resolve_ann",
    "recall_at_k",
    "flops_counter",
    "count_dot_products",
    "paused_flops_counting",
]


# ---------------------------------------------------------------------------
# FLOPs accounting (similarity cells = d-dimensional dot products)
# ---------------------------------------------------------------------------
class _CellCounter:
    """Accumulates the number of similarity cells (dot products) computed."""

    def __init__(self) -> None:
        self.cells = 0

    def add(self, cells: int) -> None:
        self.cells += int(cells)


_COUNTER_STACK: list[_CellCounter] = []


class flops_counter:
    """Context manager counting every dot product computed inside its scope.

    Candidate generation (k-means, centroid scoring, LSH projections) and
    the blockwise decode both report to the innermost active counter, so

    >>> with flops_counter() as counter:
    ...     topk = blockwise_topk(source, target, row_candidates=cands)
    >>> counter.cells

    is the full cost of the approximate decode in units of one
    ``d``-dimensional dot product — directly comparable to the
    ``n_s · n_t`` cells of the exhaustive decode.
    """

    def __enter__(self) -> _CellCounter:
        self._counter = _CellCounter()
        _COUNTER_STACK.append(self._counter)
        return self._counter

    def __exit__(self, *exc_info) -> None:
        _COUNTER_STACK.remove(self._counter)


def count_dot_products(cells: int) -> None:
    """Report ``cells`` dot products to every active :func:`flops_counter`."""
    for counter in _COUNTER_STACK:
        counter.add(cells)


@contextmanager
def paused_flops_counting():
    """Temporarily detach every active counter.

    The sharded decode driver charges the merged partials' cell counts to
    the parent's counters once (forked workers' counters live in the child
    processes and never propagate back); its in-process fallback therefore
    runs under this pause so the same cells are not charged twice.
    """
    saved = _COUNTER_STACK[:]
    _COUNTER_STACK.clear()
    try:
        yield
    finally:
        _COUNTER_STACK.extend(saved)


# ---------------------------------------------------------------------------
# Configuration
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class AnnConfig:
    """Knobs of the candidate-generation layer.

    Attributes
    ----------
    n_clusters:
        IVF coarse-quantiser size; ``None`` derives ``≈ sqrt(n_t)``.
    nprobe:
        Buckets probed per query; ``None`` derives ``max(1, n_clusters // 10)``.
        ``nprobe >= n_clusters`` probes everything, which reproduces the
        exhaustive blockwise decode bit for bit: :func:`generate_candidates`
        short-circuits to ``None`` (no candidate structure is materialised)
        and the engine takes the identical GEMM path.
    kmeans_iters:
        Lloyd iterations of the coarse quantiser.
    exact_escalation:
        Probe buckets until the centroid-plus-radius bound proves the top-1
        exact, in both directions (see module docstring).  Required by the
        iterative trainer's mutual-NN pseudo-seeding; unsupported for LSH.
    tables, hyperplanes:
        LSH shape: number of independent hash tables and sign bits per table.
    min_candidates:
        Optional per-row floor on the candidate count (the decode itself
        additionally pads every row to at least its stored ``k``).
    adaptive_slack:
        Per-query adaptive ``nprobe`` for escalated IVF probing: a query
        stops probing once its best score is within ``adaptive_slack`` of
        the centroid-plus-radius bound over its unprobed buckets.  ``0.0``
        (the default) is the provably exact stop; larger values trade
        recall for FLOPs — the top-1 exactness proof no longer holds, so
        combine with ``exact_escalation`` only where near-exact suffices.
    gather:
        How the restricted decode materialises candidate cells:
        ``"edge"`` (default) gathers one dot product per candidate edge via
        ``einsum``; ``"bucket"`` (IVF only) groups each block's cells by
        IVF bucket and decodes every (query group, bucket) pair with one
        dense matmul — same cells, GEMM throughput.  BLAS accumulation
        order differs from the per-edge gather, so scores may move in the
        last ulp; keep ``"edge"`` where bit-stability against existing
        decodes matters.
    train_size:
        Optional cap on the vectors k-means trains on: Lloyd iterates on a
        seeded subsample of this size, then every vector is assigned to the
        trained centroids in one chunked pass.  Makes million-vector
        (memory-mapped) index builds tractable; ``None`` trains on all
        vectors.
    seed:
        Seed of k-means initialisation / hyperplane draws.  ``None`` means
        "inherit from the caller" — the model / trainer substitutes its own
        configured seed so one ``TrainingConfig.seed`` drives the sampler,
        the loader and the quantiser alike.
    """

    n_clusters: int | None = None
    nprobe: int | None = None
    kmeans_iters: int = 8
    exact_escalation: bool = False
    tables: int = 8
    hyperplanes: int = 12
    min_candidates: int | None = None
    adaptive_slack: float = 0.0
    gather: str = "edge"
    train_size: int | None = None
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.n_clusters is not None and self.n_clusters <= 0:
            raise ValueError("n_clusters must be positive")
        if self.nprobe is not None and self.nprobe <= 0:
            raise ValueError("nprobe must be positive")
        if self.kmeans_iters < 0:
            raise ValueError("kmeans_iters must be non-negative")
        if self.tables <= 0 or self.hyperplanes <= 0:
            raise ValueError("tables and hyperplanes must be positive")
        if self.min_candidates is not None and self.min_candidates <= 0:
            raise ValueError("min_candidates must be positive")
        if self.adaptive_slack < 0.0:
            raise ValueError("adaptive_slack must be non-negative")
        if self.gather not in ("edge", "bucket"):
            raise ValueError("gather must be 'edge' or 'bucket'")
        if self.train_size is not None and self.train_size <= 0:
            raise ValueError("train_size must be positive")

    def with_overrides(self, **kwargs) -> "AnnConfig":
        """Return a copy with selected fields replaced."""
        return replace(self, **kwargs)

    def resolved_seed(self, default: int = 0) -> int:
        return self.seed if self.seed is not None else default


def resolve_ann(ann: "AnnConfig | None", default_seed: int) -> "AnnConfig":
    """The seed-inheritance rule, in one place.

    Every caller that owns a seed (model config, training config, baseline
    config) resolves its candidate-generation config through this helper so
    an ``AnnConfig`` without an explicit seed inherits the caller's — the
    invariant behind repeat-run determinism.
    """
    ann = ann or AnnConfig()
    if ann.seed is None:
        ann = ann.with_overrides(seed=default_seed)
    return ann


# ---------------------------------------------------------------------------
# Per-row candidate sets
# ---------------------------------------------------------------------------
def _dedupe_pairs(rows: np.ndarray, cols: np.ndarray, num_rows: int,
                  num_columns: int) -> tuple[np.ndarray, np.ndarray]:
    """CSR (indptr, indices) from (row, col) pairs: sorted, unique per row.

    Pairs are packed into one ``row * num_columns + col`` composite key so
    a single flat ``np.sort`` (far faster than a two-key lexsort at the
    10⁸-pair scale of a 50k × 50k decode) yields the per-row ascending
    order and makes duplicates adjacent.
    """
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    if len(rows) != len(cols):
        raise ValueError("rows and cols must have the same length")
    if num_rows * num_columns > np.iinfo(np.int64).max:  # pragma: no cover
        raise ValueError("candidate shape too large for composite-key packing")
    if len(rows):
        composite = rows * num_columns + cols
        composite.sort()
        keep = np.ones(len(composite), dtype=bool)
        keep[1:] = composite[1:] != composite[:-1]
        composite = composite[keep]
        rows = composite // num_columns
        cols = composite % num_columns
    indptr = np.zeros(num_rows + 1, dtype=np.int64)
    np.cumsum(np.bincount(rows, minlength=num_rows), out=indptr[1:])
    return indptr, cols


@dataclass
class RowCandidates:
    """CSR-shaped per-source-row candidate target sets.

    ``indices[indptr[i]:indptr[i + 1]]`` holds row ``i``'s candidate target
    ids, sorted ascending and unique — the invariant the restricted decode
    relies on for its argmax-compatible tie semantics.
    """

    indptr: np.ndarray
    indices: np.ndarray
    num_columns: int

    def __post_init__(self) -> None:
        self.indptr = np.asarray(self.indptr, dtype=np.int64)
        self.indices = np.asarray(self.indices, dtype=np.int64)
        if self.indptr.ndim != 1 or len(self.indptr) < 1:
            raise ValueError("indptr must be a non-empty 1-D array")
        if self.indptr[0] != 0 or self.indptr[-1] != len(self.indices):
            raise ValueError("indptr must start at 0 and end at len(indices)")
        if len(self.indices) and (self.indices.min() < 0
                                  or self.indices.max() >= self.num_columns):
            raise ValueError("candidate ids out of range")

    # ------------------------------------------------------------------
    @classmethod
    def from_pairs(cls, rows, cols, num_rows: int, num_columns: int) -> "RowCandidates":
        """Build from (row, col) index pairs (duplicates allowed)."""
        indptr, indices = _dedupe_pairs(rows, cols, num_rows, num_columns)
        return cls(indptr=indptr, indices=indices, num_columns=num_columns)

    @classmethod
    def complete(cls, num_rows: int, num_columns: int) -> "RowCandidates":
        """Every column a candidate of every row (the exhaustive set)."""
        indptr = np.arange(num_rows + 1, dtype=np.int64) * num_columns
        indices = np.tile(np.arange(num_columns, dtype=np.int64), num_rows)
        return cls(indptr=indptr, indices=indices, num_columns=num_columns)

    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        return len(self.indptr) - 1

    @property
    def counts(self) -> np.ndarray:
        return np.diff(self.indptr)

    @property
    def total(self) -> int:
        return int(len(self.indices))

    @property
    def density(self) -> float:
        """Fraction of the ``num_rows · num_columns`` cells covered."""
        cells = self.num_rows * self.num_columns
        return self.total / cells if cells else 0.0

    def row(self, i: int) -> np.ndarray:
        return self.indices[self.indptr[i]:self.indptr[i + 1]]

    def is_complete(self) -> bool:
        """True when every row holds every column (exhaustive coverage)."""
        return bool(np.all(self.counts == self.num_columns))

    # ------------------------------------------------------------------
    def union(self, other: "RowCandidates") -> "RowCandidates":
        """Row-wise set union of two candidate structures."""
        if self.num_rows != other.num_rows or self.num_columns != other.num_columns:
            raise ValueError("candidate shapes differ")
        rows = np.concatenate([
            np.repeat(np.arange(self.num_rows), self.counts),
            np.repeat(np.arange(other.num_rows), other.counts),
        ])
        cols = np.concatenate([self.indices, other.indices])
        return RowCandidates.from_pairs(rows, cols, self.num_rows, self.num_columns)

    def transposed(self, num_columns: int | None = None) -> "RowCandidates":
        """Swap the row/column roles (used by reverse escalation)."""
        rows = np.repeat(np.arange(self.num_rows), self.counts)
        return RowCandidates.from_pairs(
            self.indices, rows, self.num_columns,
            num_columns if num_columns is not None else self.num_rows)

    def select_rows(self, rows) -> "RowCandidates":
        """Candidate sets of a row subset (rows renumbered 0..len(rows)-1).

        Row ``i`` of the result holds exactly the candidates of input row
        ``rows[i]`` — the slice the row-subset decode
        (:meth:`repro.pipeline.Aligner.rank`) feeds ``blockwise_topk``, so a
        partial decode restricted to these rows computes the same cells the
        full decode would for them.  Duplicate ids are allowed (the serving
        engine pads single-row decodes).
        """
        rows = np.asarray(rows, dtype=np.int64).reshape(-1)
        if len(rows) and (rows.min() < 0 or rows.max() >= self.num_rows):
            raise ValueError("row ids out of range")
        counts = self.counts[rows]
        positions = _flat_bucket_positions(self.indptr[rows], counts)
        indptr = np.zeros(len(rows) + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return RowCandidates(indptr=indptr, indices=self.indices[positions],
                             num_columns=self.num_columns)

    # ------------------------------------------------------------------
    def gather_values(self, source_norm: list[np.ndarray],
                      target_norm: list[np.ndarray],
                      start: int, stop: int,
                      rows_local: np.ndarray, cols: np.ndarray,
                      dtype) -> np.ndarray:
        """Round-averaged similarity of the block's candidate cells.

        ``rows_local`` / ``cols`` name the cells of decode rows
        ``[start, stop)`` (``rows_local`` relative to ``start``); the return
        value is float64, aligned with ``cols``.  The base implementation is
        the per-edge ``einsum`` gather; :class:`GroupedRowCandidates`
        overrides it with one dense matmul per IVF bucket.  Every cell's
        value depends only on its own two rows, so the decode engine may
        call this for any row range — sharded and single-process scans
        compute identical values.
        """
        num_rounds = len(source_norm)
        count_dot_products(len(cols) * num_rounds)
        values = np.zeros(len(cols), dtype=dtype)
        for round_index in range(num_rounds):
            values = values + np.einsum(
                "ed,ed->e", source_norm[round_index][start + rows_local],
                target_norm[round_index][cols])
        values = np.asarray(values, dtype=np.float64)
        if num_rounds > 1:
            values = values / num_rounds
        return values

    def padded(self, min_count: int) -> "RowCandidates":
        """Ensure every row holds at least ``min_count`` candidates.

        Deficient rows are topped up with the smallest column ids not
        already present — a handful of extra exact dot products per row,
        which keeps every downstream top-k / rank consumer free of
        shorter-than-k rows without distorting the stored scores.
        """
        min_count = min(int(min_count), self.num_columns)
        counts = self.counts
        deficient = np.flatnonzero(counts < min_count)
        if len(deficient) == 0:
            return self
        # Vectorised top-up: a deficient row holds < min_count candidates, so
        # the smallest min_count missing ids all fall below
        # min_count + count < 2 * min_count — a bounded window per row.  A
        # stable argsort of the presence mask lists the absent columns first,
        # in ascending id order.
        deficient_counts = counts[deficient]
        limit = min(self.num_columns, int(min_count + deficient_counts.max()))
        positions = _flat_bucket_positions(self.indptr[deficient], deficient_counts)
        have_cols = self.indices[positions]
        have_rows = np.repeat(np.arange(len(deficient)), deficient_counts)
        present = np.zeros((len(deficient), limit), dtype=bool)
        in_window = have_cols < limit
        present[have_rows[in_window], have_cols[in_window]] = True
        absent_first = np.argsort(present, axis=1, kind="stable")
        needed = min_count - deficient_counts
        take = np.arange(limit)[None, :] < needed[:, None]
        extra_cols = absent_first[take]
        extra_rows = np.repeat(deficient, needed)
        rows = np.concatenate([np.repeat(np.arange(self.num_rows), counts),
                               extra_rows])
        cols = np.concatenate([self.indices, extra_cols])
        return RowCandidates.from_pairs(rows, cols, self.num_rows, self.num_columns)


@dataclass
class GroupedRowCandidates(RowCandidates):
    """Candidate sets that know each target column's IVF bucket.

    The extra ``bucket_of`` map (one bucket id per target column, from the
    forward IVF index's assignments) lets :meth:`gather_values` regroup a
    decode block's candidate cells by bucket and compute each
    (query group, bucket) pair with one dense matmul instead of per-edge
    ``einsum`` — IVF candidates are exactly block-structured this way,
    since a query that probes a bucket holds *all* its members.  Cells that
    break the structure (padding top-ups, reverse-escalation unions) just
    make their bucket's rectangle slightly sparser; the matmul computes the
    covering rectangle and the gather keeps only the candidate cells.

    The CSR invariants (and therefore every selection/tie-break rule of the
    restricted decode) are untouched — only the numeric gather changes, so
    scores may differ from the per-edge path in the last ulp (BLAS
    accumulation order).  Set-algebra helpers (``union``, ``select_rows``,
    ``transposed``) intentionally return plain :class:`RowCandidates`.
    """

    bucket_of: np.ndarray | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.bucket_of is None:
            raise ValueError("bucket_of is required")
        self.bucket_of = np.asarray(self.bucket_of, dtype=np.int64)
        if self.bucket_of.ndim != 1 or len(self.bucket_of) != self.num_columns:
            raise ValueError("bucket_of must map every target column to a bucket")

    @classmethod
    def from_candidates(cls, base: RowCandidates,
                        bucket_of: np.ndarray) -> "GroupedRowCandidates":
        return cls(indptr=base.indptr, indices=base.indices,
                   num_columns=base.num_columns, bucket_of=bucket_of)

    def padded(self, min_count: int) -> "GroupedRowCandidates":
        base = super().padded(min_count)
        if base is self:
            return self
        return GroupedRowCandidates.from_candidates(base, self.bucket_of)

    def gather_values(self, source_norm: list[np.ndarray],
                      target_norm: list[np.ndarray],
                      start: int, stop: int,
                      rows_local: np.ndarray, cols: np.ndarray,
                      dtype) -> np.ndarray:
        num_rounds = len(source_norm)
        values = np.empty(len(cols), dtype=np.float64)
        if not len(cols):
            return values
        buckets = self.bucket_of[cols]
        order = np.argsort(buckets, kind="stable")
        sorted_buckets = buckets[order]
        edges = np.flatnonzero(sorted_buckets[1:] != sorted_buckets[:-1]) + 1
        segments = np.concatenate([[0], edges, [len(order)]])
        cells = 0
        for seg in range(len(segments) - 1):
            idx = order[segments[seg]:segments[seg + 1]]
            unique_rows, row_pos = np.unique(rows_local[idx], return_inverse=True)
            unique_cols, col_pos = np.unique(cols[idx], return_inverse=True)
            cells += len(unique_rows) * len(unique_cols)
            block = (source_norm[0][start + unique_rows]
                     @ target_norm[0][unique_cols].T)
            for round_index in range(1, num_rounds):
                block = block + (source_norm[round_index][start + unique_rows]
                                 @ target_norm[round_index][unique_cols].T)
            block = np.asarray(block, dtype=np.float64)
            if num_rounds > 1:
                block = block / num_rounds
            values[idx] = block[row_pos, col_pos]
        count_dot_products(cells * num_rounds)
        return values


# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------
def _normalize_rows(matrix: np.ndarray) -> np.ndarray:
    matrix = np.asarray(matrix, dtype=np.float64)
    norms = np.maximum(np.linalg.norm(matrix, axis=1, keepdims=True), 1e-12)
    return matrix / norms


def _concat_states(states) -> np.ndarray:
    """Round-concatenated normalised embeddings.

    The round-averaged similarity is ``(1/R) Σ_r ŝ_r · t̂_r``, i.e. a
    positive multiple of the dot product of the per-round-normalised
    concatenations — so nearest-neighbour structure (and hence candidate
    generation) on the concatenation is exactly the structure of the
    averaged similarity.
    """
    if isinstance(states, np.ndarray):
        states = [states]
    return np.concatenate([_normalize_rows(np.asarray(s)) for s in states], axis=1)


def _flat_bucket_positions(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    exclusive = np.cumsum(counts) - counts
    offsets = np.arange(total) - np.repeat(exclusive, counts)
    return np.repeat(starts, counts) + offsets


# ---------------------------------------------------------------------------
# IVF (k-means coarse quantiser + inverted buckets)
# ---------------------------------------------------------------------------
class IVFIndex:
    """Inverted-file index over a vector set, bucketed by k-means cells.

    Similarity is the plain dot product (callers pass normalised — possibly
    round-concatenated — embeddings, making it cosine / round-averaged
    cosine).  k-means runs on the same dot-product geometry via Euclidean
    distance of the stored vectors; every random draw comes from one seeded
    generator so the index is bit-reproducible.
    """

    #: Vectors per chunk of the assignment / distance passes.  Keeps every
    #: transient at ``O(chunk · n_clusters)`` so memory-mapped tables are
    #: never materialised in full.
    ASSIGN_CHUNK = 65536

    def __init__(self, vectors: np.ndarray, n_clusters: int | None = None,
                 kmeans_iters: int = 8, seed: int = 0,
                 init_centroids: np.ndarray | None = None,
                 train_size: int | None = None):
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2 or len(vectors) == 0:
            raise ValueError("vectors must be a non-empty 2-D array")
        self.vectors = vectors
        num = len(vectors)
        if n_clusters is None:
            n_clusters = max(1, int(round(np.sqrt(num))))
        self.n_clusters = min(int(n_clusters), num)
        rng = np.random.default_rng(seed)

        # Lloyd's training set: everything by default; a seeded subsample
        # when train_size caps it (the million-vector out-of-core build).
        # Assignment quality barely depends on training every point, but
        # the final full assignment below always covers every vector.
        if train_size is not None and int(train_size) < num:
            train_size = max(int(train_size), self.n_clusters)
            sample = np.sort(rng.choice(num, size=train_size, replace=False))
            train = np.array(vectors[sample], dtype=np.float64)
        else:
            train = vectors

        if (init_centroids is not None
                and init_centroids.shape == (self.n_clusters, vectors.shape[1])):
            # Warm start (e.g. the previous iterative-training round's
            # centroids): Lloyd refines an already-good quantisation, so the
            # convergence early-exit below usually fires after one pass.
            centroids = np.asarray(init_centroids, dtype=np.float64).copy()
        else:
            centroids = train[rng.choice(len(train), size=self.n_clusters,
                                         replace=False)].copy()
        # kmeans_iters=0 keeps the raw initial-centroid bucketing; the final
        # assignment below always runs.
        previous_assignments: np.ndarray | None = None
        for _ in range(int(kmeans_iters)):
            assignments = self._assign(train, centroids)
            if (previous_assignments is not None
                    and np.array_equal(assignments, previous_assignments)):
                # Unchanged assignments mean the following centroid update
                # recomputes the same means: Lloyd has converged and every
                # remaining iteration is a bit-identical no-op — skip them.
                break
            previous_assignments = assignments
            sums = np.zeros_like(centroids)
            np.add.at(sums, assignments, train)
            counts = np.bincount(assignments, minlength=self.n_clusters)
            occupied = counts > 0
            centroids[occupied] = sums[occupied] / counts[occupied, None]
            if not occupied.all():
                # Reseed empty cells on the points farthest from their own
                # centroid — deterministic, and it keeps buckets balanced
                # enough that nprobe candidate counts stay predictable.
                distances = self._centroid_distances(train, centroids, assignments)
                farthest = np.argsort(-distances)
                centroids[~occupied] = train[farthest[:int((~occupied).sum())]]
                previous_assignments = None
        self.assignments = self._assign(vectors, centroids)
        self.centroids = centroids

        # The stable argsort groups members by cluster while keeping ids
        # ascending within every bucket — the order the candidate decode's
        # tie semantics rely on.
        order = np.argsort(self.assignments, kind="stable")
        self.bucket_indices = order.astype(np.int64)
        bucket_counts = np.bincount(self.assignments, minlength=self.n_clusters)
        self.bucket_indptr = np.zeros(self.n_clusters + 1, dtype=np.int64)
        np.cumsum(bucket_counts, out=self.bucket_indptr[1:])

        radii = np.zeros(self.n_clusters, dtype=np.float64)
        for lo in range(0, num, self.ASSIGN_CHUNK):
            hi = min(lo + self.ASSIGN_CHUNK, num)
            chunk_assignments = self.assignments[lo:hi]
            deltas = vectors[lo:hi] - centroids[chunk_assignments]
            np.maximum.at(radii, chunk_assignments,
                          np.linalg.norm(deltas, axis=1))
        self.radii = radii
        #: Vectors appended by :meth:`insert` since this fit — the
        #: staleness counter incremental callers consult to schedule a
        #: :meth:`refit` re-quantisation.
        self.num_inserted = 0

    # ------------------------------------------------------------------
    def _assign(self, vectors: np.ndarray, centroids: np.ndarray) -> np.ndarray:
        """Nearest centroid (Euclidean) per vector; first index wins ties.

        Chunked so the ``(n, n_clusters)`` score matrix never materialises
        — each row's argmax is independent, so the result is identical to
        the one-shot computation.
        """
        count_dot_products(len(vectors) * len(centroids))
        sq = 0.5 * np.sum(centroids ** 2, axis=1)
        out = np.empty(len(vectors), dtype=np.int64)
        for lo in range(0, len(vectors), self.ASSIGN_CHUNK):
            hi = min(lo + self.ASSIGN_CHUNK, len(vectors))
            cross = np.asarray(vectors[lo:hi], dtype=np.float64) @ centroids.T
            out[lo:hi] = np.argmax(cross - sq[None, :], axis=1)
        return out

    def _centroid_distances(self, vectors: np.ndarray, centroids: np.ndarray,
                            assignments: np.ndarray) -> np.ndarray:
        """Per-vector distance to its assigned centroid, chunked."""
        distances = np.empty(len(vectors), dtype=np.float64)
        for lo in range(0, len(vectors), self.ASSIGN_CHUNK):
            hi = min(lo + self.ASSIGN_CHUNK, len(vectors))
            deltas = vectors[lo:hi] - centroids[assignments[lo:hi]]
            distances[lo:hi] = np.linalg.norm(deltas, axis=1)
        return distances

    def centroid_scores(self, queries: np.ndarray) -> np.ndarray:
        """Dot product of every query against every centroid."""
        count_dot_products(len(queries) * self.n_clusters)
        return np.asarray(queries, dtype=np.float64) @ self.centroids.T

    def default_nprobe(self) -> int:
        return max(1, self.n_clusters // 10)

    # ------------------------------------------------------------------
    def insert(self, new_vectors: np.ndarray) -> np.ndarray:
        """Online insert: bucket new vectors by nearest centroid, no re-train.

        The centroids stay fixed; the new vectors are appended (their ids
        continue the existing range), assigned to their nearest centroid,
        and the bucket CSR is rebuilt with one stable argsort — ids remain
        ascending within every bucket, preserving the candidate decode's
        tie semantics.  Bucket radii only grow, so
        :meth:`escalated_candidates` bounds stay valid.  Returns the new
        vectors' bucket assignments; ``num_inserted`` accumulates until a
        :meth:`refit` re-quantises (quantisation quality degrades slowly as
        inserts pile up, which is the staleness that counter measures).
        """
        new_vectors = np.asarray(new_vectors, dtype=np.float64)
        if new_vectors.ndim != 2 or new_vectors.shape[1] != self.vectors.shape[1]:
            raise ValueError(
                f"new vectors must be 2-D with dim {self.vectors.shape[1]}")
        if len(new_vectors) == 0:
            return np.empty(0, dtype=np.int64)
        assignments = self._assign(new_vectors, self.centroids)
        # Concatenation materialises a memory-mapped base; incremental
        # deltas are small relative to the index so this stays bounded.
        self.vectors = np.concatenate(
            [np.asarray(self.vectors, dtype=np.float64), new_vectors])
        self.assignments = np.concatenate([self.assignments, assignments])
        order = np.argsort(self.assignments, kind="stable")
        self.bucket_indices = order.astype(np.int64)
        bucket_counts = np.bincount(self.assignments, minlength=self.n_clusters)
        self.bucket_indptr = np.zeros(self.n_clusters + 1, dtype=np.int64)
        np.cumsum(bucket_counts, out=self.bucket_indptr[1:])
        deltas = new_vectors - self.centroids[assignments]
        np.maximum.at(self.radii, assignments, np.linalg.norm(deltas, axis=1))
        self.num_inserted += len(new_vectors)
        return assignments

    def refit(self, *, kmeans_iters: int = 8, seed: int = 0,
              train_size: int | None = None) -> "IVFIndex":
        """Re-quantise every vector, warm-started from the current centroids.

        The subsampled (``train_size=``) k-means starts from this index's
        centroids, so Lloyd refines rather than re-derives the cells; the
        returned index covers all vectors (inserted ones included) with a
        reset staleness counter.
        """
        return IVFIndex(self.vectors, n_clusters=self.n_clusters,
                        kmeans_iters=kmeans_iters, seed=seed,
                        init_centroids=self.centroids, train_size=train_size)

    def candidates(self, queries: np.ndarray, nprobe: int | None = None) -> RowCandidates:
        """Members of each query's ``nprobe`` best-scoring buckets."""
        queries = np.asarray(queries, dtype=np.float64)
        nprobe = self.default_nprobe() if nprobe is None else int(nprobe)
        if nprobe <= 0:
            raise ValueError("nprobe must be positive")
        nprobe = min(nprobe, self.n_clusters)
        scores = self.centroid_scores(queries)
        if nprobe < self.n_clusters:
            probed = np.argpartition(scores, self.n_clusters - nprobe,
                                     axis=1)[:, self.n_clusters - nprobe:]
        else:
            probed = np.broadcast_to(np.arange(self.n_clusters), scores.shape)
        clusters = probed.ravel()
        query_of_probe = np.repeat(np.arange(len(queries)), probed.shape[1])
        starts = self.bucket_indptr[clusters]
        counts = self.bucket_indptr[clusters + 1] - starts
        positions = _flat_bucket_positions(starts, counts)
        cols = self.bucket_indices[positions]
        rows = np.repeat(query_of_probe, counts)
        return RowCandidates.from_pairs(rows, cols, len(queries), len(self.vectors))

    def escalated_candidates(self, queries: np.ndarray,
                             slack: float = 0.0) -> RowCandidates:
        """Probe buckets per query until the top-1 is provably exact.

        Buckets are visited in descending centroid-score order; a query
        stops as soon as its best score so far is at least the maximum
        ``q·μ_c + ‖q‖·r_c`` bound over its unprobed buckets, at which point
        no unprobed vector can strictly beat the best found.

        ``slack > 0`` is the per-query *adaptive nprobe* relaxation: a
        query already stops when its best score is within ``slack`` of the
        bound.  Any unprobed vector can then beat the best by at most
        ``slack``, so recall degrades gracefully as the dial opens while
        easy queries (whose bound closes immediately) stay exact and cheap;
        ``slack=0.0`` reproduces the exact escalation bit for bit.
        """
        if slack < 0.0:
            raise ValueError("slack must be non-negative")
        queries = np.asarray(queries, dtype=np.float64)
        num_queries = len(queries)
        scores = self.centroid_scores(queries)
        order = np.argsort(-scores, axis=1)
        norms = np.linalg.norm(queries, axis=1)
        bounds = (np.take_along_axis(scores, order, axis=1)
                  + norms[:, None] * self.radii[order])
        # suffix_max[:, p] = best possible score among probe positions >= p
        suffix_max = np.maximum.accumulate(bounds[:, ::-1], axis=1)[:, ::-1]

        best = np.full(num_queries, -np.inf)
        active = np.arange(num_queries)
        collected_rows: list[np.ndarray] = []
        collected_cols: list[np.ndarray] = []
        for position in range(self.n_clusters):
            if len(active) == 0:
                break
            clusters = order[active, position]
            starts = self.bucket_indptr[clusters]
            counts = self.bucket_indptr[clusters + 1] - starts
            positions = _flat_bucket_positions(starts, counts)
            cols = self.bucket_indices[positions]
            rows = np.repeat(active, counts)
            if len(cols):
                count_dot_products(len(cols))
                values = np.einsum("ed,ed->e", queries[rows], self.vectors[cols])
                np.maximum.at(best, rows, values)
                collected_rows.append(rows)
                collected_cols.append(cols)
            if position + 1 >= self.n_clusters:
                break
            done = best[active] >= suffix_max[active, position + 1] - slack
            active = active[~done]
        if collected_rows:
            all_rows = np.concatenate(collected_rows)
            all_cols = np.concatenate(collected_cols)
        else:  # pragma: no cover - only with an all-empty index
            all_rows = np.empty(0, dtype=np.int64)
            all_cols = np.empty(0, dtype=np.int64)
        return RowCandidates.from_pairs(all_rows, all_cols, num_queries,
                                        len(self.vectors))


class IVFWarmStart:
    """Mutable carrier of k-means centroids across repeated IVF builds.

    The iterative trainer re-quantises the (slightly shifted) evaluation
    embeddings every bootstrapping round; passing one ``IVFWarmStart``
    through :func:`generate_candidates` makes each round's k-means start
    from the previous round's centroids instead of a fresh random draw, so
    Lloyd converges (and the convergence early-exit fires) after far fewer
    assignment passes.  Candidate *exactness* is untouched: the escalated
    pseudo-seed decode proves its top-1 per row regardless of where the
    quantiser converged.

    One entry is kept per direction key (the forward ``target`` index and
    the reverse ``source`` index of escalation); a stored centroid set is
    only reused when its shape still matches.
    """

    def __init__(self) -> None:
        self._centroids: dict[str, np.ndarray] = {}

    def get(self, key: str, n_clusters: int, dim: int) -> np.ndarray | None:
        stored = self._centroids.get(key)
        if stored is not None and stored.shape == (n_clusters, dim):
            return stored
        return None

    def store(self, key: str, centroids: np.ndarray) -> None:
        self._centroids[key] = np.asarray(centroids, dtype=np.float64)

    def __len__(self) -> int:
        return len(self._centroids)


# ---------------------------------------------------------------------------
# Random-hyperplane (sign) LSH
# ---------------------------------------------------------------------------
class RandomHyperplaneLSH:
    """Sign-random-projection hashing over a vector set.

    ``tables`` independent hash tables of ``hyperplanes`` sign bits each; a
    query's candidates are the union of the buckets whose full code matches
    in at least one table.  Collision probability per bit is
    ``1 − θ/π`` for angle ``θ``, so near neighbours collide in some table
    with high probability while the expected bucket size stays
    ``n / 2^hyperplanes``.
    """

    def __init__(self, vectors: np.ndarray, tables: int = 8,
                 hyperplanes: int = 12, seed: int = 0):
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2 or len(vectors) == 0:
            raise ValueError("vectors must be a non-empty 2-D array")
        if hyperplanes > 62:
            raise ValueError("hyperplanes must be <= 62 (codes are int64)")
        self.num_vectors = len(vectors)
        rng = np.random.default_rng(seed)
        self.planes = rng.normal(size=(tables, vectors.shape[1], hyperplanes))
        self.tables = tables
        self.hyperplanes = hyperplanes
        codes = self._codes(vectors)                    # (n, tables)
        self._sorted_codes: list[np.ndarray] = []
        self._sorted_ids: list[np.ndarray] = []
        for table in range(tables):
            order = np.argsort(codes[:, table], kind="stable")
            self._sorted_ids.append(order.astype(np.int64))
            self._sorted_codes.append(codes[order, table])

    def _codes(self, vectors: np.ndarray) -> np.ndarray:
        """Per-table integer hash codes of ``vectors``."""
        count_dot_products(len(vectors) * self.tables * self.hyperplanes)
        weights = (1 << np.arange(self.hyperplanes)).astype(np.int64)
        codes = np.empty((len(vectors), self.tables), dtype=np.int64)
        for table in range(self.tables):
            bits = (np.asarray(vectors, dtype=np.float64)
                    @ self.planes[table]) >= 0.0
            codes[:, table] = bits.astype(np.int64) @ weights
        return codes

    def candidates(self, queries: np.ndarray) -> RowCandidates:
        """Union over tables of each query's colliding bucket."""
        queries = np.asarray(queries, dtype=np.float64)
        codes = self._codes(queries)
        rows_parts: list[np.ndarray] = []
        cols_parts: list[np.ndarray] = []
        for table in range(self.tables):
            sorted_codes = self._sorted_codes[table]
            starts = np.searchsorted(sorted_codes, codes[:, table], side="left")
            stops = np.searchsorted(sorted_codes, codes[:, table], side="right")
            counts = stops - starts
            positions = _flat_bucket_positions(starts, counts)
            cols_parts.append(self._sorted_ids[table][positions])
            rows_parts.append(np.repeat(np.arange(len(queries)), counts))
        return RowCandidates.from_pairs(
            np.concatenate(rows_parts), np.concatenate(cols_parts),
            len(queries), self.num_vectors)


# ---------------------------------------------------------------------------
# Front door used by the decode stack
# ---------------------------------------------------------------------------
@register_candidate_generator("lsh")
def _lsh_candidates(source_concat: np.ndarray, target_concat: np.ndarray,
                    config: AnnConfig) -> RowCandidates:
    """Multi-table random-hyperplane candidate sets (no exactness bound)."""
    if config.exact_escalation:
        raise ValueError(
            "exact_escalation is only available for candidates='ivf': "
            "random-hyperplane LSH has no bound proving a top-1 exact")
    if config.gather == "bucket":
        raise ValueError(
            "gather='bucket' is only available for candidates='ivf': LSH "
            "tables overlap, so no disjoint bucket partition exists to "
            "group the gather by")
    index = RandomHyperplaneLSH(target_concat, tables=config.tables,
                                hyperplanes=config.hyperplanes,
                                seed=config.resolved_seed())
    return index.candidates(source_concat)


@register_candidate_generator("ivf")
def _ivf_candidates(source_concat: np.ndarray, target_concat: np.ndarray,
                    config: AnnConfig,
                    warm_start: IVFWarmStart | None = None) -> RowCandidates | None:
    """IVF candidate sets; ``None`` when probing provably covers every cell."""
    seed = config.resolved_seed()
    if not config.exact_escalation and config.nprobe is not None:
        num_targets = len(target_concat)
        n_clusters = config.n_clusters
        if n_clusters is None:
            n_clusters = max(1, int(round(np.sqrt(num_targets))))
        if config.nprobe >= min(int(n_clusters), num_targets):
            return None

    def build(vectors: np.ndarray, key: str, index_seed: int) -> IVFIndex:
        init = None
        if warm_start is not None:
            probe_clusters = config.n_clusters
            if probe_clusters is None:
                probe_clusters = max(1, int(round(np.sqrt(len(vectors)))))
            probe_clusters = min(int(probe_clusters), len(vectors))
            init = warm_start.get(key, probe_clusters, vectors.shape[1])
        index = IVFIndex(vectors, n_clusters=config.n_clusters,
                         kmeans_iters=config.kmeans_iters, seed=index_seed,
                         init_centroids=init, train_size=config.train_size)
        if warm_start is not None:
            warm_start.store(key, index.centroids)
        return index

    index = build(target_concat, "forward", seed)
    if config.exact_escalation:
        forward = index.escalated_candidates(source_concat,
                                             slack=config.adaptive_slack)
        reverse_index = build(source_concat, "reverse", seed + 1)
        reverse = reverse_index.escalated_candidates(target_concat,
                                                     slack=config.adaptive_slack)
        result = forward.union(reverse.transposed())
    else:
        result = index.candidates(source_concat, nprobe=config.nprobe)
    if config.gather == "bucket":
        # The bucket map of the forward (target-side) index groups any
        # candidate set over the same target space, including the
        # reverse-escalation union's extra cells.
        result = GroupedRowCandidates.from_candidates(result, index.assignments)
    return result


def generate_candidates(method: str, source, target,
                        config: AnnConfig | None = None,
                        warm_start: IVFWarmStart | None = None) -> RowCandidates | None:
    """Per-source-row candidate target sets for a (round-averaged) decode.

    ``source`` / ``target`` are embedding matrices or lists of per-round
    states (the Semantic Propagation decode); rounds are normalised and
    concatenated, which preserves the averaged-similarity neighbour
    structure exactly.  ``method`` names a generator registered through
    :func:`repro.core.registries.register_candidate_generator` (the
    built-ins are ``"ivf"`` and ``"lsh"``); the returned sets are
    deterministic functions of the inputs and ``config.seed``.

    ``warm_start`` (an :class:`IVFWarmStart`) carries k-means centroids
    across repeated builds — generators that support it (the built-in IVF)
    must accept it as a keyword; it is only forwarded when supplied, so
    generators without warm-start support keep their three-argument
    signature.

    Returns ``None`` when the configuration provably covers every cell
    (IVF with ``nprobe >= n_clusters``): complete coverage *is* the
    exhaustive decode, and ``blockwise_topk(row_candidates=None)`` takes
    the identical GEMM path bit for bit — without ever materialising an
    ``O(n_s · n_t)`` candidate structure.
    """
    builder = CANDIDATE_REGISTRY.get(method)
    if builder is None:
        raise ValueError(f"unknown candidate method {method!r}; "
                         f"registered: {sorted(CANDIDATE_REGISTRY)}")
    config = config or AnnConfig()
    source_concat = _concat_states(source)
    target_concat = _concat_states(target)
    if warm_start is not None:
        result = builder(source_concat, target_concat, config,
                         warm_start=warm_start)
    else:
        result = builder(source_concat, target_concat, config)
    if config.min_candidates is not None and result is not None:
        result = result.padded(config.min_candidates)
    return result


def recall_at_k(approx_indices: np.ndarray, exact_indices: np.ndarray,
                k: int = 1) -> float:
    """Mean per-row overlap between approximate and exact top-``k`` ids.

    ``recall@k = |approx_topk ∩ exact_topk| / k`` averaged over rows — the
    measured-recall figure the efficiency experiment and the scaling
    benchmark record against the exact decode.
    """
    approx_indices = np.asarray(approx_indices)
    exact_indices = np.asarray(exact_indices)
    if approx_indices.ndim != 2 or exact_indices.ndim != 2:
        raise ValueError("expected (rows, k) index arrays")
    if len(approx_indices) != len(exact_indices):
        raise ValueError("row counts differ")
    k = min(k, exact_indices.shape[1])
    if k <= 0:
        raise ValueError("k must be positive")
    exact_top = exact_indices[:, :k]
    approx_top = approx_indices[:, :min(k, approx_indices.shape[1])]
    hits = (exact_top[:, :, None] == approx_top[:, None, :]).any(axis=2)
    return float(hits.sum(axis=1).mean() / k)
