"""Preparation of an alignment task for model consumption.

Turns a :class:`~repro.kg.pair.KGPair` into the numpy artefacts shared by
DESAlign and every baseline: per-side modal feature matrices with matching
dimensionalities, normalised adjacency matrices, Laplacians and the
seed/test index arrays.

Two interchangeable graph backends are supported.  ``backend="dense"``
materialises ``n x n`` arrays (the original formulation, fine up to a few
hundred entities); ``backend="sparse"`` keeps every graph operator in CSR
form so memory stays ``O(|E|)`` and graphs with many thousands of entities
fit comfortably.  Both backends produce numerically equivalent artefacts
and every downstream consumer (encoders, propagation, energies) dispatches
on the matrix type.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np
import scipy.sparse as sp

from ..data.features import ModalFeatureSet, build_feature_set
from ..kg.laplacian import graph_laplacian, normalized_adjacency
from ..kg.pair import KGPair
from ..kg.sparse import graph_laplacian_sparse, normalized_adjacency_sparse

__all__ = ["BACKENDS", "PreparedSide", "PreparedTask", "prepare_task"]

#: Supported graph backends.
BACKENDS = ("dense", "sparse")


def _check_backend(backend: str) -> None:
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")


@dataclass
class PreparedSide:
    """Graph artefacts for one side (source or target) of the task.

    The three matrices are dense ``np.ndarray`` under the dense backend and
    ``scipy.sparse.csr_matrix`` under the sparse one.
    """

    features: ModalFeatureSet
    adjacency: np.ndarray | sp.csr_matrix
    normalized_adjacency: np.ndarray | sp.csr_matrix
    laplacian: np.ndarray | sp.csr_matrix
    backend: str = "dense"

    @property
    def num_entities(self) -> int:
        return self.adjacency.shape[0]

    def with_backend(self, backend: str) -> "PreparedSide":
        """Return this side converted to ``backend`` (no-op when it matches).

        Conversion is a pure storage-format change — the matrix values are
        preserved exactly, so dense and sparse runs stay bit-comparable.
        """
        _check_backend(backend)
        if backend == self.backend:
            return self
        if backend == "sparse":
            convert = sp.csr_matrix
        else:
            def convert(matrix):
                return matrix.toarray()
        return PreparedSide(
            features=self.features,
            adjacency=convert(self.adjacency),
            normalized_adjacency=convert(self.normalized_adjacency),
            laplacian=convert(self.laplacian),
            backend=backend,
        )


@dataclass
class PreparedTask:
    """A fully materialised alignment problem ready for training."""

    pair: KGPair
    source: PreparedSide
    target: PreparedSide
    train_pairs: np.ndarray      # (num_seed, 2) [source_id, target_id]
    test_pairs: np.ndarray       # (num_test, 2)
    feature_dims: dict[str, int]

    @property
    def name(self) -> str:
        return self.pair.name

    @property
    def backend(self) -> str:
        """The graph backend both sides were prepared with."""
        return self.source.backend

    def with_backend(self, backend: str) -> "PreparedTask":
        """Return the task with both sides converted to ``backend``."""
        _check_backend(backend)
        if backend == self.backend:
            return self
        return replace(self,
                       source=self.source.with_backend(backend),
                       target=self.target.with_backend(backend))

    def seed_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Source and target index arrays of the seed alignments."""
        return self.train_pairs[:, 0], self.train_pairs[:, 1]

    def test_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Source and target index arrays of the held-out test alignments."""
        return self.test_pairs[:, 0], self.test_pairs[:, 1]


def prepare_task(pair: KGPair,
                 relation_dim: int = 48,
                 attribute_dim: int = 48,
                 vision_dim: int | None = None,
                 structure_dim: int = 32,
                 imputation: str = "random_from_distribution",
                 seed: int = 0,
                 backend: str = "dense") -> PreparedTask:
    """Prepare a :class:`KGPair` for training.

    Feature dimensionalities are shared between the two graphs (relations
    and attributes are feature-hashed into fixed-length Bag-of-Words
    vectors, Sec. V-A(4)) so a single encoder can process both sides.

    With ``backend="sparse"`` the adjacency, normalised adjacency and
    Laplacian are built as CSR matrices straight from the triples — no
    ``n x n`` dense array is ever materialised.
    """
    _check_backend(backend)
    rng = np.random.default_rng(seed)
    if vision_dim is None:
        dims = []
        for graph in (pair.source, pair.target):
            if graph.image_features:
                dims.append(len(next(iter(graph.image_features.values()))))
        vision_dim = max(dims) if dims else 16

    sides = {}
    for key, graph in (("source", pair.source), ("target", pair.target)):
        features = build_feature_set(
            graph,
            rng=rng,
            relation_dim=relation_dim,
            attribute_dim=attribute_dim,
            vision_dim=vision_dim,
            structure_dim=structure_dim,
            imputation=imputation,
        )
        if backend == "sparse":
            adjacency = graph.adjacency_matrix(sparse=True)
            normalized = normalized_adjacency_sparse(adjacency)
            laplacian = graph_laplacian_sparse(adjacency)
        else:
            adjacency = graph.adjacency_matrix()
            normalized = normalized_adjacency(adjacency)
            laplacian = graph_laplacian(adjacency)
        sides[key] = PreparedSide(
            features=features,
            adjacency=adjacency,
            normalized_adjacency=normalized,
            laplacian=laplacian,
            backend=backend,
        )

    train, test = pair.split(np.random.default_rng(seed + 1))
    train_pairs = np.asarray([[p.source, p.target] for p in train], dtype=np.int64)
    test_pairs = np.asarray([[p.source, p.target] for p in test], dtype=np.int64)
    return PreparedTask(
        pair=pair,
        source=sides["source"],
        target=sides["target"],
        train_pairs=train_pairs,
        test_pairs=test_pairs,
        feature_dims={
            "graph": structure_dim,
            "relation": relation_dim,
            "attribute": attribute_dim,
            "vision": vision_dim,
        },
    )
