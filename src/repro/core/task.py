"""Preparation of an alignment task for model consumption.

Turns a :class:`~repro.kg.pair.KGPair` into dense numpy artefacts shared by
DESAlign and every baseline: per-side modal feature matrices with matching
dimensionalities, normalised adjacency matrices, Laplacians and the
seed/test index arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.features import ModalFeatureSet, build_feature_set
from ..kg.laplacian import graph_laplacian, normalized_adjacency
from ..kg.pair import KGPair

__all__ = ["PreparedSide", "PreparedTask", "prepare_task"]


@dataclass
class PreparedSide:
    """Dense artefacts for one side (source or target) of the task."""

    features: ModalFeatureSet
    adjacency: np.ndarray
    normalized_adjacency: np.ndarray
    laplacian: np.ndarray

    @property
    def num_entities(self) -> int:
        return self.adjacency.shape[0]


@dataclass
class PreparedTask:
    """A fully materialised alignment problem ready for training."""

    pair: KGPair
    source: PreparedSide
    target: PreparedSide
    train_pairs: np.ndarray      # (num_seed, 2) [source_id, target_id]
    test_pairs: np.ndarray       # (num_test, 2)
    feature_dims: dict[str, int]

    @property
    def name(self) -> str:
        return self.pair.name

    def seed_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Source and target index arrays of the seed alignments."""
        return self.train_pairs[:, 0], self.train_pairs[:, 1]

    def test_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Source and target index arrays of the held-out test alignments."""
        return self.test_pairs[:, 0], self.test_pairs[:, 1]


def prepare_task(pair: KGPair,
                 relation_dim: int = 48,
                 attribute_dim: int = 48,
                 vision_dim: int | None = None,
                 structure_dim: int = 32,
                 imputation: str = "random_from_distribution",
                 seed: int = 0) -> PreparedTask:
    """Prepare a :class:`KGPair` for training.

    Feature dimensionalities are shared between the two graphs (relations
    and attributes are feature-hashed into fixed-length Bag-of-Words
    vectors, Sec. V-A(4)) so a single encoder can process both sides.
    """
    rng = np.random.default_rng(seed)
    if vision_dim is None:
        dims = []
        for graph in (pair.source, pair.target):
            if graph.image_features:
                dims.append(len(next(iter(graph.image_features.values()))))
        vision_dim = max(dims) if dims else 16

    sides = {}
    for key, graph in (("source", pair.source), ("target", pair.target)):
        features = build_feature_set(
            graph,
            rng=rng,
            relation_dim=relation_dim,
            attribute_dim=attribute_dim,
            vision_dim=vision_dim,
            structure_dim=structure_dim,
            imputation=imputation,
        )
        adjacency = graph.adjacency_matrix()
        sides[key] = PreparedSide(
            features=features,
            adjacency=adjacency,
            normalized_adjacency=normalized_adjacency(adjacency),
            laplacian=graph_laplacian(adjacency),
        )

    train, test = pair.split(np.random.default_rng(seed + 1))
    train_pairs = np.asarray([[p.source, p.target] for p in train], dtype=np.int64)
    test_pairs = np.asarray([[p.source, p.target] for p in test], dtype=np.int64)
    return PreparedTask(
        pair=pair,
        source=sides["source"],
        target=sides["target"],
        train_pairs=train_pairs,
        test_pairs=test_pairs,
        feature_dims={
            "graph": structure_dim,
            "relation": relation_dim,
            "attribute": attribute_dim,
            "vision": vision_dim,
        },
    )
