"""The DESAlign model: encoder + MMSL objective + Semantic Propagation decoder.

This is the public entry point of the core library.  A :class:`DESAlign`
instance owns the shared multi-modal encoder, computes the training loss on
seed alignments and decodes test-time similarities with Semantic
Propagation, as laid out in Algorithm 1 of the paper.
"""

from __future__ import annotations

import numpy as np

from ..autograd import no_grad
from ..kg.sampling import NeighbourSampler, SubgraphView, attention_pattern
from ..nn import Module
from .compat import warn_legacy
from .config import DEFAULT_ENCODE_BATCH, DESAlignConfig
from .encoder import EncoderOutput, MultiModalEncoder
from .losses import LossBreakdown, MultiModalSemanticLoss
from .propagation import PropagationResult, SemanticPropagation
from .ann import AnnConfig, generate_candidates, resolve_ann
from .similarity import TopKSimilarity, blockwise_topk, resolve_candidates, resolve_decode
from .task import PreparedTask

__all__ = ["DESAlign"]


class DESAlign(Module):
    """Dirichlet Energy driven Semantic-consistent multi-modal entity Alignment.

    Parameters
    ----------
    task:
        The prepared alignment task (feature matrices, adjacencies, splits).
    config:
        Model hyper-parameters; defaults follow the paper with reduced
        dimensionality for CPU execution.
    """

    def __init__(self, task: PreparedTask, config: DESAlignConfig | None = None):
        super().__init__()
        self.config = config or DESAlignConfig()
        # Honour the configured graph backend: converting here means a task
        # prepared under either backend can serve a model under either;
        # "auto" keeps whatever the task was prepared with.
        if self.config.backend != "auto":
            task = task.with_backend(self.config.backend)
        self.task = task
        rng = np.random.default_rng(self.config.seed)
        self.encoder = MultiModalEncoder(
            config=self.config,
            feature_dims=task.feature_dims,
            num_entities={
                "source": task.source.num_entities,
                "target": task.target.num_entities,
            },
            rng=rng,
        )
        self.objective = MultiModalSemanticLoss(self.config)
        # Full-neighbourhood samplers for batched inference, built lazily
        # once per side: the graph is immutable, so the O(|E|) pattern
        # construction must not repeat on every evaluation.
        self._eval_samplers: dict[str, NeighbourSampler] = {}
        self.propagation = SemanticPropagation(
            iterations=self.config.propagation_iters,
            reset_known=self.config.propagation_reset_known,
            average_similarities=self.config.propagation_average,
        )

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode(self, side: str) -> EncoderOutput:
        """Encode one side (``"source"`` or ``"target"``) of the task."""
        prepared = self.task.source if side == "source" else self.task.target
        return self.encoder(side, prepared.features.features, prepared.adjacency)

    def encode_both(self) -> tuple[EncoderOutput, EncoderOutput]:
        """Encode the source and the target graphs with the shared encoder."""
        return self.encode("source"), self.encode("target")

    # ------------------------------------------------------------------
    # Neighbour-sampled encoding
    # ------------------------------------------------------------------
    def neighbour_sampler(self, side: str, fanouts=None, seed: int = 0) -> NeighbourSampler:
        """Layer-wise neighbour sampler over one side's attention pattern.

        The pattern (self-looped binary adjacency) matches the edge set the
        structural GAT attends over, so a full-neighbourhood sample
        (``fanouts=None`` or all-``None`` entries) reproduces the full-graph
        forward exactly on the sampled seed rows.
        """
        prepared = self.task.source if side == "source" else self.task.target
        if fanouts is None:
            fanouts = (None,) * self.config.gat_layers
        if len(fanouts) != self.config.gat_layers:
            raise ValueError(f"need one fanout per GAT layer "
                             f"({self.config.gat_layers}), got {len(fanouts)}")
        # GAT attention ignores edge weights, so estimator rescaling is moot.
        return NeighbourSampler(attention_pattern(prepared.adjacency), fanouts,
                                seed=seed, rescale=False)

    def encode_subgraph(self, side: str, view: SubgraphView) -> EncoderOutput:
        """Encode only the sampled subgraph of one side (seed rows out)."""
        prepared = self.task.source if side == "source" else self.task.target
        return self.encoder(side, prepared.features.features, prepared.adjacency,
                            subgraph=view)

    def encode_entities_sampled(self, side: str, kind: str | None = None,
                                batch_size: int = DEFAULT_ENCODE_BATCH) -> np.ndarray:
        """Joint embeddings of *all* entities via batched subgraph forwards.

        Walks the entity set in seed batches, encodes each batch's
        full-neighbourhood subgraph and scatters the output rows back into
        a global ``(N, D)`` array — so no single forward pass ever touches
        the whole graph, which is what lets inference run under the same
        memory envelope as neighbour-sampled training.
        """
        kind = kind or self.config.evaluation_embedding
        prepared = self.task.source if side == "source" else self.task.target
        sampler = self._eval_samplers.get(side)
        if sampler is None:
            sampler = self.neighbour_sampler(side)
            self._eval_samplers[side] = sampler
        num_entities = prepared.num_entities
        embeddings: np.ndarray | None = None
        with no_grad():
            for start in range(0, num_entities, batch_size):
                seeds = np.arange(start, min(start + batch_size, num_entities))
                view = sampler.sample(seeds)
                values = self.encode_subgraph(side, view).joint(kind).numpy()
                if embeddings is None:
                    embeddings = np.empty((num_entities, values.shape[1]))
                view.scatter_rows(values, embeddings)
        return embeddings

    # ------------------------------------------------------------------
    # Training loss
    # ------------------------------------------------------------------
    def loss(self, source_index: np.ndarray | None = None,
             target_index: np.ndarray | None = None) -> LossBreakdown:
        """MMSL loss over the given seed pairs (all seeds by default)."""
        if source_index is None or target_index is None:
            source_index, target_index = self.task.seed_arrays()
        source_output, target_output = self.encode_both()
        return self.objective(
            source_output, target_output, source_index, target_index,
            source_laplacian=self.task.source.laplacian,
        )

    def subgraph_loss(self, source_view: SubgraphView, target_view: SubgraphView,
                      source_index: np.ndarray, target_index: np.ndarray,
                      source_local: np.ndarray | None = None,
                      target_local: np.ndarray | None = None) -> LossBreakdown:
        """MMSL loss over seed pairs, encoded through sampled subgraphs.

        ``source_index`` / ``target_index`` are *global* entity ids; they
        must be part of the views' seed sets.  Callers that already hold
        the local positions (e.g. a :class:`~repro.data.loader.SeedPairBatch`)
        can pass them via ``source_local`` / ``target_local`` to skip the
        lookup.  The Dirichlet-energy penalty needs the full Laplacian, so
        it cannot be computed on a subgraph — configs with
        ``energy_weight > 0`` are rejected rather than silently training a
        different objective; with the default ``energy_weight=0`` this is
        numerically identical to :meth:`loss` on full-neighbourhood views.
        """
        if self.config.energy_weight > 0:
            raise ValueError(
                "the Dirichlet-energy penalty (energy_weight > 0) requires "
                "full-graph training; use sampling='full' or set energy_weight=0")
        source_output = self.encode_subgraph("source", source_view)
        target_output = self.encode_subgraph("target", target_view)
        if source_local is None:
            source_local = source_view.global_to_local(source_index)
        if target_local is None:
            target_local = target_view.global_to_local(target_index)
        return self.objective(source_output, target_output,
                              source_local, target_local, source_laplacian=None)

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def _evaluation_embeddings(self, encode: str = "full",
                               encode_batch_size: int | None = None
                               ) -> tuple[np.ndarray, np.ndarray]:
        if encode not in {"full", "sampled"}:
            raise ValueError("encode must be 'full' or 'sampled'")
        if encode == "sampled":
            batch = encode_batch_size or DEFAULT_ENCODE_BATCH
            return (self.encode_entities_sampled("source", batch_size=batch),
                    self.encode_entities_sampled("target", batch_size=batch))
        kind = self.config.evaluation_embedding
        with no_grad():
            source_output, target_output = self.encode_both()
        return source_output.joint(kind).numpy(), target_output.joint(kind).numpy()

    def propagation_masks(self) -> tuple[np.ndarray, np.ndarray]:
        """Semantically consistent entities (``E_c``) of each graph.

        They act as the boundary condition of the propagation: their
        features are reset to the encoder output after every Euler step.
        """
        consistent_source, _, _ = self.task.source.features.consistency_partition()
        consistent_target, _, _ = self.task.target.features.consistency_partition()
        source_mask = np.zeros(self.task.source.num_entities, dtype=bool)
        target_mask = np.zeros(self.task.target.num_entities, dtype=bool)
        source_mask[consistent_source] = True
        target_mask[consistent_target] = True
        return source_mask, target_mask

    def decode(self, use_propagation: bool = True, encode: str = "full",
               encode_batch_size: int | None = None) -> PropagationResult:
        """Produce the pairwise similarity matrix ``Ω`` (Algorithm 1, line 15)."""
        source_embeddings, target_embeddings = self._evaluation_embeddings(
            encode=encode, encode_batch_size=encode_batch_size)
        source_known, target_known = self.propagation_masks()
        decoder = self.propagation if use_propagation else SemanticPropagation(iterations=0)
        return decoder(
            source_embeddings, target_embeddings,
            self.task.source.adjacency, self.task.target.adjacency,
            source_known=source_known, target_known=target_known,
        )

    def decode_states(self, use_propagation: bool = True, encode: str = "full",
                      encode_batch_size: int | None = None
                      ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Per-round evaluation states feeding the streaming decode.

        One entry per Semantic Propagation round (a single entry without
        propagation, or when the config decodes from the last round only);
        the cosine similarities of the per-round states, averaged, are
        exactly what :meth:`decode` materialises densely.  This is the
        cacheable artefact the :class:`~repro.pipeline.Aligner` persists —
        decoding any ``k`` from the same states is bit-reproducible.
        """
        source_embeddings, target_embeddings = self._evaluation_embeddings(
            encode=encode, encode_batch_size=encode_batch_size)
        if use_propagation and self.config.propagation_iters > 0:
            source_known, target_known = self.propagation_masks()
            source_states = self.propagation.propagate_features(
                source_embeddings, self.task.source.adjacency, source_known)
            target_states = self.propagation.propagate_features(
                target_embeddings, self.task.target.adjacency, target_known)
            if not self.config.propagation_average:
                source_states = [source_states[-1]]
                target_states = [target_states[-1]]
        else:
            source_states = [source_embeddings]
            target_states = [target_embeddings]
        return source_states, target_states

    def decode_topk(self, use_propagation: bool = True, k: int = 10,
                    block_size: int | None = None, dtype=np.float64,
                    columns: np.ndarray | None = None, encode: str = "full",
                    encode_batch_size: int | None = None,
                    candidates: str = "exhaustive",
                    ann: AnnConfig | None = None,
                    ann_warm_start=None) -> TopKSimilarity:
        """Streaming blockwise decode: exact top-``k`` neighbours per entity.

        Runs the same Semantic Propagation rounds as :meth:`decode` but
        streams the round-averaged similarity in source-row blocks, so peak
        memory is ``O(block · n_t)`` instead of the ``O(n_s · n_t)`` the
        dense decoder needs per round.  ``encode="sampled"`` additionally
        computes the evaluation embeddings through batched subgraph
        forwards, so no stage touches the full graph at once.
        ``candidates="ivf" | "lsh"`` restricts the stream to approximate
        candidate sets generated over the (round-concatenated) evaluation
        embeddings, dropping decode FLOPs below ``O(n_s · n_t)`` (see
        :mod:`repro.core.ann`).  ``ann_warm_start`` optionally carries an
        :class:`~repro.core.ann.IVFWarmStart` across repeated decodes so
        the IVF quantiser re-fits from the previous centroids (the
        iterative trainer's per-round pseudo-seed decodes).
        """
        source_states, target_states = self.decode_states(
            use_propagation=use_propagation, encode=encode,
            encode_batch_size=encode_batch_size)
        row_candidates = None
        if candidates != "exhaustive":
            row_candidates = generate_candidates(
                candidates, source_states, target_states,
                resolve_ann(ann, self.config.seed),
                warm_start=ann_warm_start)
        return blockwise_topk(source_states, target_states, k=k,
                              block_size=block_size, dtype=dtype, columns=columns,
                              row_candidates=row_candidates)

    def similarity(self, use_propagation: bool = True, decode: str = "auto",
                   k: int = 10, block_size: int | None = None,
                   dtype=np.float64, encode: str = "full",
                   encode_batch_size: int | None = None,
                   candidates: str = "exhaustive",
                   ann: AnnConfig | None = None,
                   ann_warm_start=None):
        """Decoding similarity ``Ω`` used for evaluation.

        ``decode="dense"`` returns the full source×target matrix (the
        original formulation); ``decode="blockwise"`` returns a streaming
        :class:`TopKSimilarity` that every evaluation / CSLS / mutual-NN
        consumer accepts; ``"auto"`` (default) stays dense below
        :data:`~repro.core.similarity.DENSE_DECODE_CELL_LIMIT` cells and
        switches to blockwise above it.  ``encode="sampled"`` computes the
        evaluation embeddings with batched subgraph forwards instead of one
        full-graph pass (the neighbour-sampled training pipeline's decode).
        ``candidates="ivf" | "lsh"`` forces the blockwise path and restricts
        it to approximate candidate sets (incompatible with an explicit
        ``decode="dense"``).

        Tuning these switches per call is the legacy API: outside the
        facade's own plumbing, non-default values emit a
        ``DeprecationWarning`` pointing at the spec-equivalent
        :class:`~repro.pipeline.DecodeSpec`.
        """
        if decode != "auto" or candidates != "exhaustive" or encode != "full":
            warn_legacy(
                f"DESAlign.similarity(decode={decode!r}, encode={encode!r}, "
                f"candidates={candidates!r})",
                f"declare DecodeSpec(decode={decode!r}, encode={encode!r}, "
                f"candidates={candidates!r}) in PipelineSpec.decode and call "
                "Aligner.align() / Aligner.evaluate()")
        resolve_candidates(candidates, decode)
        shape = (self.task.source.num_entities, self.task.target.num_entities)
        if candidates == "exhaustive" and resolve_decode(decode, shape) == "dense":
            return self.decode(
                use_propagation=use_propagation, encode=encode,
                encode_batch_size=encode_batch_size,
            ).final_similarity(average=self.config.propagation_average)
        return self.decode_topk(use_propagation=use_propagation, k=k,
                                block_size=block_size, dtype=dtype, encode=encode,
                                encode_batch_size=encode_batch_size,
                                candidates=candidates, ann=ann,
                                ann_warm_start=ann_warm_start)
