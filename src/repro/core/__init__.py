"""DESAlign core: configuration, encoder, losses, propagation, model and trainer."""

from .config import DESAlignConfig, TrainingConfig
from .task import PreparedSide, PreparedTask, prepare_task
from .encoder import EncoderOutput, MultiModalEncoder
from .losses import (
    bidirectional_contrastive_loss,
    dirichlet_energy_tensor,
    energy_bound_penalty,
    LossBreakdown,
    MultiModalSemanticLoss,
)
from .propagation import SemanticPropagation, PropagationResult, closed_form_interpolation
from .ann import (
    AnnConfig,
    IVFIndex,
    RandomHyperplaneLSH,
    RowCandidates,
    flops_counter,
    generate_candidates,
    recall_at_k,
    resolve_ann,
)
from .similarity import (
    TopKSimilarity,
    blockwise_topk,
    decode_similarity,
    resolve_candidates,
    resolve_decode,
)
from .alignment import cosine_similarity, csls_similarity, mutual_nearest_pairs, greedy_one_to_one
from .energy import EnergyMonitor, EnergySnapshot, verify_layer_bounds
from .model import DESAlign
from .trainer import (
    Trainer,
    TrainingResult,
    TrainingHistory,
    TrainingLoop,
    FullGraphLoop,
    NeighbourSampledLoop,
    build_training_loop,
)

__all__ = [
    "DESAlignConfig",
    "TrainingConfig",
    "PreparedSide",
    "PreparedTask",
    "prepare_task",
    "EncoderOutput",
    "MultiModalEncoder",
    "bidirectional_contrastive_loss",
    "dirichlet_energy_tensor",
    "energy_bound_penalty",
    "LossBreakdown",
    "MultiModalSemanticLoss",
    "SemanticPropagation",
    "PropagationResult",
    "closed_form_interpolation",
    "AnnConfig",
    "IVFIndex",
    "RandomHyperplaneLSH",
    "RowCandidates",
    "flops_counter",
    "generate_candidates",
    "recall_at_k",
    "resolve_ann",
    "TopKSimilarity",
    "blockwise_topk",
    "decode_similarity",
    "resolve_candidates",
    "resolve_decode",
    "cosine_similarity",
    "csls_similarity",
    "mutual_nearest_pairs",
    "greedy_one_to_one",
    "EnergyMonitor",
    "EnergySnapshot",
    "verify_layer_bounds",
    "DESAlign",
    "Trainer",
    "TrainingResult",
    "TrainingHistory",
    "TrainingLoop",
    "FullGraphLoop",
    "NeighbourSampledLoop",
    "build_training_loop",
]
