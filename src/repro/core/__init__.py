"""DESAlign core: configuration, encoder, losses, propagation, model and trainer."""

from . import rules
from .compat import in_spec_context, spec_driven, warn_legacy
from .registries import (
    CANDIDATE_REGISTRY,
    MODEL_REGISTRY,
    TRAINING_LOOP_REGISTRY,
    build_model,
    build_model_from_spec,
    candidate_methods,
    model_names,
    model_supports_sampling,
    register_candidate_generator,
    register_model,
    register_training_loop,
    training_loop_names,
)
from .config import DESAlignConfig, TrainingConfig
from .task import PreparedSide, PreparedTask, prepare_task
from .encoder import EncoderOutput, MultiModalEncoder
from .losses import (
    bidirectional_contrastive_loss,
    dirichlet_energy_tensor,
    energy_bound_penalty,
    LossBreakdown,
    MultiModalSemanticLoss,
)
from .propagation import SemanticPropagation, PropagationResult, closed_form_interpolation
from .ann import (
    AnnConfig,
    GroupedRowCandidates,
    IVFIndex,
    RandomHyperplaneLSH,
    RowCandidates,
    flops_counter,
    generate_candidates,
    recall_at_k,
    resolve_ann,
)
from .store import EmbeddingStore, MissingStoreError, StoreError
from .sharded import shard_boundaries
from .similarity import (
    TopKSimilarity,
    blockwise_topk,
    decode_similarity,
    resolve_candidates,
    resolve_decode,
)
from .alignment import cosine_similarity, csls_similarity, mutual_nearest_pairs, greedy_one_to_one
from .energy import EnergyMonitor, EnergySnapshot, verify_layer_bounds
from .model import DESAlign
from .trainer import (
    Trainer,
    TrainingResult,
    TrainingHistory,
    TrainingLoop,
    FullGraphLoop,
    NeighbourSampledLoop,
    build_training_loop,
)

__all__ = [
    "rules",
    "spec_driven",
    "in_spec_context",
    "warn_legacy",
    "CANDIDATE_REGISTRY",
    "MODEL_REGISTRY",
    "TRAINING_LOOP_REGISTRY",
    "build_model",
    "build_model_from_spec",
    "candidate_methods",
    "model_names",
    "model_supports_sampling",
    "register_candidate_generator",
    "register_model",
    "register_training_loop",
    "training_loop_names",
    "DESAlignConfig",
    "TrainingConfig",
    "PreparedSide",
    "PreparedTask",
    "prepare_task",
    "EncoderOutput",
    "MultiModalEncoder",
    "bidirectional_contrastive_loss",
    "dirichlet_energy_tensor",
    "energy_bound_penalty",
    "LossBreakdown",
    "MultiModalSemanticLoss",
    "SemanticPropagation",
    "PropagationResult",
    "closed_form_interpolation",
    "AnnConfig",
    "GroupedRowCandidates",
    "IVFIndex",
    "RandomHyperplaneLSH",
    "RowCandidates",
    "flops_counter",
    "generate_candidates",
    "recall_at_k",
    "resolve_ann",
    "EmbeddingStore",
    "MissingStoreError",
    "StoreError",
    "shard_boundaries",
    "TopKSimilarity",
    "blockwise_topk",
    "decode_similarity",
    "resolve_candidates",
    "resolve_decode",
    "cosine_similarity",
    "csls_similarity",
    "mutual_nearest_pairs",
    "greedy_one_to_one",
    "EnergyMonitor",
    "EnergySnapshot",
    "verify_layer_bounds",
    "DESAlign",
    "Trainer",
    "TrainingResult",
    "TrainingHistory",
    "TrainingLoop",
    "FullGraphLoop",
    "NeighbourSampledLoop",
    "build_training_loop",
]
