"""Semantic Propagation (Sec. IV-C, Algorithm 1 of the paper).

Missing modal semantics are interpolated by running the gradient flow of the
Dirichlet energy, discretised with the explicit Euler scheme of Eq. 20-22:

``x^{(k+1)} ← Ã x^{(k)}``, then reset the semantically consistent rows to
their original values.  Pairwise similarities are computed after every
round and averaged (Algorithm 1, line 15), which both exploits the varying
semantic content of each round and protects the consistent entities from
over-smoothing.

The closed-form solution of Proposition 4 (solving the linear system on the
missing block) is also provided; it is used as a ground truth in tests and
as an alternative decoder for small graphs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import splu

from ..kg.laplacian import graph_laplacian, normalized_adjacency
from ..kg.sparse import graph_laplacian_sparse, normalized_adjacency_sparse

__all__ = ["SemanticPropagation", "PropagationResult", "closed_form_interpolation"]


@dataclass
class PropagationResult:
    """Artefacts of one propagation run over a pair of embedding matrices."""

    source_states: list[np.ndarray]
    target_states: list[np.ndarray]
    similarities: list[np.ndarray]
    averaged_similarity: np.ndarray

    @property
    def num_rounds(self) -> int:
        return len(self.similarities) - 1

    def final_similarity(self, average: bool = True) -> np.ndarray:
        """The decoding similarity: averaged over rounds or last round only."""
        return self.averaged_similarity if average else self.similarities[-1]


def _cosine_similarity(source: np.ndarray, target: np.ndarray) -> np.ndarray:
    source_norm = source / np.maximum(np.linalg.norm(source, axis=1, keepdims=True), 1e-12)
    target_norm = target / np.maximum(np.linalg.norm(target, axis=1, keepdims=True), 1e-12)
    return source_norm @ target_norm.T


def closed_form_interpolation(features: np.ndarray, adjacency,
                              known: np.ndarray) -> np.ndarray:
    """Closed-form minimiser of the Dirichlet energy with boundary conditions.

    Proposition 4: with ``Δ`` partitioned into known/unknown blocks, the
    energy minimiser for the unknown rows solves ``Δ_oo x_o = -Δ_oc x_c``.
    A dense adjacency is solved with ``np.linalg.solve`` (cubic, small
    graphs only); a sparse one with a sparse LU factorisation
    (``scipy.sparse.linalg.splu``), which scales to large graphs.
    """
    features = np.asarray(features, dtype=np.float64)
    known = np.asarray(known, dtype=bool)
    if known.all():
        return features.copy()
    unknown = ~known
    solution = features.copy()
    if sp.issparse(adjacency):
        laplacian = graph_laplacian_sparse(adjacency).tocsr()
        unknown_idx = np.flatnonzero(unknown)
        known_idx = np.flatnonzero(known)
        lap_oo = laplacian[unknown_idx][:, unknown_idx].tocsc()
        lap_oc = laplacian[unknown_idx][:, known_idx]
        rhs = -np.asarray(lap_oc @ features[known_idx])
        solution[unknown_idx] = splu(lap_oo).solve(rhs)
        return solution
    laplacian = graph_laplacian(adjacency)
    lap_oo = laplacian[np.ix_(unknown, unknown)]
    lap_oc = laplacian[np.ix_(unknown, known)]
    solution[unknown] = np.linalg.solve(lap_oo, -lap_oc @ features[known])
    return solution


class SemanticPropagation:
    """Explicit-Euler semantic propagation decoder (Algorithm 1, lines 11-15).

    Parameters
    ----------
    iterations:
        Number of propagation rounds ``n_p``; 0 disables propagation and the
        decoder reduces to plain cosine similarity on the input embeddings.
    reset_known:
        Reset rows of semantically consistent entities to their original
        values after every round (Eq. 22).  Disabling this reproduces the
        simplified variant of Algorithm 1 where consistent features also
        join the propagation.
    average_similarities:
        Average pairwise similarities over all rounds (paper's rule) rather
        than returning only the final round.
    """

    def __init__(self, iterations: int = 2, reset_known: bool = True,
                 average_similarities: bool = True):
        if iterations < 0:
            raise ValueError("iterations must be non-negative")
        self.iterations = iterations
        self.reset_known = reset_known
        self.average_similarities = average_similarities

    # ------------------------------------------------------------------
    def propagate_features(self, features: np.ndarray, adjacency,
                           known: np.ndarray | None = None) -> list[np.ndarray]:
        """Run the Euler scheme on one graph, returning every intermediate state.

        A sparse adjacency keeps the propagation matrix in CSR form, so each
        Euler step costs ``O(|E| d)`` instead of ``O(n² d)``.
        """
        features = np.asarray(features, dtype=np.float64)
        if sp.issparse(adjacency):
            propagation_matrix = normalized_adjacency_sparse(adjacency)
        else:
            propagation_matrix = normalized_adjacency(adjacency)
        states = [features.copy()]
        current = features.copy()
        known_mask = None
        if known is not None:
            known_mask = np.asarray(known, dtype=bool)
        for _ in range(self.iterations):
            current = np.asarray(propagation_matrix @ current)
            if self.reset_known and known_mask is not None and known_mask.any():
                current[known_mask] = features[known_mask]
            states.append(current.copy())
        return states

    def __call__(self, source_features: np.ndarray, target_features: np.ndarray,
                 source_adjacency, target_adjacency,
                 source_known: np.ndarray | None = None,
                 target_known: np.ndarray | None = None) -> PropagationResult:
        """Propagate both sides and compute per-round / averaged similarities."""
        source_states = self.propagate_features(source_features, source_adjacency, source_known)
        target_states = self.propagate_features(target_features, target_adjacency, target_known)
        similarities = [
            _cosine_similarity(source_state, target_state)
            for source_state, target_state in zip(source_states, target_states)
        ]
        averaged = np.mean(similarities, axis=0) if self.average_similarities else similarities[-1]
        return PropagationResult(
            source_states=source_states,
            target_states=target_states,
            similarities=similarities,
            averaged_similarity=averaged,
        )
