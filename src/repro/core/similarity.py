"""Blockwise (streaming) top-k similarity decoding.

Every decode path of this repository — evaluation (H@k / MRR), CSLS hubness
correction and the mutual-nearest-neighbour bootstrapping of the iterative
training strategy — only ever needs each entity's ``k`` nearest cross-graph
neighbours, never the full ``n_s x n_t`` similarity matrix.  This module
provides a block-partitioned matmul engine that walks source rows in
configurable chunks and, per block, reduces immediately to

* the exact top-``k`` neighbours and scores of every source row
  (``np.argpartition`` + a deterministic (score desc, index asc) sort),
* the running column max / argmax needed for mutual-NN selection, and
* the row/column k-NN mean similarities needed for CSLS,

so peak memory is ``O(block · n_t)`` instead of ``O(n_s · n_t)``.  The
normalised embeddings are kept (``O((n_s + n_t) · d)``) so any single row
can be re-materialised exactly — the evaluation fallback when a gold target
falls outside the stored top-``k``.

Semantic Propagation decoding averages per-round cosine similarities
(Algorithm 1, line 15); the engine therefore accepts *lists* of embedding
states and streams the round-averaged similarity block by block, which is
exactly the quantity the dense decoder materialises.

With ``dtype=np.float64`` (the default) the streamed values are the same
BLAS products the dense path computes, so metrics agree to ~1e-12;
``dtype=np.float32`` halves memory and roughly doubles throughput for large
decodes at a small accuracy cost (normalisation always happens in float64,
once, up front).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from . import rules
from .ann import (
    AnnConfig,
    RowCandidates,
    _normalize_rows,
    count_dot_products,
    generate_candidates,
)

__all__ = [
    "TopKSimilarity",
    "PartialTopK",
    "blockwise_topk",
    "compute_partial_topk",
    "compute_partial_topk_candidates",
    "merge_partials",
    "merge_partial_topk",
    "decode_similarity",
    "resolve_decode",
    "resolve_candidates",
    "DEFAULT_BLOCK_SIZE",
    "DENSE_DECODE_CELL_LIMIT",
]

#: Source rows per streamed block.
DEFAULT_BLOCK_SIZE = 1024

#: ``decode="auto"`` stays dense up to this many similarity-matrix cells
#: (4M float64 cells = 32 MB); larger decodes switch to blockwise top-k.
DENSE_DECODE_CELL_LIMIT = 4_000_000


def resolve_decode(decode: str, shape: tuple[int, int],
                   cell_limit: int = DENSE_DECODE_CELL_LIMIT) -> str:
    """Resolve a ``"dense" | "blockwise" | "auto"`` switch for a decode shape."""
    rules.check_decode_method(decode)
    if decode != "auto":
        return decode
    return "dense" if shape[0] * shape[1] <= cell_limit else "blockwise"


def resolve_candidates(candidates: str, decode: str) -> None:
    """Validate a ``candidates``/``decode`` switch combination.

    Candidate generation only exists on the streaming path; pairing it with
    an explicit dense decode is a contradiction and is rejected rather than
    silently ignored (``decode="auto"`` routes to blockwise instead).  Both
    rules live in :mod:`repro.core.rules` (shared with the spec validator).
    """
    rules.check_candidates_method(candidates)
    rules.check_candidates_decode(candidates, decode)


def decode_similarity(source: np.ndarray, target: np.ndarray,
                      decode: str = "auto", k: int = 10,
                      block_size: int | None = None, dtype=np.float64,
                      candidates: str = "exhaustive",
                      ann: AnnConfig | None = None):
    """One-shot decode dispatch shared by models without a propagation decoder.

    Returns the dense cosine matrix or a streaming :func:`blockwise_topk`
    according to ``resolve_decode`` on the embedding shapes.
    ``candidates="ivf" | "lsh"`` additionally restricts the streamed decode
    to approximate candidate sets (see :mod:`repro.core.ann`), forcing the
    blockwise path regardless of shape.
    """
    resolve_candidates(candidates, decode)
    if candidates != "exhaustive":
        row_candidates = generate_candidates(candidates, source, target, ann)
        return blockwise_topk(source, target, k=k, block_size=block_size,
                              dtype=dtype, row_candidates=row_candidates)
    if resolve_decode(decode, (len(source), len(target))) == "dense":
        source_norm = _normalize_rows(source)
        target_norm = _normalize_rows(target)
        return source_norm @ target_norm.T
    return blockwise_topk(source, target, k=k, block_size=block_size, dtype=dtype)


def _as_state_list(states) -> list[np.ndarray]:
    if isinstance(states, np.ndarray):
        return [states]
    return [np.asarray(state) for state in states]


@dataclass
class TopKSimilarity:
    """Streaming decode artefacts: exact top-k rows plus global reductions.

    ``indices`` / ``scores`` hold, per source row, the ``k`` best target
    entities sorted by descending score with ties broken by ascending
    target id (matching ``np.argmax`` semantics in position 0).  When the
    decode was restricted to a candidate subset, ``columns`` holds the
    (sorted) original target ids and ``indices`` refers to those original
    ids; the column-wise arrays are positional within ``columns``.

    ``approximate`` marks a decode restricted to per-row candidate sets
    (``row_candidates``): uncomputed cells are unknown, so the exact-row
    fallbacks and the CSLS statistics are unavailable — consumers that
    would be silently lossy raise instead.  ``computed_cells`` counts the
    dot products the decode actually performed (the FLOPs proxy recorded
    by the efficiency experiment and enforced by the scaling benchmark).

    ``worker_rss_mb`` is the *sum* of the forked workers' peak RSS when the
    decode ran sharded (``num_workers > 1``), zero otherwise.  The parent's
    ``getrusage`` cannot provide this figure — ``RUSAGE_CHILDREN`` tracks
    only the single largest terminated child — so the efficiency experiment
    adds it to the parent's own peak to report true multi-process memory.
    """

    shape: tuple[int, int]
    k: int
    csls_k: int
    indices: np.ndarray            # (n_s, k) original target ids
    scores: np.ndarray             # (n_s, k) descending
    col_max: np.ndarray            # (n_cols,)
    col_argmax: np.ndarray         # (n_cols,) source ids (first max wins)
    row_knn_mean: np.ndarray       # (n_s,)  CSLS r_T
    col_knn_mean: np.ndarray       # (n_cols,) CSLS r_S
    columns: np.ndarray | None = None
    dtype: np.dtype = np.dtype(np.float64)
    approximate: bool = False
    computed_cells: int = 0
    worker_rss_mb: float = 0.0
    _source_norm: list[np.ndarray] = field(default_factory=list, repr=False)
    _target_norm: list[np.ndarray] = field(default_factory=list, repr=False)

    # ------------------------------------------------------------------
    @property
    def num_source(self) -> int:
        return self.shape[0]

    @property
    def num_columns(self) -> int:
        """Number of target columns actually decoded (candidate-restricted)."""
        return len(self.col_max)

    def is_exhaustive(self) -> bool:
        """True when every decoded column is stored, i.e. top-k is the full row."""
        return not self.approximate and self.k >= self.num_columns

    def _require_exact(self, operation: str) -> None:
        if self.approximate:
            raise ValueError(
                f"{operation} needs every similarity cell, but this decode was "
                "restricted to approximate candidate sets; decode with "
                "candidates='exhaustive' (or, for mutual-NN pseudo-seeding, "
                "an exact-escalation IVF decode)")

    # ------------------------------------------------------------------
    def row_scores(self, source_id: int) -> np.ndarray:
        """Exact full similarity row (over the decoded columns).

        This is the ``O(n_t)`` exactness fallback used when a gold target
        falls outside the stored top-``k``: the same round-averaged product
        the streaming pass computed, re-materialised for one row.
        """
        self._require_exact("row_scores")
        row = np.zeros(self.num_columns, dtype=np.float64)
        for source_state, target_state in zip(self._source_norm, self._target_norm):
            row += np.asarray(source_state[source_id] @ target_state.T, dtype=np.float64)
        return row / len(self._source_norm)

    def dense(self) -> np.ndarray:
        """Materialise the full similarity matrix (tests / tiny decodes only)."""
        blocks = [self.row_scores(row) for row in range(self.num_source)]
        return np.stack(blocks, axis=0)

    # ------------------------------------------------------------------
    def best_target(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-source best target id and score (``argmax`` row semantics)."""
        return self.indices[:, 0], self.scores[:, 0]

    def csls_scores(self, rows: np.ndarray | None = None) -> np.ndarray:
        """CSLS values of the kept (top-k) entries: ``2 s - r_T(i) - r_S(j)``.

        Matches ``csls_similarity(dense)[i, indices[i, j]]`` entry for entry
        (identical arithmetic order, hence bit-identical given the streamed
        means).  ``rows`` restricts the computation to a subset of source
        rows — the CSLS-ranked evaluation path only needs the test rows.
        """
        self._require_exact("csls_scores")
        indices = self.indices if rows is None else self.indices[rows]
        scores = self.scores if rows is None else self.scores[rows]
        row_means = self.row_knn_mean if rows is None else self.row_knn_mean[rows]
        col_positions = self.column_positions(indices)
        return (2.0 * scores
                - row_means[:, None]
                - self.col_knn_mean[col_positions])

    def csls_row(self, source_id: int) -> np.ndarray:
        """Exact full CSLS row over the decoded columns (``O(n_cols)``).

        The CSLS counterpart of :meth:`row_scores`, used as the evaluation
        fallback when a gold rank cannot be proven from the stored top-k.
        """
        self._require_exact("csls_row")
        return (2.0 * self.row_scores(source_id)
                - self.row_knn_mean[source_id]
                - self.col_knn_mean)

    def column_positions(self, target_ids: np.ndarray) -> np.ndarray:
        """Map original target ids to positions within the decoded columns.

        The ids must be among the decoded columns (always true without a
        candidate restriction); the column-wise arrays (``col_max``,
        ``col_knn_mean``…) are indexed by these positions.
        """
        if self.columns is None:
            return target_ids
        positions = np.searchsorted(self.columns, target_ids)
        return positions

    # ------------------------------------------------------------------
    def mutual_nearest_pairs(self, threshold: float = 0.0,
                             exclude_source: set[int] | None = None,
                             exclude_target: set[int] | None = None) -> list[tuple[int, int]]:
        """Mutual nearest-neighbour pairs, identical to the dense selection.

        Row bests come from position 0 of the stored top-k (first-index tie
        break); column bests from the running column argmax, whose
        strictly-greater update rule preserves the dense ``argmax``
        first-row-wins tie semantics across blocks.
        """
        exclude_source = exclude_source or set()
        exclude_target = exclude_target or set()
        best_ids, best_scores = self.best_target()
        source_ids = np.arange(self.num_source)
        col_positions = self.column_positions(best_ids)
        keep = self.col_argmax[col_positions] == source_ids
        keep &= best_scores >= threshold
        if exclude_source:
            keep &= ~np.isin(source_ids, np.fromiter(exclude_source, dtype=np.int64))
        if exclude_target:
            keep &= ~np.isin(best_ids, np.fromiter(exclude_target, dtype=np.int64))
        return [(int(s), int(t)) for s, t in zip(source_ids[keep], best_ids[keep])]


@dataclass
class PartialTopK:
    """One row shard's decode reductions, mergeable across shards.

    The unit of the multi-process sharded decode: a worker that owns the
    source rows ``rows`` (disjoint from every other shard) reduces its
    share of the streamed similarity to exactly these arrays, and
    :func:`merge_partials` combines any two shards into one — the
    column-max reduction is the lexicographic maximum by
    ``(value, -source row)``, which is associative and commutative, so the
    merged result is independent of worker completion order and of how the
    rows were partitioned (the property the sharded property tests pin).

    ``col_top`` carries the running per-column top-``csls_k`` values the
    CSLS column means are computed from; it is ``None`` on the
    candidate-restricted path (no CSLS statistics there).
    ``worker_rss_mb`` is the producing process's peak RSS — summed by the
    merge so the efficiency experiment can report true multi-process
    memory instead of the parent's RSS alone.
    """

    rows: np.ndarray               # (m,) global source row ids, ascending
    indices: np.ndarray            # (m, k_keep) column ids (local to decode)
    scores: np.ndarray             # (m, k_keep) descending
    col_max: np.ndarray            # (n_cols,)
    col_argmax: np.ndarray         # (n_cols,) global source ids
    col_top: np.ndarray | None     # (<= csls_k_col, n_cols) or None
    csls_k_col: int
    computed_cells: int
    worker_rss_mb: float = 0.0

    @property
    def num_rows(self) -> int:
        return len(self.rows)


def merge_partials(a: PartialTopK, b: PartialTopK) -> PartialTopK:
    """Merge two disjoint row shards' reductions into one.

    Associative and commutative:

    * row top-k lists concatenate (shards own disjoint rows) and are kept
      sorted by global row id;
    * the column max/argmax merge takes, per column, the lexicographically
      larger ``(value, -source row)`` — on exact value ties the lower
      source row wins, exactly the dense ``np.argmax(axis=0)``
      first-row-wins semantics the single-process engine maintains with
      its strictly-greater running update;
    * the column top-``csls_k`` values merge as a multiset top-k (the
      top-k of a union is the top-k of the partial top-ks), which keeps
      the final ascending-sorted CSLS column means bit-identical to the
      single-process accumulation.
    """
    if a.csls_k_col != b.csls_k_col:
        raise ValueError("partials disagree on csls_k_col")
    rows = np.concatenate([a.rows, b.rows])
    order = np.argsort(rows, kind="stable")
    rows = rows[order]
    indices = np.concatenate([a.indices, b.indices], axis=0)[order]
    scores = np.concatenate([a.scores, b.scores], axis=0)[order]

    take_b = (b.col_max > a.col_max) | ((b.col_max == a.col_max)
                                        & (b.col_argmax < a.col_argmax))
    col_max = np.where(take_b, b.col_max, a.col_max)
    col_argmax = np.where(take_b, b.col_argmax, a.col_argmax)

    col_top: np.ndarray | None = None
    if a.col_top is not None and b.col_top is not None:
        stacked = np.concatenate([a.col_top, b.col_top], axis=0)
        if stacked.shape[0] > a.csls_k_col:
            stacked = np.partition(stacked, stacked.shape[0] - a.csls_k_col,
                                   axis=0)[stacked.shape[0] - a.csls_k_col:]
        col_top = stacked

    return PartialTopK(
        rows=rows, indices=indices, scores=scores,
        col_max=col_max, col_argmax=col_argmax, col_top=col_top,
        csls_k_col=a.csls_k_col,
        computed_cells=a.computed_cells + b.computed_cells,
        worker_rss_mb=a.worker_rss_mb + b.worker_rss_mb,
    )


def merge_partial_topk(partials) -> PartialTopK:
    """Reduce any number of disjoint shards; invariant to their order."""
    partials = list(partials)
    if not partials:
        raise ValueError("no partials to merge")
    merged = partials[0]
    for partial in partials[1:]:
        merged = merge_partials(merged, partial)
    return merged


def compute_partial_topk(source_norm: list[np.ndarray],
                         target_norm: list[np.ndarray],
                         row_start: int, row_stop: int,
                         k_keep: int, csls_k_col: int,
                         block_size: int) -> PartialTopK:
    """Exhaustive streamed reduction of the source rows [row_start, row_stop).

    The states must already be the engine's normalised tables (the caller
    — :func:`blockwise_topk` or a sharded worker — performs the one
    up-front normalisation pass).  ``row_start`` should be a multiple of
    ``block_size`` so a sharded scan issues the very same block GEMMs as
    the single-process one, making the merged decode bit-identical.
    """
    num_rows = row_stop - row_start
    num_cols = target_norm[0].shape[0]
    num_rounds = len(source_norm)

    indices = np.empty((num_rows, k_keep), dtype=np.int64)
    scores = np.empty((num_rows, k_keep), dtype=np.float64)
    col_max = np.full(num_cols, -np.inf, dtype=np.float64)
    col_argmax = np.zeros(num_cols, dtype=np.int64)
    # Running top-(csls_k) values per column, merged block by block.
    col_top = np.empty((0, num_cols), dtype=np.float64)

    for start in range(row_start, row_stop, block_size):
        stop = min(start + block_size, row_stop)
        local = start - row_start
        count_dot_products((stop - start) * num_cols * num_rounds)
        block = source_norm[0][start:stop] @ target_norm[0].T
        for round_index in range(1, num_rounds):
            block = block + source_norm[round_index][start:stop] @ target_norm[round_index].T
        block = np.asarray(block, dtype=np.float64)
        if num_rounds > 1:
            block = block / num_rounds

        # (a) exact row top-k: partial selection then a deterministic
        # (score desc, target id asc) sort so position 0 matches argmax.
        if k_keep < num_cols:
            part = np.argpartition(block, num_cols - k_keep, axis=1)[:, num_cols - k_keep:]
        else:
            part = np.broadcast_to(np.arange(num_cols), block.shape).copy()
        part_scores = np.take_along_axis(block, part, axis=1)
        order = np.lexsort((part, -part_scores))
        indices[local:local + (stop - start)] = np.take_along_axis(part, order, axis=1)
        scores[local:local + (stop - start)] = np.take_along_axis(part_scores, order, axis=1)
        # When the maximum is tied across more than k columns, argpartition
        # may omit the first-index maximiser; position 0 must nevertheless
        # carry exact np.argmax(axis=1) semantics for mutual-NN selection.
        indices[local:local + (stop - start), 0] = block.argmax(axis=1)

        # (b) running column max / argmax; strictly-greater update keeps the
        # first (lowest source id) maximiser, matching np.argmax(axis=0).
        block_max = block.max(axis=0)
        block_argmax = block.argmax(axis=0)
        improved = block_max > col_max
        col_max[improved] = block_max[improved]
        col_argmax[improved] = start + block_argmax[improved]

        # (c) running per-column top-k for the CSLS column means.
        stacked = np.concatenate([col_top, block], axis=0)
        if stacked.shape[0] > csls_k_col:
            stacked = np.partition(stacked, stacked.shape[0] - csls_k_col,
                                   axis=0)[stacked.shape[0] - csls_k_col:]
        col_top = stacked

    return PartialTopK(
        rows=np.arange(row_start, row_stop, dtype=np.int64),
        indices=indices, scores=scores,
        col_max=col_max, col_argmax=col_argmax, col_top=col_top,
        csls_k_col=csls_k_col,
        computed_cells=num_rows * num_cols * num_rounds,
    )


def blockwise_topk(source, target, k: int = 10,
                   block_size: int | None = None,
                   dtype=np.float64,
                   csls_k: int = 10,
                   columns: np.ndarray | None = None,
                   row_candidates: RowCandidates | None = None,
                   pre_normalized: bool = False,
                   num_workers: int | None = None) -> TopKSimilarity:
    """Stream the (round-averaged) cosine similarity and reduce to top-k.

    Parameters
    ----------
    source, target:
        Embedding matrices, or lists of per-propagation-round states whose
        cosine similarities are averaged (the paper's decoding rule).  Rows
        are L2-normalised once up front, in float64.
    k:
        Neighbours kept per source row (exact, via ``np.argpartition``).
    block_size:
        Source rows per streamed block; peak transient memory is
        ``O(block_size · n_t)``.
    dtype:
        Compute dtype of the streamed products (float64 default; float32
        halves memory traffic for large decodes).
    csls_k:
        ``k`` of the CSLS local-scaling means (10 in the literature).
    columns:
        Optional sorted array of target ids restricting the decode to a
        candidate subset (the restricted evaluation protocol).
    row_candidates:
        Optional per-row candidate sets from :mod:`repro.core.ann`; the
        block loop then gathers only the candidate cells (a sparse gather
        instead of full block matmuls), dropping decode FLOPs below
        ``O(n_s · n_t)``.  A *complete* candidate set (every row holds
        every column — e.g. IVF with ``nprobe == n_clusters``) dispatches
        to the exhaustive GEMM path, reproducing it bit for bit.
    pre_normalized:
        Declare that every state is already the output of the engine's own
        row normalisation at ``dtype`` (``_normalize_rows(...).astype``),
        skipping the per-call normalisation pass.  The serving path caches
        the normalised tables once per artifact and decodes row subsets
        against them — bit-identically, because the very same normalised
        values enter the products.
    num_workers:
        ``> 1`` shards the source rows across that many forked worker
        processes (see :mod:`repro.core.sharded`): each worker owns a
        block-aligned row shard and streams it exactly as the
        single-process engine would, and the partial reductions are merged
        by the associative :func:`merge_partials` reducer — bit-identical
        to ``num_workers=None`` on complete candidate sets.  Falls back to
        the in-process scan when forking is unavailable.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    if csls_k <= 0:
        raise ValueError("csls_k must be positive")
    if block_size is None:
        block_size = DEFAULT_BLOCK_SIZE
    if block_size <= 0:
        raise ValueError("block_size must be positive")

    source_states = _as_state_list(source)
    target_states = _as_state_list(target)
    if len(source_states) != len(target_states):
        raise ValueError("source and target must have the same number of rounds")

    if row_candidates is not None:
        if columns is not None:
            raise ValueError(
                "columns= and row_candidates= are mutually exclusive decode "
                "restrictions")
        if row_candidates.num_rows != np.asarray(source_states[0]).shape[0]:
            raise ValueError("row_candidates row count must match the source rows")
        if row_candidates.num_columns != np.asarray(target_states[0]).shape[0]:
            raise ValueError("row_candidates column count must match the targets")
        if row_candidates.is_complete():
            # Probing everything is the exhaustive decode; take the identical
            # GEMM path so the results match bit for bit.
            row_candidates = None

    if row_candidates is not None:
        return _blockwise_topk_candidates(source_states, target_states,
                                          row_candidates, k=k,
                                          block_size=block_size, dtype=dtype,
                                          csls_k=csls_k,
                                          pre_normalized=pre_normalized,
                                          num_workers=num_workers)

    if columns is not None:
        columns = np.asarray(columns, dtype=np.int64)
        if len(columns) and np.any(np.diff(columns) < 0):
            raise ValueError("columns must be sorted ascending")

    dtype = np.dtype(dtype)
    if pre_normalized:
        source_norm = [np.asarray(state) for state in source_states]
    else:
        source_norm = [_normalize_rows(state).astype(dtype, copy=False)
                       for state in source_states]
    num_target = np.asarray(target_states[0]).shape[0]
    target_norm = []
    for state in target_states:
        normalized = (np.asarray(state) if pre_normalized
                      else _normalize_rows(state))
        if columns is not None:
            normalized = normalized[columns]
        target_norm.append(normalized.astype(dtype, copy=False))

    num_source = source_norm[0].shape[0]
    num_cols = target_norm[0].shape[0]
    num_rounds = len(source_norm)
    k_eff = min(k, num_cols)
    csls_k_row = min(csls_k, num_cols)
    csls_k_col = min(csls_k, num_source)
    # One row selection serves both the decode top-k and the CSLS row mean.
    k_keep = min(max(k_eff, csls_k_row), num_cols)

    if num_workers is not None and num_workers > 1 and num_source > 1:
        from .sharded import scan_partials_parallel
        partial = merge_partial_topk(scan_partials_parallel(
            source_norm, target_norm, kind="exhaustive",
            num_workers=num_workers, block_size=block_size,
            k_keep=k_keep, csls_k_col=csls_k_col))
        count_dot_products(partial.computed_cells)
    else:
        partial = compute_partial_topk(source_norm, target_norm, 0, num_source,
                                       k_keep=k_keep, csls_k_col=csls_k_col,
                                       block_size=block_size)

    indices = partial.indices
    if columns is not None:
        indices = columns[indices]

    # Means are taken over ascending-sorted values so they are bit-identical
    # to the dense ``np.sort(...)[-k:].mean()`` formulation.
    row_knn_mean = np.sort(partial.scores[:, :csls_k_row], axis=1).mean(axis=1)
    col_knn_mean = np.sort(partial.col_top, axis=0).mean(axis=0)

    return TopKSimilarity(
        shape=(num_source, num_target),
        k=k_keep,
        csls_k=csls_k,
        indices=indices,
        scores=partial.scores,
        col_max=partial.col_max,
        col_argmax=partial.col_argmax,
        row_knn_mean=row_knn_mean,
        col_knn_mean=col_knn_mean,
        columns=columns,
        dtype=dtype,
        computed_cells=num_source * num_cols * num_rounds,
        worker_rss_mb=partial.worker_rss_mb,
        _source_norm=source_norm,
        _target_norm=target_norm,
    )


def compute_partial_topk_candidates(source_norm: list[np.ndarray],
                                    target_norm: list[np.ndarray],
                                    row_candidates: RowCandidates,
                                    row_start: int, row_stop: int,
                                    k_keep: int, block_size: int,
                                    dtype) -> PartialTopK:
    """Candidate-restricted streamed reduction of rows [row_start, row_stop).

    ``row_candidates`` must already be padded to ``k_keep`` (row-local, so
    padding before or after sharding is equivalent).  Per-cell values come
    from :meth:`RowCandidates.gather_values` — the per-edge ``einsum`` by
    default, one dense matmul per (query group, IVF bucket) on a
    :class:`~repro.core.ann.GroupedRowCandidates` — and every cell's dot
    product is row-local, so shard membership never changes a value.
    """
    dtype = np.dtype(dtype)
    indptr, cand_indices = row_candidates.indptr, row_candidates.indices
    num_cols = row_candidates.num_columns
    num_rounds = len(source_norm)
    total_rows = row_stop - row_start

    indices = np.empty((total_rows, k_keep), dtype=np.int64)
    scores = np.empty((total_rows, k_keep), dtype=np.float64)
    col_max = np.full(num_cols, -np.inf, dtype=np.float64)
    col_argmax = np.zeros(num_cols, dtype=np.int64)
    computed = 0

    for start in range(row_start, row_stop, block_size):
        stop = min(start + block_size, row_stop)
        num_rows = stop - start
        local = start - row_start
        lo, hi = indptr[start], indptr[stop]
        cols = cand_indices[lo:hi]
        counts = np.diff(indptr[start:stop + 1])
        rows_local = np.repeat(np.arange(num_rows), counts)
        computed += len(cols) * num_rounds
        values = row_candidates.gather_values(source_norm, target_norm,
                                              start, stop, rows_local, cols,
                                              dtype)

        # (a) per-row top-k over the candidate cells.  Rows are padded into
        # a (num_rows, width) matrix with -inf sentinels; every row holds at
        # least k_keep real candidates, so sentinels are never selected.
        width = int(counts.max()) if num_rows else 0
        block = np.full((num_rows, width), -np.inf, dtype=np.float64)
        cand_ids = np.zeros((num_rows, width), dtype=np.int64)
        pos_in_row = np.arange(len(cols)) - np.repeat(np.cumsum(counts) - counts,
                                                      counts)
        block[rows_local, pos_in_row] = values
        cand_ids[rows_local, pos_in_row] = cols
        if k_keep < width:
            part = np.argpartition(block, width - k_keep, axis=1)[:, width - k_keep:]
        else:
            part = np.broadcast_to(np.arange(width), block.shape).copy()
        part_scores = np.take_along_axis(block, part, axis=1)
        part_ids = np.take_along_axis(cand_ids, part, axis=1)
        order = np.lexsort((part_ids, -part_scores))
        indices[local:local + num_rows] = np.take_along_axis(part_ids, order, axis=1)
        scores[local:local + num_rows] = np.take_along_axis(part_scores, order, axis=1)
        # Candidates ascend within a row, so the padded matrix's argmax is
        # the first-index maximiser over the computed cells — the same
        # position-0 contract the exhaustive engine keeps for mutual-NN.
        first = block.argmax(axis=1)
        indices[local:local + num_rows, 0] = cand_ids[np.arange(num_rows), first]

        # (b) running column max/argmax over the computed cells only.  Per
        # column pick the block's best value with the lowest source row,
        # then apply the strictly-greater cross-block update.
        if len(cols):
            group = np.lexsort((rows_local, -values, cols))
            grouped_cols = cols[group]
            leaders = np.ones(len(group), dtype=bool)
            leaders[1:] = grouped_cols[1:] != grouped_cols[:-1]
            lead = group[leaders]
            lead_cols = cols[lead]
            improved = values[lead] > col_max[lead_cols]
            col_max[lead_cols[improved]] = values[lead][improved]
            col_argmax[lead_cols[improved]] = start + rows_local[lead][improved]

    return PartialTopK(
        rows=np.arange(row_start, row_stop, dtype=np.int64),
        indices=indices, scores=scores,
        col_max=col_max, col_argmax=col_argmax, col_top=None,
        csls_k_col=0,
        computed_cells=computed,
    )


def _blockwise_topk_candidates(source_states: list[np.ndarray],
                               target_states: list[np.ndarray],
                               row_candidates: RowCandidates,
                               k: int, block_size: int, dtype,
                               csls_k: int,
                               pre_normalized: bool = False,
                               num_workers: int | None = None) -> TopKSimilarity:
    """Candidate-restricted streaming decode (sparse gather per block).

    Only the cells named by ``row_candidates`` are computed — a gathered
    ``einsum`` per block (or one dense matmul per probed IVF bucket for
    grouped candidate structures) instead of full block matmuls — so FLOPs
    are ``O(Σ_i |C_i| · d)``.  Row top-k and the running column max/argmax
    keep the exhaustive engine's deterministic tie semantics *restricted to
    the computed cells*; the result is flagged ``approximate`` and carries
    no CSLS statistics (consumers refuse rather than degrade).
    """
    dtype = np.dtype(dtype)
    if pre_normalized:
        source_norm = [np.asarray(state) for state in source_states]
        target_norm = [np.asarray(state) for state in target_states]
    else:
        source_norm = [_normalize_rows(state).astype(dtype, copy=False)
                       for state in source_states]
        target_norm = [_normalize_rows(state).astype(dtype, copy=False)
                       for state in target_states]
    num_source = source_norm[0].shape[0]
    num_cols = target_norm[0].shape[0]
    num_rounds = len(source_norm)
    # No CSLS statistics exist on the candidate path, so only the requested
    # k rows are kept (the exhaustive engine widens to csls_k).
    k_keep = min(k, num_cols)
    # Guarantee every row can fill its k_keep slots: deficient rows get the
    # smallest missing column ids appended (a few exact extra dot products),
    # so stored rows never contain padding sentinels.
    row_candidates = row_candidates.padded(k_keep)

    if num_workers is not None and num_workers > 1 and num_source > 1:
        from .sharded import scan_partials_parallel
        partial = merge_partial_topk(scan_partials_parallel(
            source_norm, target_norm, kind="candidates",
            num_workers=num_workers, block_size=block_size,
            k_keep=k_keep, row_candidates=row_candidates, dtype=dtype))
        count_dot_products(partial.computed_cells)
    else:
        partial = compute_partial_topk_candidates(
            source_norm, target_norm, row_candidates, 0, num_source,
            k_keep=k_keep, block_size=block_size, dtype=dtype)

    return TopKSimilarity(
        shape=(num_source, num_cols),
        k=k_keep,
        csls_k=csls_k,
        indices=partial.indices,
        scores=partial.scores,
        col_max=partial.col_max,
        col_argmax=partial.col_argmax,
        row_knn_mean=np.full(num_source, np.nan),
        col_knn_mean=np.full(num_cols, np.nan),
        columns=None,
        dtype=dtype,
        approximate=True,
        computed_cells=row_candidates.total * num_rounds,
        worker_rss_mb=partial.worker_rss_mb,
        _source_norm=source_norm,
        _target_norm=target_norm,
    )
