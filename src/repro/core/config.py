"""Configuration objects for DESAlign and its training loop."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from . import rules
from .ann import AnnConfig

__all__ = ["DESAlignConfig", "TrainingConfig", "DEFAULT_ENCODE_BATCH"]

#: Order in which modalities are stacked inside the cross-modal attention.
MODALITY_ORDER = ("graph", "relation", "attribute", "vision")

#: Default seed-batch size of the sampled (batched) inference path, shared
#: by ``DESAlign.encode_entities_sampled`` and ``TrainingConfig``.
DEFAULT_ENCODE_BATCH = 2048


@dataclass(frozen=True)
class DESAlignConfig:
    """Hyper-parameters of the DESAlign model (Sec. IV / Sec. V-A(4)).

    Attributes
    ----------
    hidden_dim:
        Unified hidden dimensionality ``d`` of every modality embedding
        (300 in the paper; scaled down by default for CPU runs).
    gat_layers, gat_heads:
        Depth and head count of the structural GAT encoder.
    attention_heads:
        Heads ``N_h`` of the cross-modal attention block (1 in the paper).
    feed_forward_dim:
        Inner dimensionality of the CAW feed-forward network.
    temperature:
        Contrastive temperature ``τ`` (0.1 in the paper).
    modalities:
        Which modalities participate; dropping entries implements the
        modality ablations of Fig. 3 (left).
    use_min_confidence:
        Whether intra-modal losses are weighted by the minimum modality
        confidence ``φ_m = min(w_m_i, w_m_j)`` (Sec. IV-B).
    energy_floor (c_min), energy_ceiling (c_max):
        Hyper-parameters of the Dirichlet-energy constraint of Prop. 3;
        used by the energy regulariser and the training monitor.
    use_initial_task_loss, use_previous_modal_loss:
        Toggles for the ``L_task(0)`` and ``L_m(k-1)`` objective terms of
        Eq. 15 (ablation knobs).
    backend:
        Graph backend: ``"dense"`` keeps every graph operator as an
        ``n x n`` array (the original formulation); ``"sparse"`` runs CSR
        message passing, sparse propagation and edge-wise energies in
        ``O(|E|)`` memory; ``"auto"`` (the default) follows whatever
        backend the prepared task already uses, so a sparse task is never
        silently densified.  Dense and sparse are numerically equivalent;
        sparse is required beyond a few hundred entities.
    propagation_iters:
        Number of Semantic Propagation rounds ``n_p`` (Fig. 4).
    propagation_average:
        Average pairwise similarities over all propagation rounds (the
        paper's final decoding rule) instead of using the last round only.
    evaluation_embedding:
        ``"original"`` uses the early-fusion embedding ``h_Ori`` (the
        paper's choice); ``"fused"`` uses the late-fusion ``h_Fus``.
    """

    hidden_dim: int = 32
    gat_layers: int = 2
    gat_heads: int = 2
    attention_heads: int = 1
    feed_forward_dim: int = 64
    dropout: float = 0.0
    temperature: float = 0.1
    modalities: tuple[str, ...] = MODALITY_ORDER
    backend: str = "auto"
    use_min_confidence: bool = True
    energy_floor: float = 0.1
    energy_ceiling: float = 2.0
    energy_weight: float = 0.0
    use_initial_task_loss: bool = True
    use_final_task_loss: bool = True
    use_previous_modal_loss: bool = True
    use_final_modal_loss: bool = True
    propagation_iters: int = 2
    propagation_average: bool = True
    propagation_reset_known: bool = True
    evaluation_embedding: str = "original"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.hidden_dim <= 0:
            raise ValueError("hidden_dim must be positive")
        if self.hidden_dim % max(1, self.gat_heads) != 0:
            raise ValueError("hidden_dim must be divisible by gat_heads")
        if self.hidden_dim % max(1, self.attention_heads) != 0:
            raise ValueError("hidden_dim must be divisible by attention_heads")
        unknown = set(self.modalities) - set(MODALITY_ORDER)
        if unknown:
            raise ValueError(f"unknown modalities: {sorted(unknown)}")
        if not self.modalities:
            raise ValueError("at least one modality is required")
        if self.evaluation_embedding not in {"original", "fused"}:
            raise ValueError("evaluation_embedding must be 'original' or 'fused'")
        rules.check_backend(self.backend, allow_auto=True)
        if not 0.0 < self.temperature:
            raise ValueError("temperature must be positive")
        if self.propagation_iters < 0:
            raise ValueError("propagation_iters must be non-negative")

    def with_overrides(self, **kwargs) -> "DESAlignConfig":
        """Return a copy with selected hyper-parameters replaced."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class TrainingConfig:
    """Optimisation hyper-parameters shared by DESAlign and the baselines.

    Attributes
    ----------
    sampling:
        Training strategy: ``"full"`` encodes both whole graphs on every
        optimiser step (the original formulation); ``"neighbour"`` runs
        GraphSAGE-style layer-wise neighbour-sampled mini-batches through
        the subgraph-aware encoder path, so a step's cost scales with the
        batch's receptive field instead of the graph size.  The model must
        expose ``subgraph_loss`` / ``neighbour_sampler`` (DESAlign does).
    fanouts:
        Per-encoder-layer neighbour fanouts for ``sampling="neighbour"``;
        ``None`` (or any ``None`` / ``-1`` entry) keeps the full
        neighbourhood of that layer, which reproduces full-graph training
        numerically.
    eval_batch_size:
        Seed-batch size of the sampled inference path used by the
        neighbour strategy's evaluations.
    early_stopping_patience / eval_every:
        Early stopping consumes the periodic evaluations, so enabling it
        requires an evaluation cadence (``eval_every > 0``).
    candidates / ann:
        Candidate generation of the decode stack (``"exhaustive"`` — every
        cell, the default — or ``"ivf"`` / ``"lsh"`` approximate candidate
        sets, see :mod:`repro.core.ann`).  Periodic evaluations use the
        setting as-is; the iterative strategy's mutual-NN pseudo-seed
        decode escalates IVF probing until its top-1 is provably exact, and
        ``iterative=True`` with ``candidates="lsh"`` is rejected because
        LSH offers no such guarantee (pseudo-seeding would be silently
        lossy).  The ``ann`` seed defaults to this config's ``seed``, so
        one seed drives the sampler, the loader and the quantiser alike.
    """

    epochs: int = 120
    learning_rate: float = 5e-3
    weight_decay: float = 1e-2
    warmup_fraction: float = 0.15
    grad_clip: float = 5.0
    batch_size: int = 512
    early_stopping_patience: int = 0
    eval_every: int = 20
    iterative: bool = False
    iterative_rounds: int = 2
    iterative_epochs: int = 40
    iterative_threshold: float = 0.0
    sampling: str = "full"
    fanouts: tuple[int | None, ...] | None = None
    eval_batch_size: int = DEFAULT_ENCODE_BATCH
    candidates: str = "exhaustive"
    ann: AnnConfig | None = None
    log_energy: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        # Every rule delegates to repro.core.rules so this config, the
        # evaluator and PipelineSpec.validate() reject a combination with
        # one shared message.
        rules.check_sampling_method(self.sampling)
        rules.check_candidates_method(self.candidates)
        rules.check_iterative_candidates(self.iterative, self.candidates)
        rules.check_patience_cadence(self.early_stopping_patience, self.eval_every)
        rules.check_fanouts(self.fanouts)
        if self.eval_batch_size <= 0:
            raise ValueError("eval_batch_size must be positive")

    def with_overrides(self, **kwargs) -> "TrainingConfig":
        """Return a copy with selected fields replaced."""
        return replace(self, **kwargs)
