"""Training loops for DESAlign and the baselines.

Implements the optimisation recipe of Sec. V-A(4): AdamW, cosine warm-up
over the first 15% of steps, gradient clipping, optional early stopping,
and the optional *iterative strategy* — a buffering mechanism that promotes
cross-graph mutual nearest-neighbour pairs from the candidate (test) pool to
pseudo-seed alignments between training rounds.

The *how* of one optimisation phase is a pluggable :class:`TrainingLoop`
strategy selected by ``TrainingConfig.sampling``:

* :class:`FullGraphLoop` (``sampling="full"``) encodes both whole graphs on
  every step — the original formulation, simplest and fastest at small
  scale;
* :class:`NeighbourSampledLoop` (``sampling="neighbour"``) draws
  GraphSAGE-style layer-wise neighbour-sampled mini-batches through a
  :class:`~repro.data.loader.SeedPairLoader` and the model's subgraph-aware
  encoder path, evaluates through batched (scatter-back) inference and runs
  the iterative pseudo-seed selection on the streaming blockwise decode —
  no stage ever materialises a full-graph forward pass or an
  ``n_s x n_t`` similarity matrix.

Every aligner in this repository (DESAlign and the baselines) exposes the
same minimal interface — ``loss(source_index, target_index)``,
``similarity()`` and ``parameters()`` — so a single :class:`Trainer` covers
the whole model zoo and the experiment harness stays uniform; the
neighbour strategy additionally requires ``subgraph_loss`` and
``neighbour_sampler`` (DESAlign implements both).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..autograd import Tensor
from ..data.loader import SeedPairLoader, epoch_order
from ..eval.evaluator import Evaluator, filter_supported_kwargs
from ..eval.metrics import AlignmentMetrics
from ..nn import AdamW, CosineWarmupSchedule, EarlyStopping, GradientClipper
from .alignment import mutual_nearest_pairs
from .ann import AnnConfig, IVFWarmStart, resolve_ann
from .compat import spec_driven, warn_legacy
from .config import TrainingConfig
from .registries import TRAINING_LOOP_REGISTRY, register_training_loop
from .energy import EnergyMonitor
from .task import PreparedTask

__all__ = ["TrainingHistory", "TrainingResult", "TrainingLoop", "FullGraphLoop",
           "NeighbourSampledLoop", "build_training_loop", "Trainer"]


@dataclass
class TrainingHistory:
    """Per-epoch loss values and periodic evaluation metrics."""

    losses: list[float] = field(default_factory=list)
    evaluations: list[tuple[int, AlignmentMetrics]] = field(default_factory=list)
    pseudo_pairs: list[int] = field(default_factory=list)

    def last_metrics(self) -> AlignmentMetrics | None:
        return self.evaluations[-1][1] if self.evaluations else None


@dataclass
class TrainingResult:
    """Outcome of a full training run."""

    metrics: AlignmentMetrics
    history: TrainingHistory
    train_seconds: float
    decode_seconds: float
    num_parameters: int

    def as_dict(self) -> dict[str, float]:
        summary = dict(self.metrics.as_dict())
        summary["train_seconds"] = self.train_seconds
        summary["decode_seconds"] = self.decode_seconds
        return summary


def _loss_total(value) -> Tensor:
    """Accept either a plain Tensor or a LossBreakdown-like object."""
    return value.total if hasattr(value, "total") else value


class TrainingLoop:
    """Strategy object: how batches form, how a loss is computed, how to evaluate.

    Subclasses implement :meth:`epoch_batches`, :meth:`batch_loss`,
    :meth:`_evaluate` and :meth:`model_similarity`; the optimisation
    skeleton (:meth:`train_phase`) — optimiser, schedule, clipping, the
    periodic-evaluation cadence and early stopping — is shared.
    """

    name = "abstract"

    def __init__(self, model, task: PreparedTask, config: TrainingConfig,
                 rng: np.random.Generator):
        self.model = model
        self.task = task
        self.config = config
        self._rng = rng
        self.evaluator = self._build_evaluator()
        #: Wall-clock seconds of the most recent :meth:`evaluate` call.
        self.last_eval_seconds = 0.0
        #: Carries IVF k-means centroids across the iterative strategy's
        #: per-round pseudo-seed decodes (None off the IVF path).
        self._ann_warm_start = (IVFWarmStart()
                                if config.candidates == "ivf" else None)

    # -- strategy hooks -------------------------------------------------
    def _build_evaluator(self) -> Evaluator:
        raise NotImplementedError

    def epoch_batches(self, pairs: np.ndarray):
        """Yield one epoch's batches (strategy-specific batch objects)."""
        raise NotImplementedError

    def batch_loss(self, batch) -> Tensor:
        """Differentiable total loss of one batch."""
        raise NotImplementedError

    def model_similarity(self):
        """Similarity artefact feeding the iterative mutual-NN selection."""
        raise NotImplementedError

    def record_energy(self, monitor: EnergyMonitor, epoch: int) -> None:
        """Log a Dirichlet-energy snapshot (no-op where it would defeat sampling)."""

    # -- candidate generation -------------------------------------------
    def resolved_ann(self) -> AnnConfig | None:
        """The candidate-generation config with the training seed threaded in.

        One ``TrainingConfig.seed`` must deterministically drive the
        neighbour sampler, the batch loader *and* the k-means / hyperplane
        initialisation, so an ``ann`` config without an explicit seed
        inherits the training seed here.
        """
        if self.config.candidates == "exhaustive":
            return None
        return resolve_ann(self.config.ann, self.config.seed)

    def pseudo_seed_decode_kwargs(self) -> dict:
        """Decode keywords for the iterative mutual-NN pseudo-seed selection.

        Approximate candidates are only admissible here when escalation
        makes the per-row/per-column top-1 provably exact — IVF escalates,
        LSH cannot (rejected at config construction).
        """
        if self.config.candidates == "exhaustive":
            return {}
        if self.config.candidates == "lsh":
            raise ValueError(
                "mutual-NN pseudo-seeding cannot run on LSH candidates")
        ann = self.resolved_ann().with_overrides(exact_escalation=True)
        # The warm start re-fits each round's quantiser from the previous
        # round's centroids; escalation keeps the selection provably exact,
        # so the pseudo-seed pairs are independent of the centroid history.
        return {"decode": "blockwise", "candidates": "ivf", "ann": ann,
                "ann_warm_start": self._ann_warm_start}

    # -- shared skeleton ------------------------------------------------
    def evaluate(self) -> AlignmentMetrics:
        """Evaluate the model on the task's test split (timed)."""
        start = time.perf_counter()
        metrics = self._evaluate()
        self.last_eval_seconds = time.perf_counter() - start
        return metrics

    def _evaluate(self) -> AlignmentMetrics:
        return self.evaluator.evaluate_model(self.model)

    def train_phase(self, pairs: np.ndarray, epochs: int,
                    history: TrainingHistory,
                    energy_monitor: EnergyMonitor | None = None) -> None:
        """Run one optimisation phase over ``pairs`` for ``epochs`` epochs.

        Periodic evaluation — and the early-stopping update it feeds — runs
        strictly on the ``eval_every`` cadence; enabling early stopping
        without a cadence is rejected at config construction.
        """
        config = self.config
        if epochs <= 0 or len(pairs) == 0:
            return
        optimizer = AdamW(self.model.parameters(), lr=config.learning_rate,
                          weight_decay=config.weight_decay)
        batches_per_epoch = max(1, int(np.ceil(len(pairs) / config.batch_size)))
        schedule = CosineWarmupSchedule(optimizer, total_steps=epochs * batches_per_epoch,
                                        warmup_fraction=config.warmup_fraction)
        clipper = GradientClipper(config.grad_clip) if config.grad_clip else None
        stopper = (EarlyStopping(patience=config.early_stopping_patience)
                   if config.early_stopping_patience > 0 else None)

        for epoch in range(epochs):
            epoch_loss = 0.0
            num_batches = 0
            for batch in self.epoch_batches(pairs):
                schedule.step()
                optimizer.zero_grad()
                loss = self.batch_loss(batch)
                loss.backward()
                if clipper is not None:
                    clipper.clip(self.model.parameters())
                optimizer.step()
                epoch_loss += loss.item()
                num_batches += 1
            history.losses.append(epoch_loss / max(1, num_batches))

            should_evaluate = (config.eval_every > 0
                               and (epoch + 1) % config.eval_every == 0)
            if should_evaluate:
                metrics = self.evaluate()
                history.evaluations.append((len(history.losses), metrics))
                if energy_monitor is not None:
                    self.record_energy(energy_monitor, len(history.losses))
                if stopper is not None:
                    stopper.update(metrics.hits_at_1)
                    if stopper.should_stop:
                        break


@register_training_loop("full")
class FullGraphLoop(TrainingLoop):
    """Classic strategy: every step encodes all entities of both graphs."""

    name = "full"

    def _build_evaluator(self) -> Evaluator:
        return Evaluator(self.task, candidates=self.config.candidates,
                         ann=self.resolved_ann())

    def epoch_batches(self, pairs: np.ndarray):
        """Yield mini-batches of seed pairs (full batch when small enough)."""
        batch_size = self.config.batch_size
        order = epoch_order(self._rng, len(pairs), batch_size)
        for start in range(0, len(pairs), batch_size):
            yield pairs[order[start:start + batch_size]]

    def batch_loss(self, batch: np.ndarray) -> Tensor:
        return _loss_total(self.model.loss(batch[:, 0], batch[:, 1]))

    def model_similarity(self):
        # Forward use_propagation only when the signature accepts it — the
        # same inspection Evaluator.evaluate_model uses, so a TypeError
        # raised *inside* the decode surfaces instead of silently retrying
        # without propagation.
        kwargs = filter_supported_kwargs(self.model.similarity,
                                         use_propagation=True,
                                         **self.pseudo_seed_decode_kwargs())
        with spec_driven():
            return self.model.similarity(**kwargs)

    def record_energy(self, monitor: EnergyMonitor, epoch: int) -> None:
        if hasattr(self.model, "encode"):
            monitor.record(epoch, self.model.encode("source"))


@register_training_loop("neighbour")
class NeighbourSampledLoop(TrainingLoop):
    """Neighbour-sampled mini-batch strategy (GraphSAGE-style).

    Batches come from a :class:`SeedPairLoader` (sharing the trainer's
    generator, so the batch schedule matches the full-graph strategy);
    losses go through ``model.subgraph_loss``; evaluation and the iterative
    pseudo-seed decode use sampled (batched) inference plus the streaming
    blockwise top-k engine, so nothing materialises a full-graph forward or
    an ``n_s x n_t`` matrix.
    """

    name = "neighbour"

    def __init__(self, model, task: PreparedTask, config: TrainingConfig,
                 rng: np.random.Generator):
        if not (hasattr(model, "subgraph_loss") and hasattr(model, "neighbour_sampler")):
            raise TypeError(
                f"{type(model).__name__} does not support sampling='neighbour': "
                "it must expose subgraph_loss(...) and neighbour_sampler(...)")
        if getattr(getattr(model, "config", None), "energy_weight", 0) > 0:
            raise ValueError(
                "the Dirichlet-energy penalty (energy_weight > 0) requires the "
                "full Laplacian and cannot be trained with sampling='neighbour'")
        self._source_sampler = model.neighbour_sampler(
            "source", fanouts=config.fanouts, seed=config.seed)
        self._target_sampler = model.neighbour_sampler(
            "target", fanouts=config.fanouts, seed=config.seed + 1)
        super().__init__(model, task, config, rng)

    def _build_evaluator(self) -> Evaluator:
        return Evaluator(self.task, decode="blockwise", encode="sampled",
                         encode_batch_size=self.config.eval_batch_size,
                         candidates=self.config.candidates,
                         ann=self.resolved_ann())

    def epoch_batches(self, pairs: np.ndarray):
        loader = SeedPairLoader(pairs, self._source_sampler, self._target_sampler,
                                batch_size=self.config.batch_size, rng=self._rng)
        yield from loader

    def batch_loss(self, batch) -> Tensor:
        return _loss_total(self.model.subgraph_loss(
            batch.source_view, batch.target_view,
            batch.pairs[:, 0], batch.pairs[:, 1],
            source_local=batch.source_index, target_local=batch.target_index))

    def model_similarity(self):
        kwargs = {"use_propagation": True, "decode": "blockwise",
                  "encode": "sampled",
                  "encode_batch_size": self.config.eval_batch_size}
        kwargs.update(self.pseudo_seed_decode_kwargs())
        with spec_driven():
            return self.model.similarity(**kwargs)

    # Recording energy would require a full-graph encoder pass, which this
    # strategy exists to avoid; record_energy stays the base no-op, and
    # Trainer.__init__ rejects an energy monitor paired with this loop.


def build_training_loop(model, task: PreparedTask, config: TrainingConfig,
                        rng: np.random.Generator | None = None) -> TrainingLoop:
    """Instantiate the :class:`TrainingLoop` selected by ``config.sampling``.

    The lookup goes through the training-loop registry
    (:mod:`repro.core.registries`), so strategies registered by downstream
    code are selectable by name exactly like the built-ins.
    """
    rng = rng if rng is not None else np.random.default_rng(config.seed)
    loop_cls = TRAINING_LOOP_REGISTRY.get(config.sampling)
    if loop_cls is None:
        raise ValueError(
            f"no training loop registered under sampling={config.sampling!r}; "
            f"registered: {sorted(TRAINING_LOOP_REGISTRY)}")
    return loop_cls(model, task, config, rng)


class Trainer:
    """Generic trainer for entity-alignment models on a prepared task.

    This is the optimisation *engine*; as a user-facing entry point it is
    deprecated in favour of the declarative facade
    (:class:`repro.pipeline.AlignmentPipeline`), which drives this very
    class internally and adds spec validation, artifact persistence and
    decode caching on top.
    """

    def __init__(self, model, task: PreparedTask, config: TrainingConfig | None = None,
                 energy_monitor: EnergyMonitor | None = None):
        warn_legacy(
            "Trainer(model, task, config)",
            "spec = PipelineSpec(model=ModelSpec(name=<registry name>), "
            "training=<this TrainingConfig>); "
            "AlignmentPipeline.from_spec(spec).fit(task) — see repro.pipeline")
        self.model = model
        self.task = task
        self.config = config or TrainingConfig()
        self.energy_monitor = energy_monitor
        self._rng = np.random.default_rng(self.config.seed)
        self.loop = build_training_loop(model, task, self.config, self._rng)
        if (energy_monitor is not None
                and type(self.loop).record_energy is TrainingLoop.record_energy):
            raise ValueError(
                f"energy monitoring needs a full-graph encoder pass, which the "
                f"'{self.loop.name}' training loop never runs; use "
                f"sampling='full' or drop the energy monitor")
        self.evaluator = self.loop.evaluator

    # ------------------------------------------------------------------
    # Iterative (bootstrapping) strategy
    # ------------------------------------------------------------------
    def _augment_with_pseudo_pairs(self, seeds: np.ndarray) -> np.ndarray:
        """Promote mutual nearest-neighbour test candidates to pseudo-seeds.

        The loop's similarity may be a dense matrix or a streaming
        :class:`~repro.core.similarity.TopKSimilarity` (the neighbour
        strategy always streams); the mutual-NN selection accepts both, so
        iterative training on large tasks runs from the running row/column
        argmax reductions instead of an ``n_s x n_t`` matrix.
        """
        similarity = self.loop.model_similarity()
        seed_sources = set(int(s) for s in seeds[:, 0])
        seed_targets = set(int(t) for t in seeds[:, 1])
        candidates = mutual_nearest_pairs(
            similarity,
            threshold=self.config.iterative_threshold,
            exclude_source=seed_sources,
            exclude_target=seed_targets,
        )
        if not candidates:
            return seeds
        pseudo = np.asarray(candidates, dtype=np.int64)
        return np.concatenate([seeds, pseudo], axis=0)

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def fit(self) -> TrainingResult:
        """Train the model (optionally iteratively) and evaluate it."""
        history = TrainingHistory()
        seeds = self.task.train_pairs.copy()

        train_start = time.perf_counter()
        self.loop.train_phase(seeds, self.config.epochs, history, self.energy_monitor)
        if self.config.iterative:
            for _ in range(self.config.iterative_rounds):
                seeds = self._augment_with_pseudo_pairs(seeds)
                history.pseudo_pairs.append(len(seeds) - len(self.task.train_pairs))
                self.loop.train_phase(seeds, self.config.iterative_epochs, history,
                                      self.energy_monitor)
        train_seconds = time.perf_counter() - train_start

        # The parameters have not changed since the last in-training
        # evaluation when it landed on the final epoch — reuse it instead
        # of decoding the same model twice.  That evaluation ran inside the
        # training window, so its time moves from the train to the decode
        # figure rather than being counted in both.
        if history.evaluations and history.evaluations[-1][0] == len(history.losses):
            metrics = history.evaluations[-1][1]
            train_seconds = max(0.0, train_seconds - self.loop.last_eval_seconds)
        else:
            metrics = self.loop.evaluate()
        decode_seconds = self.loop.last_eval_seconds

        num_parameters = 0
        if hasattr(self.model, "num_parameters"):
            num_parameters = self.model.num_parameters()
        return TrainingResult(
            metrics=metrics,
            history=history,
            train_seconds=train_seconds,
            decode_seconds=decode_seconds,
            num_parameters=num_parameters,
        )
