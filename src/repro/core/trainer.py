"""Training loop for DESAlign and the baselines.

Implements the optimisation recipe of Sec. V-A(4): AdamW, cosine warm-up
over the first 15% of steps, gradient clipping, optional early stopping,
and the optional *iterative strategy* — a buffering mechanism that promotes
cross-graph mutual nearest-neighbour pairs from the candidate (test) pool to
pseudo-seed alignments between training rounds.

Every aligner in this repository (DESAlign and the baselines) exposes the
same minimal interface — ``loss(source_index, target_index)``,
``similarity()`` and ``parameters()`` — so a single :class:`Trainer` covers
the whole model zoo and the experiment harness stays uniform.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..autograd import Tensor
from ..eval.evaluator import Evaluator
from ..eval.metrics import AlignmentMetrics
from ..nn import AdamW, CosineWarmupSchedule, EarlyStopping, GradientClipper
from .alignment import mutual_nearest_pairs
from .config import TrainingConfig
from .energy import EnergyMonitor
from .task import PreparedTask

__all__ = ["TrainingHistory", "TrainingResult", "Trainer"]


@dataclass
class TrainingHistory:
    """Per-epoch loss values and periodic evaluation metrics."""

    losses: list[float] = field(default_factory=list)
    evaluations: list[tuple[int, AlignmentMetrics]] = field(default_factory=list)
    pseudo_pairs: list[int] = field(default_factory=list)

    def last_metrics(self) -> AlignmentMetrics | None:
        return self.evaluations[-1][1] if self.evaluations else None


@dataclass
class TrainingResult:
    """Outcome of a full training run."""

    metrics: AlignmentMetrics
    history: TrainingHistory
    train_seconds: float
    decode_seconds: float
    num_parameters: int

    def as_dict(self) -> dict[str, float]:
        summary = dict(self.metrics.as_dict())
        summary["train_seconds"] = self.train_seconds
        summary["decode_seconds"] = self.decode_seconds
        return summary


def _loss_total(value) -> Tensor:
    """Accept either a plain Tensor or a LossBreakdown-like object."""
    return value.total if hasattr(value, "total") else value


class Trainer:
    """Generic trainer for entity-alignment models on a prepared task."""

    def __init__(self, model, task: PreparedTask, config: TrainingConfig | None = None,
                 energy_monitor: EnergyMonitor | None = None):
        self.model = model
        self.task = task
        self.config = config or TrainingConfig()
        self.evaluator = Evaluator(task)
        self.energy_monitor = energy_monitor
        self._rng = np.random.default_rng(self.config.seed)

    # ------------------------------------------------------------------
    # Single training phase
    # ------------------------------------------------------------------
    def _iterate_batches(self, pairs: np.ndarray):
        """Yield mini-batches of seed pairs (full batch when small enough)."""
        batch_size = self.config.batch_size
        if len(pairs) <= batch_size:
            yield pairs
            return
        order = self._rng.permutation(len(pairs))
        for start in range(0, len(pairs), batch_size):
            yield pairs[order[start:start + batch_size]]

    def _train_phase(self, pairs: np.ndarray, epochs: int,
                     history: TrainingHistory) -> None:
        if epochs <= 0 or len(pairs) == 0:
            return
        optimizer = AdamW(self.model.parameters(), lr=self.config.learning_rate,
                          weight_decay=self.config.weight_decay)
        batches_per_epoch = max(1, int(np.ceil(len(pairs) / self.config.batch_size)))
        schedule = CosineWarmupSchedule(optimizer, total_steps=epochs * batches_per_epoch,
                                        warmup_fraction=self.config.warmup_fraction)
        clipper = GradientClipper(self.config.grad_clip) if self.config.grad_clip else None
        stopper = (EarlyStopping(patience=self.config.early_stopping_patience)
                   if self.config.early_stopping_patience > 0 else None)

        for epoch in range(epochs):
            epoch_loss = 0.0
            num_batches = 0
            for batch in self._iterate_batches(pairs):
                schedule.step()
                optimizer.zero_grad()
                loss = _loss_total(self.model.loss(batch[:, 0], batch[:, 1]))
                loss.backward()
                if clipper is not None:
                    clipper.clip(self.model.parameters())
                optimizer.step()
                epoch_loss += loss.item()
                num_batches += 1
            history.losses.append(epoch_loss / max(1, num_batches))

            should_evaluate = (self.config.eval_every > 0
                               and (epoch + 1) % self.config.eval_every == 0)
            if should_evaluate or (stopper is not None):
                metrics = self.evaluator.evaluate_model(self.model)
                history.evaluations.append((len(history.losses), metrics))
                if self.energy_monitor is not None and hasattr(self.model, "encode"):
                    self.energy_monitor.record(len(history.losses), self.model.encode("source"))
                if stopper is not None:
                    stopper.update(metrics.hits_at_1)
                    if stopper.should_stop:
                        break

    # ------------------------------------------------------------------
    # Iterative (bootstrapping) strategy
    # ------------------------------------------------------------------
    def _augment_with_pseudo_pairs(self, seeds: np.ndarray) -> np.ndarray:
        """Promote mutual nearest-neighbour test candidates to pseudo-seeds.

        ``_model_similarity`` may return a dense matrix or a streaming
        :class:`~repro.core.similarity.TopKSimilarity`; the mutual-NN
        selection accepts both, so iterative training on large tasks runs
        from the running row/column argmax reductions instead of an
        ``n_s x n_t`` matrix.
        """
        similarity = self._model_similarity()
        seed_sources = set(int(s) for s in seeds[:, 0])
        seed_targets = set(int(t) for t in seeds[:, 1])
        candidates = mutual_nearest_pairs(
            similarity,
            threshold=self.config.iterative_threshold,
            exclude_source=seed_sources,
            exclude_target=seed_targets,
        )
        if not candidates:
            return seeds
        pseudo = np.asarray(candidates, dtype=np.int64)
        return np.concatenate([seeds, pseudo], axis=0)

    def _model_similarity(self):
        try:
            return self.model.similarity(use_propagation=True)
        except TypeError:
            return self.model.similarity()

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def fit(self) -> TrainingResult:
        """Train the model (optionally iteratively) and evaluate it."""
        history = TrainingHistory()
        seeds = self.task.train_pairs.copy()

        train_start = time.perf_counter()
        self._train_phase(seeds, self.config.epochs, history)
        if self.config.iterative:
            for _ in range(self.config.iterative_rounds):
                seeds = self._augment_with_pseudo_pairs(seeds)
                history.pseudo_pairs.append(len(seeds) - len(self.task.train_pairs))
                self._train_phase(seeds, self.config.iterative_epochs, history)
        train_seconds = time.perf_counter() - train_start

        decode_start = time.perf_counter()
        metrics = self.evaluator.evaluate_model(self.model)
        decode_seconds = time.perf_counter() - decode_start

        num_parameters = 0
        if hasattr(self.model, "num_parameters"):
            num_parameters = self.model.num_parameters()
        return TrainingResult(
            metrics=metrics,
            history=history,
            train_seconds=train_seconds,
            decode_seconds=decode_seconds,
            num_parameters=num_parameters,
        )
