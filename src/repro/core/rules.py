"""Single-source legality rules of the alignment pipeline.

Four PRs of scaling work each added a string switch (``backend``,
``decode``, ``encode``, ``sampling``, ``candidates``, ``ranking``) and the
rules about which combinations are coherent ended up re-checked in several
places — ``TrainingConfig.__post_init__``, the evaluator, the similarity
engine and the training loops.  This module is now the only place a rule
and its error message live: every legacy validation site and
:meth:`repro.pipeline.PipelineSpec.validate` delegate here, so a rejected
combination produces the same actionable message no matter which API
surface it entered through.
"""

from __future__ import annotations

from .registries import candidate_methods, training_loop_names

__all__ = [
    "check_backend",
    "check_decode_method",
    "check_encode_method",
    "check_sampling_method",
    "check_candidates_method",
    "check_ranking_method",
    "check_candidates_decode",
    "check_iterative_candidates",
    "check_patience_cadence",
    "check_ranking_candidates",
    "check_fanouts",
    "approximate_csls_error",
]


# ---------------------------------------------------------------------------
# Per-field vocabulary checks
# ---------------------------------------------------------------------------
def check_backend(backend: str, allow_auto: bool = False) -> None:
    """Graph backend switch: ``"dense" | "sparse"`` (plus optional ``"auto"``)."""
    allowed = {"dense", "sparse"} | ({"auto"} if allow_auto else set())
    if backend not in allowed:
        raise ValueError(
            f"backend must be one of {sorted(allowed)}, got {backend!r}")


def check_decode_method(decode: str) -> None:
    if decode not in {"dense", "blockwise", "auto"}:
        raise ValueError("decode must be 'dense', 'blockwise' or 'auto'")


def check_encode_method(encode: str) -> None:
    if encode not in {"full", "sampled"}:
        raise ValueError("encode must be 'full' or 'sampled'")


def check_sampling_method(sampling: str) -> None:
    known = training_loop_names()
    if sampling not in known:
        raise ValueError(
            f"sampling must name a registered training loop "
            f"({sorted(known)}), got {sampling!r}")


def check_candidates_method(candidates: str) -> None:
    known = candidate_methods()
    if candidates not in known:
        raise ValueError(
            f"candidates must name a registered candidate generator "
            f"({sorted(known)}), got {candidates!r}")


def check_ranking_method(ranking: str) -> None:
    if ranking not in {"cosine", "csls"}:
        raise ValueError("ranking must be 'cosine' or 'csls'")


# ---------------------------------------------------------------------------
# Cross-field rules
# ---------------------------------------------------------------------------
def check_candidates_decode(candidates: str, decode: str) -> None:
    """Candidate generation exists only on the streaming decode path."""
    if candidates != "exhaustive" and decode == "dense":
        raise ValueError(
            f"candidates={candidates!r} restricts the streaming decode and is "
            "incompatible with decode='dense'; use decode='blockwise' or 'auto'")


def check_iterative_candidates(iterative: bool, candidates: str) -> None:
    """Pseudo-seeding needs a provably exact top-1, which LSH cannot offer."""
    if iterative and candidates == "lsh":
        raise ValueError(
            "iterative pseudo-seeding needs a provably exact top-1, which "
            "LSH candidates cannot offer; use candidates='ivf' (escalated "
            "automatically) or 'exhaustive'")


def check_patience_cadence(early_stopping_patience: int, eval_every: int) -> None:
    """Early stopping consumes the periodic evaluations, so it needs a cadence."""
    if early_stopping_patience > 0 and eval_every <= 0:
        raise ValueError(
            "early stopping consumes periodic evaluations; set eval_every > 0")


def approximate_csls_error(context: str = "the decode") -> ValueError:
    """The CSLS-on-approximate-candidates refusal, shared verbatim.

    Raised both at spec/evaluator construction (from the ``ranking`` /
    ``candidates`` switches) and at scoring time (from an ``approximate``
    :class:`~repro.core.similarity.TopKSimilarity` artefact).
    """
    return ValueError(
        f"CSLS ranking needs exact row and column k-NN statistics, but "
        f"{context} is restricted to approximate candidate sets — decode "
        f"with candidates='exhaustive' for CSLS-ranked evaluation")


def check_ranking_candidates(ranking: str, candidates: str) -> None:
    if ranking == "csls" and candidates != "exhaustive":
        raise approximate_csls_error(f"candidates={candidates!r}")


def check_fanouts(fanouts) -> None:
    if fanouts is None:
        return
    for fanout in fanouts:
        if fanout is not None and fanout != -1 and fanout <= 0:
            raise ValueError("fanout entries must be positive, -1 or None")
