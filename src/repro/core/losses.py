"""Training objectives: contrastive alignment losses and the MMSL objective.

Implements Sec. IV-B of the paper:

* the bi-directional in-batch contrastive alignment probability (Eq. 16)
  and per-modality loss with minimum-confidence weighting (Eq. 17);
* the Multi-Modal Semantic Learning objective of Proposition 3 / Eq. 15,
  which sums the task loss on the initial (``h_Ori``) and final (``h_Fus``)
  joint embeddings with the intra-modal losses at layers ``k-1`` (pre-CAW)
  and ``k`` (post-CAW);
* an optional differentiable Dirichlet-energy regulariser enforcing the
  ``c_min`` / ``c_max`` bounds explicitly (used by the energy-analysis
  experiment and the ablations).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..autograd import Tensor, l2_normalize, spmm
from .config import DESAlignConfig
from .encoder import EncoderOutput

__all__ = [
    "bidirectional_contrastive_loss",
    "dirichlet_energy_tensor",
    "energy_bound_penalty",
    "LossBreakdown",
    "MultiModalSemanticLoss",
]

_MIN_CONFIDENCE = 1e-4


def bidirectional_contrastive_loss(source_embeddings: Tensor,
                                   target_embeddings: Tensor,
                                   source_index: np.ndarray,
                                   target_index: np.ndarray,
                                   temperature: float,
                                   pair_weights: Tensor | np.ndarray | None = None) -> Tensor:
    """Bi-directional in-batch contrastive loss over seed pairs (Eq. 16-17).

    For every seed pair ``(e^1_i, e^2_i)`` the alignment probability uses all
    other in-batch entities of *both* graphs as negatives, in both alignment
    directions; the per-pair weight ``φ`` implements the minimum-confidence
    weighting (or 1 for the joint task loss).
    """
    source_index = np.asarray(source_index, dtype=np.int64)
    target_index = np.asarray(target_index, dtype=np.int64)
    if len(source_index) != len(target_index):
        raise ValueError("source and target index arrays must have equal length")
    batch = len(source_index)
    if batch == 0:
        raise ValueError("contrastive loss requires at least one pair")

    anchors_1 = l2_normalize(source_embeddings.index_select(source_index))
    anchors_2 = l2_normalize(target_embeddings.index_select(target_index))
    scale = 1.0 / temperature
    cross = (anchors_1 @ anchors_2.T) * scale          # s(e^1_i, e^2_j)
    within_1 = (anchors_1 @ anchors_1.T) * scale       # s(e^1_i, e^1_j)
    within_2 = (anchors_2 @ anchors_2.T) * scale       # s(e^2_i, e^2_j)

    off_diagonal = Tensor(1.0 - np.eye(batch))
    exp_cross = cross.exp()
    exp_within_1 = within_1.exp() * off_diagonal
    exp_within_2 = within_2.exp() * off_diagonal

    diag_index = (np.arange(batch), np.arange(batch))
    positives = exp_cross[diag_index]
    denominator_12 = exp_cross.sum(axis=1) + exp_within_1.sum(axis=1)
    denominator_21 = exp_cross.sum(axis=0) + exp_within_2.sum(axis=1)
    p_12 = positives / denominator_12
    p_21 = positives / denominator_21

    if pair_weights is None:
        weights = Tensor(np.ones(batch))
    else:
        weights = Tensor.ensure(pair_weights).clip(_MIN_CONFIDENCE, 1.0)
    per_pair = -((weights * (p_12 + p_21)).clip(1e-12, np.inf).log()) * 0.5
    return per_pair.mean()


def dirichlet_energy_tensor(embeddings: Tensor, laplacian) -> Tensor:
    """Differentiable Dirichlet energy ``tr(Xᵀ Δ X)`` of a batch of embeddings.

    Routed through the :func:`spmm` primitive, so the Laplacian may be a
    dense array or a CSR matrix (``O(|E| d)``) interchangeably.
    """
    return (embeddings * spmm(laplacian, embeddings)).sum()


def energy_bound_penalty(current: Tensor, previous: Tensor, initial: Tensor,
                         laplacian, floor: float, ceiling: float) -> Tensor:
    """Hinge penalty enforcing ``c_min E(X^{k-1}) <= E(X^k) <= c_max E(X^0)``.

    This is the explicit-regulariser form of the Prop. 3 constraint; the
    main training objective keeps energies in range implicitly, while this
    term is used for the energy ablation and analysis experiments.
    """
    energy_current = dirichlet_energy_tensor(current, laplacian)
    energy_previous = dirichlet_energy_tensor(previous, laplacian).detach()
    energy_initial = dirichlet_energy_tensor(initial, laplacian).detach()
    lower_violation = (energy_previous * floor - energy_current).relu()
    upper_violation = (energy_current - energy_initial * ceiling).relu()
    scale = 1.0 / max(energy_initial.item(), 1e-8)
    return (lower_violation + upper_violation) * scale


@dataclass
class LossBreakdown:
    """Individual terms of the MMSL objective (for logging and ablations)."""

    total: Tensor
    task_initial: float = 0.0
    task_final: float = 0.0
    modal_previous: dict[str, float] = field(default_factory=dict)
    modal_final: dict[str, float] = field(default_factory=dict)
    energy_penalty: float = 0.0

    def as_dict(self) -> dict[str, float]:
        summary = {
            "total": self.total.item(),
            "task_initial": self.task_initial,
            "task_final": self.task_final,
            "energy_penalty": self.energy_penalty,
        }
        for modality, value in self.modal_previous.items():
            summary[f"modal_prev/{modality}"] = value
        for modality, value in self.modal_final.items():
            summary[f"modal_final/{modality}"] = value
        return summary


class MultiModalSemanticLoss:
    """The full MMSL training objective of Eq. 15.

    ``loss = L_task(0) + L_task(k) + Σ_m (L_m(k-1) + L_m(k))`` with optional
    Dirichlet-energy bound penalty.  Individual terms can be switched off
    through the :class:`DESAlignConfig` flags to reproduce the ablation of
    Fig. 3 (left).
    """

    def __init__(self, config: DESAlignConfig):
        self.config = config

    def _pair_confidences(self, source_output: EncoderOutput, target_output: EncoderOutput,
                          modality: str, source_index: np.ndarray,
                          target_index: np.ndarray) -> Tensor | None:
        if not self.config.use_min_confidence:
            return None
        source_conf = source_output.confidence_for(modality).detach().numpy()[source_index]
        target_conf = target_output.confidence_for(modality).detach().numpy()[target_index]
        return Tensor(np.minimum(source_conf, target_conf))

    def __call__(self, source_output: EncoderOutput, target_output: EncoderOutput,
                 source_index: np.ndarray, target_index: np.ndarray,
                 source_laplacian=None) -> LossBreakdown:
        config = self.config
        temperature = config.temperature
        terms: list[Tensor] = []
        breakdown = LossBreakdown(total=Tensor(0.0))

        if config.use_initial_task_loss:
            task_initial = bidirectional_contrastive_loss(
                source_output.original, target_output.original,
                source_index, target_index, temperature)
            terms.append(task_initial)
            breakdown.task_initial = task_initial.item()
        if config.use_final_task_loss:
            task_final = bidirectional_contrastive_loss(
                source_output.fused, target_output.fused,
                source_index, target_index, temperature)
            terms.append(task_final)
            breakdown.task_final = task_final.item()

        for modality in source_output.modalities:
            weights = self._pair_confidences(source_output, target_output, modality,
                                             source_index, target_index)
            if config.use_previous_modal_loss:
                loss_previous = bidirectional_contrastive_loss(
                    source_output.modal[modality], target_output.modal[modality],
                    source_index, target_index, temperature, pair_weights=weights)
                terms.append(loss_previous)
                breakdown.modal_previous[modality] = loss_previous.item()
            if config.use_final_modal_loss:
                loss_final = bidirectional_contrastive_loss(
                    source_output.attended[modality], target_output.attended[modality],
                    source_index, target_index, temperature, pair_weights=weights)
                terms.append(loss_final)
                breakdown.modal_final[modality] = loss_final.item()

        if config.energy_weight > 0 and source_laplacian is not None:
            penalty = energy_bound_penalty(
                current=source_output.fused,
                previous=source_output.original,
                initial=source_output.original,
                laplacian=source_laplacian,
                floor=config.energy_floor,
                ceiling=config.energy_ceiling,
            ) * config.energy_weight
            terms.append(penalty)
            breakdown.energy_penalty = penalty.item()

        if not terms:
            raise ValueError("the MMSL objective has no active terms")
        total = terms[0]
        for term in terms[1:]:
            total = total + term
        breakdown.total = total
        return breakdown
