"""Shard-aligned on-disk embedding store backing out-of-core decodes.

An :class:`EmbeddingStore` is a directory of plain ``.npy`` files — one per
per-round propagation state, plus the candidate CSR (IVF bucket-probe
result), its optional bucket map, and the train/test splits — described by
a ``store.json`` manifest.  Plain ``.npy`` (row-major, uncompressed) is
the whole point: ``np.load(mmap_mode="r")`` maps each file directly, so

* a decode worker that owns source rows ``[row_start, row_stop)`` touches
  only that row range's pages — a contiguous byte range per state file,
  aligned with the engine's ``block_size`` grid (recorded in the
  manifest, the same multiples :func:`repro.core.sharded.shard_boundaries`
  cuts shards on);
* candidate gathers fault in only the target rows they score instead of
  materialising ``n × d`` tables;
* forked worker pools and co-hosted serving processes share one page-cache
  copy of every table.

The v1 artifact kept these arrays zipped inside ``decode.npz``, which
cannot be mapped without unpacking (see ``facade._mmap_npz``); the v2
artifact replaces that member zip with this store, making the mapped
layout the *native* one.

Writes stream through :func:`write_npy_chunked` (or an
:func:`allocate_npy` memmap filled by the producer), so creating a store
never requires holding a full table in memory either — the million-entity
benchmark synthesises its tables straight into store files chunk by chunk.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import numpy as np
from numpy.lib.format import open_memmap

from .ann import GroupedRowCandidates, RowCandidates

__all__ = ["EmbeddingStore", "StoreError", "MissingStoreError",
           "write_npy_chunked", "allocate_npy", "STORE_MANIFEST"]


class StoreError(RuntimeError):
    """A store directory is unreadable or inconsistent with its manifest.

    Raised instead of whatever raw ``OSError`` / ``ValueError`` numpy
    produced, naming the store directory and the shard at fault so a
    corrupted artifact is diagnosable from the message alone.
    """


class MissingStoreError(StoreError, FileNotFoundError):
    """No ``store.json`` manifest under the directory.

    Subclasses :class:`FileNotFoundError` too, so callers that probed for
    the manifest's existence with ``except FileNotFoundError`` keep
    working.
    """

STORE_MANIFEST = "store.json"

#: Layout version of the store directory itself (independent of the
#: artifact format_version that embeds it).
_STORE_VERSION = 1

#: Rows per chunk of the streamed writers.
DEFAULT_CHUNK_ROWS = 65536


def allocate_npy(path, shape, dtype) -> np.memmap:
    """A writable ``.npy``-backed memmap for producer-streamed arrays.

    The returned map is a valid ``.npy`` file from the moment of creation;
    the caller fills it in slices (e.g. one synthesis/normalisation chunk
    at a time) and drops the reference — nothing larger than a slice ever
    lives in memory.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    return open_memmap(path, mode="w+", dtype=np.dtype(dtype), shape=tuple(shape))


def write_npy_chunked(path, array, chunk_rows: int = DEFAULT_CHUNK_ROWS) -> Path:
    """Stream ``array`` (any array-like, incl. another memmap) into ``path``."""
    array = np.asanyarray(array)
    out = allocate_npy(path, array.shape, array.dtype)
    if array.ndim == 0:
        out[...] = array
    else:
        for start in range(0, array.shape[0], chunk_rows):
            stop = min(start + chunk_rows, array.shape[0])
            out[start:stop] = array[start:stop]
    out.flush()
    del out
    return Path(path)


class EmbeddingStore:
    """Memory-mapped view over a store directory (see module docstring)."""

    def __init__(self, directory: Path, manifest: dict,
                 arrays: dict[str, np.ndarray]):
        self.directory = Path(directory)
        self.manifest = manifest
        self._arrays = arrays

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, directory, *, source_states, target_states,
               row_candidates: RowCandidates | None = None,
               train_pairs: np.ndarray | None = None,
               test_pairs: np.ndarray | None = None,
               block_size: int = 1024,
               chunk_rows: int = DEFAULT_CHUNK_ROWS,
               mmap: bool = True) -> "EmbeddingStore":
        """Write a store directory from per-round states (+ optional extras).

        Any existing store content under ``directory`` is replaced
        atomically enough for our purposes: the manifest is written last,
        so a crashed create leaves no readable store.  ``mmap`` controls
        how the returned handle reads the files back, not how they are
        written.
        """
        directory = Path(directory)
        if directory.exists():
            shutil.rmtree(directory)
        directory.mkdir(parents=True)

        source_states = list(source_states)
        target_states = list(target_states)
        if len(source_states) != len(target_states):
            raise ValueError("source and target must have the same number of rounds")
        names: list[str] = []
        for index, state in enumerate(source_states):
            names.append(f"source_state_{index}")
            write_npy_chunked(directory / f"{names[-1]}.npy", state, chunk_rows)
        for index, state in enumerate(target_states):
            names.append(f"target_state_{index}")
            write_npy_chunked(directory / f"{names[-1]}.npy", state, chunk_rows)
        if train_pairs is not None:
            names.append("train_pairs")
            write_npy_chunked(directory / "train_pairs.npy", train_pairs, chunk_rows)
        if test_pairs is not None:
            names.append("test_pairs")
            write_npy_chunked(directory / "test_pairs.npy", test_pairs, chunk_rows)
        grouped = isinstance(row_candidates, GroupedRowCandidates)
        if row_candidates is not None:
            names += ["candidates_indptr", "candidates_indices"]
            write_npy_chunked(directory / "candidates_indptr.npy",
                              row_candidates.indptr, chunk_rows)
            write_npy_chunked(directory / "candidates_indices.npy",
                              row_candidates.indices, chunk_rows)
            if grouped:
                names.append("candidates_bucket_of")
                write_npy_chunked(directory / "candidates_bucket_of.npy",
                                  row_candidates.bucket_of, chunk_rows)

        manifest = {
            "store_version": _STORE_VERSION,
            "num_rounds": len(source_states),
            "num_source": int(np.asanyarray(source_states[0]).shape[0]),
            "num_targets": int(np.asanyarray(target_states[0]).shape[0]),
            "block_size": int(block_size),
            "has_candidates": row_candidates is not None,
            "grouped_candidates": grouped,
            "arrays": names,
        }
        (directory / STORE_MANIFEST).write_text(
            json.dumps(manifest, indent=2, sort_keys=True) + "\n")
        return cls.open(directory, mmap=mmap)

    @classmethod
    def open(cls, directory, *, mmap: bool = True) -> "EmbeddingStore":
        """Open a store; ``mmap=True`` maps read-only, else loads into RAM."""
        directory = Path(directory)
        manifest_path = directory / STORE_MANIFEST
        if not manifest_path.exists():
            raise MissingStoreError(f"no {STORE_MANIFEST} under {directory}")
        manifest = json.loads(manifest_path.read_text())
        version = manifest.get("store_version")
        if version != _STORE_VERSION:
            raise ValueError(f"unsupported store_version {version!r} "
                             f"(this build reads {_STORE_VERSION})")
        arrays: dict[str, np.ndarray] = {}
        for name in manifest["arrays"]:
            shard = directory / f"{name}.npy"
            try:
                arrays[name] = np.load(shard, mmap_mode="r" if mmap else None)
            except FileNotFoundError as error:
                raise StoreError(
                    f"store under {directory} lists shard {name!r} in its "
                    f"manifest but {shard.name} is missing") from error
            except (OSError, ValueError) as error:
                raise StoreError(
                    f"shard {shard.name} under {directory} is unreadable "
                    f"(truncated or corrupt): {error}") from error
        cls._check_shapes(directory, manifest, arrays)
        return cls(directory, manifest, arrays)

    @staticmethod
    def _check_shapes(directory: Path, manifest: dict,
                      arrays: dict[str, np.ndarray]) -> None:
        """Validate shard shapes against the manifest's row counts."""
        expected_rows = {}
        for index in range(int(manifest["num_rounds"])):
            expected_rows[f"source_state_{index}"] = int(manifest["num_source"])
            expected_rows[f"target_state_{index}"] = int(manifest["num_targets"])
        if manifest.get("has_candidates"):
            expected_rows["candidates_indptr"] = int(manifest["num_source"]) + 1
        for name, rows in expected_rows.items():
            array = arrays.get(name)
            if array is None:
                raise StoreError(f"store under {directory} is missing the "
                                 f"{name!r} shard required by its manifest")
            if array.shape[0] != rows:
                raise StoreError(
                    f"shard {name}.npy under {directory} has "
                    f"{array.shape[0]} rows but the manifest expects {rows}")

    # ------------------------------------------------------------------
    @property
    def num_rounds(self) -> int:
        return int(self.manifest["num_rounds"])

    @property
    def block_size(self) -> int:
        return int(self.manifest["block_size"])

    def array(self, name: str) -> np.ndarray:
        return self._arrays[name]

    def states(self) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """The per-round (source, target) state lists, in stored order."""
        return ([self._arrays[f"source_state_{i}"] for i in range(self.num_rounds)],
                [self._arrays[f"target_state_{i}"] for i in range(self.num_rounds)])

    def row_candidates(self) -> RowCandidates | None:
        """The persisted candidate structure (grouped when a bucket map exists).

        The CSR arrays stay memory-mapped; construction touches them only
        for the validation min/max scan.
        """
        if not self.manifest.get("has_candidates"):
            return None
        indptr = self._arrays["candidates_indptr"]
        indices = self._arrays["candidates_indices"]
        num_columns = int(self.manifest["num_targets"])
        if self.manifest.get("grouped_candidates"):
            return GroupedRowCandidates(
                indptr=indptr, indices=indices, num_columns=num_columns,
                bucket_of=self._arrays["candidates_bucket_of"])
        return RowCandidates(indptr=indptr, indices=indices,
                             num_columns=num_columns)

    @property
    def train_pairs(self) -> np.ndarray | None:
        return self._arrays.get("train_pairs")

    @property
    def test_pairs(self) -> np.ndarray | None:
        return self._arrays.get("test_pairs")
