"""Multi-modal knowledge graph representation (Sec. IV-A of the paper).

The encoder maps every entity of one MMKG to:

* per-modality hidden embeddings ``h_m`` (GAT for the structure, one FC per
  non-structural modality, Eq. 7-8);
* cross-modally attended embeddings ``ĥ_m`` and modality confidences
  ``w̃_m`` from the CAW block (Eq. 9-13);
* the early-fusion joint embedding ``h_Ori`` and late-fusion ``h_Fus``
  (Eq. 14), produced by concatenating confidence-weighted modal embeddings.

The same encoder (same parameters) is applied to the source and target
graphs; only the input features and the adjacency differ.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..autograd import Tensor, l2_normalize
from ..nn import (
    CrossModalAttentionBlock,
    GAT,
    Linear,
    Module,
    ModuleDict,
    Parameter,
    init,
)
from .ann import count_dot_products
from .config import DESAlignConfig

__all__ = ["EncoderOutput", "MultiModalEncoder"]


@dataclass
class EncoderOutput:
    """All embeddings produced by one encoder pass over one graph.

    ``node_ids`` is ``None`` for a full-graph pass (row ``i`` is entity
    ``i``); for a subgraph pass it holds the global entity id of every row,
    so outputs can be scattered back into global embedding arrays.
    """

    modal: dict[str, Tensor]          # h_m, shape (N, d) per modality
    attended: dict[str, Tensor]       # ĥ_m after the CAW block
    confidences: Tensor               # (N, num_modalities), Eq. 13
    original: Tensor                  # h_Ori, early fusion (N, M*d)
    fused: Tensor                     # h_Fus, late fusion (N, M*d)
    node_ids: np.ndarray | None = None  # global entity id per row (subgraph pass)

    @property
    def modalities(self) -> list[str]:
        return list(self.modal)

    def confidence_for(self, modality: str) -> Tensor:
        """Column of the confidence matrix for ``modality``."""
        index = self.modalities.index(modality)
        return self.confidences[:, index]

    def joint(self, kind: str) -> Tensor:
        """Return the requested joint embedding (``"original"`` or ``"fused"``)."""
        if kind == "original":
            return self.original
        if kind == "fused":
            return self.fused
        raise ValueError("kind must be 'original' or 'fused'")


class MultiModalEncoder(Module):
    """Shared multi-modal entity encoder used by DESAlign.

    Parameters
    ----------
    config:
        Model hyper-parameters; ``config.modalities`` controls which
        channels are instantiated (modality ablations simply omit one).
    feature_dims:
        Raw input dimensionality per modality (from the prepared task).
    num_entities:
        Entity counts per side, keyed ``"source"`` / ``"target"``; each side
        owns its trainable structural embedding table ``x^g``.
    """

    def __init__(self, config: DESAlignConfig, feature_dims: dict[str, int],
                 num_entities: dict[str, int], rng: np.random.Generator):
        super().__init__()
        self.config = config
        self.modalities = tuple(config.modalities)
        hidden = config.hidden_dim

        # Trainable structural embeddings, one table per graph (Eq. 7 input).
        self._structure_keys: dict[str, str] = {}
        for side, count in num_entities.items():
            key = f"structure_{side}"
            self._parameters[key] = Parameter(init.normal(rng, (count, hidden), std=0.3))
            self._structure_keys[side] = key

        if "graph" in self.modalities:
            self.gat = GAT(hidden, config.gat_layers, config.gat_heads, rng)
        self.projections = ModuleDict()
        for modality in self.modalities:
            if modality == "graph":
                continue
            self.projections[modality] = Linear(feature_dims[modality], hidden, rng)
        self.cross_modal = CrossModalAttentionBlock(
            hidden, config.attention_heads, config.feed_forward_dim, rng,
            dropout_rate=config.dropout)

    # ------------------------------------------------------------------
    def structural_embedding(self, side: str) -> Parameter:
        """The trainable ``x^g`` table of one side."""
        return self._parameters[self._structure_keys[side]]

    def _meter_forward(self, num_rows: int, num_edges: int) -> None:
        """Report the forward pass to the active FLOPs meter.

        Shape-derived dot-product counts (the same unit the decode paths
        meter): per GAT layer one hidden-dim transform cell per (row,
        hidden) pair plus one attention logit per (edge, head) and one
        aggregation op per edge; per FC modality its projection cells; and
        for the CAW block the QKV projections, the M×M attention logits /
        weighted sums per head, and the position-wise feed-forward.  With
        this, ``flops_counter()`` spans encode + decode end to end.
        """
        config = self.config
        hidden = config.hidden_dim
        cells = 0
        for modality in self.modalities:
            if modality == "graph":
                cells += config.gat_layers * (
                    num_rows * hidden
                    + num_edges * (config.gat_heads + 1))
            else:
                cells += num_rows * hidden
        num_modal = len(self.modalities)
        cells += num_rows * num_modal * 3 * hidden
        cells += num_rows * num_modal * num_modal * 2 * config.attention_heads
        cells += num_rows * num_modal * (config.feed_forward_dim + hidden)
        count_dot_products(cells)

    def forward(self, side: str, features: dict[str, np.ndarray],
                adjacency, subgraph=None) -> EncoderOutput:
        """Encode one graph, fully or restricted to a sampled subgraph.

        Parameters
        ----------
        side:
            ``"source"`` or ``"target"`` — selects the structural table.
        features:
            Raw modal feature matrices for this graph.
        adjacency:
            Adjacency matrix of this graph — dense ``np.ndarray`` or CSR;
            the structural GAT dispatches to masked-dense or edge-list
            attention accordingly.  Ignored when ``subgraph`` is given.
        subgraph:
            Optional :class:`~repro.kg.sampling.SubgraphView` (sampled over
            this graph's attention pattern).  The structural GAT then runs
            on the renumbered local blocks — only ``subgraph.input_nodes``
            rows of the embedding table enter the computation — and every
            output covers exactly the ``subgraph.seed_nodes`` rows, with
            the ids recorded in ``EncoderOutput.node_ids``.
        """
        if subgraph is not None:
            node_ids = subgraph.seed_nodes
            self._meter_forward(
                len(node_ids),
                sum(layer.num_edges for layer in subgraph.layers)
                if "graph" in self.modalities else 0)
            modal: dict[str, Tensor] = {}
            for modality in self.modalities:
                if modality == "graph":
                    table = self.structural_embedding(side).index_select(
                        subgraph.input_nodes)
                    modal["graph"] = self.gat(table, subgraph)
                else:
                    modal[modality] = self.projections[modality](
                        Tensor(features[modality][node_ids]))
            return self._fuse(modal, node_ids=node_ids)

        modal = {}
        if "graph" in self.modalities:
            edges = (int(adjacency.nnz) if hasattr(adjacency, "nnz")
                     else int(np.count_nonzero(adjacency)))
        else:
            edges = 0
        self._meter_forward(self.structural_embedding(side).data.shape[0], edges)
        for modality in self.modalities:
            if modality == "graph":
                modal["graph"] = self.gat(self.structural_embedding(side), adjacency)
            else:
                modal[modality] = self.projections[modality](Tensor(features[modality]))
        return self._fuse(modal)

    def _fuse(self, modal: dict[str, Tensor],
              node_ids: np.ndarray | None = None) -> EncoderOutput:
        """CAW attention + confidence-weighted fusion (rows are independent)."""
        stacked = Tensor.stack([modal[m] for m in self.modalities], axis=1)
        attended_stack, confidences = self.cross_modal(stacked)
        attended = {m: attended_stack[:, i, :] for i, m in enumerate(self.modalities)}

        # Each modality is L2-normalised before weighting so that no single
        # channel dominates the concatenated joint embedding purely through
        # its feature scale; the confidences then control the contribution.
        weighted_original = []
        weighted_fused = []
        for index, modality in enumerate(self.modalities):
            weight = confidences[:, index].reshape(-1, 1)
            weighted_original.append(l2_normalize(modal[modality]) * weight)
            weighted_fused.append(l2_normalize(attended[modality]) * weight)
        original = Tensor.concat(weighted_original, axis=-1)
        fused = Tensor.concat(weighted_fused, axis=-1)
        return EncoderOutput(
            modal=modal,
            attended=attended,
            confidences=confidences,
            original=original,
            fused=fused,
            node_ids=node_ids,
        )
