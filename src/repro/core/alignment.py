"""Alignment decoding utilities: similarity matrices, CSLS, mutual nearest pairs.

These are shared between DESAlign and the baselines: cosine similarity for
ranking, CSLS re-scaling (used by several EA systems to counter hubness) and
the mutual-nearest-neighbour selection that drives the iterative
(bootstrapping) training strategy described in Sec. V-A(2).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "cosine_similarity",
    "csls_similarity",
    "mutual_nearest_pairs",
    "greedy_one_to_one",
]


def cosine_similarity(source: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Pairwise cosine similarity between rows of ``source`` and ``target``."""
    source = np.asarray(source, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    source_norm = source / np.maximum(np.linalg.norm(source, axis=1, keepdims=True), 1e-12)
    target_norm = target / np.maximum(np.linalg.norm(target, axis=1, keepdims=True), 1e-12)
    return source_norm @ target_norm.T


def csls_similarity(similarity: np.ndarray, k: int = 10) -> np.ndarray:
    """Cross-domain similarity local scaling of a similarity matrix.

    ``CSLS(i, j) = 2 s(i, j) - r_T(i) - r_S(j)`` where ``r`` is the mean
    similarity to the ``k`` nearest cross-graph neighbours.
    """
    similarity = np.asarray(similarity, dtype=np.float64)
    k_row = min(k, similarity.shape[1])
    k_col = min(k, similarity.shape[0])
    row_top = np.sort(similarity, axis=1)[:, -k_row:]
    col_top = np.sort(similarity, axis=0)[-k_col:, :]
    row_mean = row_top.mean(axis=1, keepdims=True)
    col_mean = col_top.mean(axis=0, keepdims=True)
    return 2.0 * similarity - row_mean - col_mean


def mutual_nearest_pairs(similarity: np.ndarray,
                         threshold: float = 0.0,
                         exclude_source: set[int] | None = None,
                         exclude_target: set[int] | None = None) -> list[tuple[int, int]]:
    """Cross-graph mutual nearest-neighbour pairs above ``threshold``.

    Used by the iterative strategy as a buffering mechanism: pairs where
    each entity is the other's best match (and neither is already a seed)
    are promoted to pseudo-labels for the next training round.
    """
    similarity = np.asarray(similarity, dtype=np.float64)
    exclude_source = exclude_source or set()
    exclude_target = exclude_target or set()
    best_target = similarity.argmax(axis=1)
    best_source = similarity.argmax(axis=0)
    pairs = []
    for source_id, target_id in enumerate(best_target):
        if source_id in exclude_source or int(target_id) in exclude_target:
            continue
        if best_source[target_id] == source_id and similarity[source_id, target_id] >= threshold:
            pairs.append((source_id, int(target_id)))
    return pairs


def greedy_one_to_one(similarity: np.ndarray) -> list[tuple[int, int]]:
    """Greedy one-to-one matching by descending similarity (alignment editing).

    A simple assignment heuristic used to post-process predictions when a
    strict one-to-one mapping is required.
    """
    similarity = np.asarray(similarity, dtype=np.float64)
    num_source, num_target = similarity.shape
    order = np.dstack(np.unravel_index(np.argsort(-similarity, axis=None), similarity.shape))[0]
    used_source: set[int] = set()
    used_target: set[int] = set()
    matches: list[tuple[int, int]] = []
    for source_id, target_id in order:
        if source_id in used_source or target_id in used_target:
            continue
        matches.append((int(source_id), int(target_id)))
        used_source.add(int(source_id))
        used_target.add(int(target_id))
        if len(matches) == min(num_source, num_target):
            break
    return matches
