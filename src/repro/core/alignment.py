"""Alignment decoding utilities: similarity matrices, CSLS, mutual nearest pairs.

These are shared between DESAlign and the baselines: cosine similarity for
ranking, CSLS re-scaling (used by several EA systems to counter hubness) and
the mutual-nearest-neighbour selection that drives the iterative
(bootstrapping) training strategy described in Sec. V-A(2).

:func:`mutual_nearest_pairs` also accepts the streaming
:class:`~repro.core.similarity.TopKSimilarity` decode artefact (its
reduction only needs each entity's best match), so iterative training on
large tasks never materialises the ``n_s x n_t`` matrix.  The helpers that
inherently need the full matrix (:func:`csls_similarity`,
:func:`greedy_one_to_one`) reject a top-k decode with a pointer to the
streaming equivalent instead of failing inside numpy.
"""

from __future__ import annotations

import numpy as np

from .similarity import TopKSimilarity

__all__ = [
    "cosine_similarity",
    "csls_similarity",
    "mutual_nearest_pairs",
    "greedy_one_to_one",
]


def cosine_similarity(source: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Pairwise cosine similarity between rows of ``source`` and ``target``."""
    source = np.asarray(source, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    source_norm = source / np.maximum(np.linalg.norm(source, axis=1, keepdims=True), 1e-12)
    target_norm = target / np.maximum(np.linalg.norm(target, axis=1, keepdims=True), 1e-12)
    return source_norm @ target_norm.T


def csls_similarity(similarity: np.ndarray, k: int = 10) -> np.ndarray:
    """Cross-domain similarity local scaling of a similarity matrix.

    ``CSLS(i, j) = 2 s(i, j) - r_T(i) - r_S(j)`` where ``r`` is the mean
    similarity to the ``k`` nearest cross-graph neighbours.  The k-NN means
    use ``np.partition`` top-k selection — ``O(n²)`` instead of the
    ``O(n² log n)`` of a full sort; the selected slice is then sorted so the
    summation order (and hence every bit of the result) matches the
    historical full-sort formulation.
    """
    if isinstance(similarity, TopKSimilarity):
        raise TypeError(
            "csls_similarity needs the full matrix; for a streaming top-k "
            "decode use TopKSimilarity.csls_scores(), which returns the CSLS "
            "values of the kept (top-k) entries")
    similarity = np.asarray(similarity, dtype=np.float64)
    k_row = min(k, similarity.shape[1])
    k_col = min(k, similarity.shape[0])
    row_top = np.partition(similarity, similarity.shape[1] - k_row, axis=1)[:, -k_row:]
    col_top = np.partition(similarity, similarity.shape[0] - k_col, axis=0)[-k_col:, :]
    row_mean = np.sort(row_top, axis=1).mean(axis=1, keepdims=True)
    col_mean = np.sort(col_top, axis=0).mean(axis=0, keepdims=True)
    return 2.0 * similarity - row_mean - col_mean


def mutual_nearest_pairs(similarity,
                         threshold: float = 0.0,
                         exclude_source: set[int] | None = None,
                         exclude_target: set[int] | None = None) -> list[tuple[int, int]]:
    """Cross-graph mutual nearest-neighbour pairs above ``threshold``.

    Used by the iterative strategy as a buffering mechanism: pairs where
    each entity is the other's best match (and neither is already a seed)
    are promoted to pseudo-labels for the next training round.

    Accepts either a dense similarity matrix or a streaming
    :class:`TopKSimilarity`, whose running row/column argmax reductions
    carry the same first-index tie semantics as ``np.argmax``.
    """
    if isinstance(similarity, TopKSimilarity):
        return similarity.mutual_nearest_pairs(
            threshold=threshold, exclude_source=exclude_source,
            exclude_target=exclude_target)
    similarity = np.asarray(similarity, dtype=np.float64)
    exclude_source = exclude_source or set()
    exclude_target = exclude_target or set()
    source_ids = np.arange(similarity.shape[0])
    best_target = similarity.argmax(axis=1)
    best_source = similarity.argmax(axis=0)
    keep = best_source[best_target] == source_ids
    keep &= similarity[source_ids, best_target] >= threshold
    if exclude_source:
        keep &= ~np.isin(source_ids, np.fromiter(exclude_source, dtype=np.int64))
    if exclude_target:
        keep &= ~np.isin(best_target, np.fromiter(exclude_target, dtype=np.int64))
    return [(int(s), int(t)) for s, t in zip(source_ids[keep], best_target[keep])]


def greedy_one_to_one(similarity: np.ndarray) -> list[tuple[int, int]]:
    """Greedy one-to-one matching by descending similarity (alignment editing).

    A simple assignment heuristic used to post-process predictions when a
    strict one-to-one mapping is required.  Only ``min(n_s, n_t)`` matches
    can exist, so instead of argsorting all ``n²`` entries the candidate
    pool is grown by partial selection (``np.partition`` threshold + a sort
    of the selected pool), escalating geometrically in the rare case the
    pool is exhausted by row/column conflicts before the assignment is
    complete.  Ties are broken deterministically by flat (row-major) index.
    """
    if isinstance(similarity, TopKSimilarity):
        raise TypeError(
            "greedy_one_to_one needs the full matrix (any source may have to "
            "fall back past its top-k once targets are taken); decode with "
            "decode='dense' or materialise a small decode via "
            "TopKSimilarity.dense()")
    similarity = np.asarray(similarity, dtype=np.float64)
    num_source, num_target = similarity.shape
    need = min(num_source, num_target)
    flat = -similarity.ravel()
    total = flat.size

    pool_size = min(total, max(4 * need, 64))
    while True:
        if pool_size >= total:
            pool = np.arange(total)
        else:
            # Everything scoring at least as well as the pool's worst kept
            # entry is included, so boundary ties cannot drop candidates.
            kth_value = np.partition(flat, pool_size - 1)[pool_size - 1]
            pool = np.flatnonzero(flat <= kth_value)
        order = pool[np.lexsort((pool, flat[pool]))]
        used_source = np.zeros(num_source, dtype=bool)
        used_target = np.zeros(num_target, dtype=bool)
        matches: list[tuple[int, int]] = []
        for flat_index in order:
            source_id, target_id = divmod(int(flat_index), num_target)
            if used_source[source_id] or used_target[target_id]:
                continue
            matches.append((source_id, target_id))
            used_source[source_id] = True
            used_target[target_id] = True
            if len(matches) == need:
                return matches
        if pool_size >= total:
            return matches
        pool_size = min(total, pool_size * 4)
