"""Named component registries behind the declarative pipeline API.

Every pluggable component family of the decode/training stack — aligner
models, training-loop strategies and candidate generators — registers here
under the string name a :class:`~repro.pipeline.PipelineSpec` refers to it
by.  The registries are the single dispatch point: ``build_model`` /
``build_training_loop`` / ``generate_candidates`` all resolve their string
switches through these tables, so a third-party component registered with
one decorator call plugs into the facade, the legacy kwarg paths, the CLI
and the experiment harness alike.

This module deliberately imports nothing from the rest of the package so
that it can sit below :mod:`repro.core.config` and
:mod:`repro.core.rules` without cycles; the built-in components register
themselves when their defining modules import (``repro.baselines`` for the
model zoo, :mod:`repro.core.trainer` for the loops, :mod:`repro.core.ann`
for the candidate generators).

Out-of-tree packages plug in without being imported by anyone: a
distribution that declares an entry point in the ``repro.plugins`` group ::

    [project.entry-points."repro.plugins"]
    my_models = "my_package.repro_plugin"

is discovered through :func:`importlib.metadata.entry_points` and loaded
(once, lazily) by :func:`load_entry_point_plugins` the first time a
registry lookup *misses* — importing the target module runs its
``@register_model`` / ``@register_training_loop`` /
``@register_candidate_generator`` decorators, exactly like the built-ins.
A broken plugin is skipped with a warning rather than taking the host
process down.
"""

from __future__ import annotations

import warnings
from typing import Callable

__all__ = [
    "MODEL_REGISTRY",
    "TRAINING_LOOP_REGISTRY",
    "CANDIDATE_REGISTRY",
    "register_model",
    "register_training_loop",
    "register_candidate_generator",
    "build_model",
    "build_model_from_spec",
    "model_names",
    "model_supports_sampling",
    "training_loop_names",
    "candidate_methods",
    "load_entry_point_plugins",
    "PLUGIN_ENTRY_POINT_GROUP",
]

#: ``importlib.metadata`` entry-point group scanned for out-of-tree plugins.
PLUGIN_ENTRY_POINT_GROUP = "repro.plugins"

#: Whether the entry-point scan has run (it runs at most once per process;
#: tests reset this through :func:`load_entry_point_plugins`'s ``force``).
_PLUGINS_LOADED = False


def load_entry_point_plugins(force: bool = False) -> list[str]:
    """Import every ``repro.plugins`` entry point; return the loaded names.

    Idempotent: the scan runs once per process unless ``force=True`` (which
    re-imports nothing already cached by ``sys.modules`` but re-runs the
    discovery, for tests that install fake distributions).  Each entry
    point's value is imported for its registration side effects; one
    failing plugin is reported as a ``RuntimeWarning`` and skipped so it
    cannot break unrelated pipelines.
    """
    global _PLUGINS_LOADED
    if _PLUGINS_LOADED and not force:
        return []
    _PLUGINS_LOADED = True
    loaded: list[str] = []
    try:
        from importlib.metadata import entry_points
        points = entry_points(group=PLUGIN_ENTRY_POINT_GROUP)
    except Exception as error:  # pragma: no cover - metadata backend broken
        warnings.warn(f"plugin discovery failed: {error}", RuntimeWarning,
                      stacklevel=2)
        return []
    for point in points:
        try:
            point.load()
        except Exception as error:
            warnings.warn(
                f"plugin entry point {point.name!r} ({point.value}) failed "
                f"to load and was skipped: {error}", RuntimeWarning,
                stacklevel=2)
        else:
            loaded.append(point.name)
    return loaded

#: Name -> constructor for every aligner usable by the experiment harness.
#: (Re-exported by :mod:`repro.baselines` for backward compatibility.)
MODEL_REGISTRY: dict[str, Callable] = {}

#: Extra per-model metadata: the spec builder used by the facade and the
#: capability flags the spec validator checks.
_MODEL_INFO: dict[str, dict] = {}

#: ``TrainingConfig.sampling`` value -> :class:`TrainingLoop` subclass.
TRAINING_LOOP_REGISTRY: dict[str, type] = {}

#: Candidate-generation method -> builder ``(source, target, config) ->
#: RowCandidates | None`` (``"exhaustive"`` is implicit: no generator runs).
CANDIDATE_REGISTRY: dict[str, Callable] = {}


def _tupled(value):
    """JSON-native lists become tuples (specs arrive through ``json.load``)."""
    if isinstance(value, (list, tuple)):
        return tuple(_tupled(item) for item in value)
    return value


# ---------------------------------------------------------------------------
# Models
# ---------------------------------------------------------------------------
def register_model(name: str, *, spec_builder: Callable | None = None,
                   supports_sampling: bool = False):
    """Class/factory decorator registering an aligner under ``name``.

    ``spec_builder(task, hidden_dim=..., seed=..., options=...)`` adapts a
    declarative :class:`~repro.pipeline.ModelSpec` to the component's own
    constructor; without one the factory itself is called as
    ``factory(task, hidden_dim=..., seed=..., **options)``.
    ``supports_sampling`` declares that the model implements
    ``subgraph_loss`` / ``neighbour_sampler`` / ``encode_entities_sampled``,
    which ``sampling="neighbour"`` training and ``encode="sampled"``
    inference require — the spec validator rejects those combinations for
    models registered without it.
    """

    def decorator(factory):
        MODEL_REGISTRY[name] = factory
        _MODEL_INFO[name] = {
            "spec_builder": spec_builder,
            "supports_sampling": supports_sampling,
        }
        return factory

    return decorator


def model_names() -> list[str]:
    """Registered aligner names, sorted (entry-point plugins included)."""
    load_entry_point_plugins()
    return sorted(MODEL_REGISTRY)


def model_supports_sampling(name: str) -> bool:
    """Whether ``name`` was registered with neighbour-sampling support."""
    return bool(_MODEL_INFO.get(name, {}).get("supports_sampling"))


def build_model(name: str, task, **kwargs):
    """Instantiate a registered aligner by its paper-table name."""
    if name not in MODEL_REGISTRY:
        load_entry_point_plugins()
    if name not in MODEL_REGISTRY:
        raise KeyError(f"unknown model {name!r}; registered: {sorted(MODEL_REGISTRY)}")
    return MODEL_REGISTRY[name](task, **kwargs)


def build_model_from_spec(model_spec, task, default_seed: int = 0):
    """Instantiate the aligner a :class:`~repro.pipeline.ModelSpec` declares.

    The spec's ``seed=None`` inherits ``default_seed`` (the pipeline's data
    seed) so one seed drives dataset preparation and model initialisation
    unless the spec pins them apart; list-valued options are converted to
    tuples because JSON has no tuple type.
    """
    name = model_spec.name
    if name not in MODEL_REGISTRY:
        load_entry_point_plugins()
    if name not in MODEL_REGISTRY:
        raise KeyError(f"unknown model {name!r}; registered: {sorted(MODEL_REGISTRY)}")
    seed = model_spec.seed if model_spec.seed is not None else default_seed
    options = {key: _tupled(value) for key, value in model_spec.options.items()}
    builder = _MODEL_INFO.get(name, {}).get("spec_builder")
    if builder is not None:
        return builder(task, hidden_dim=model_spec.hidden_dim, seed=seed,
                       options=options)
    return MODEL_REGISTRY[name](task, hidden_dim=model_spec.hidden_dim,
                                seed=seed, **options)


# ---------------------------------------------------------------------------
# Training loops
# ---------------------------------------------------------------------------
def register_training_loop(name: str):
    """Class decorator registering a loop under a ``sampling=`` value."""

    def decorator(loop_cls):
        TRAINING_LOOP_REGISTRY[name] = loop_cls
        return loop_cls

    return decorator


def training_loop_names() -> set[str]:
    """Valid ``TrainingConfig.sampling`` values.

    The built-in names are included unconditionally so validation stays
    correct even before :mod:`repro.core.trainer` has been imported.
    """
    load_entry_point_plugins()
    return set(TRAINING_LOOP_REGISTRY) | {"full", "neighbour"}


# ---------------------------------------------------------------------------
# Candidate generators
# ---------------------------------------------------------------------------
def register_candidate_generator(name: str):
    """Decorator registering a builder under a ``candidates=`` value.

    The builder is called as ``builder(source, target, config)`` with
    per-round state lists and a resolved
    :class:`~repro.core.ann.AnnConfig`; it returns a
    :class:`~repro.core.ann.RowCandidates` or ``None`` for provably
    complete coverage (which dispatches to the exhaustive decode).
    """

    def decorator(builder):
        CANDIDATE_REGISTRY[name] = builder
        return builder

    return decorator


def candidate_methods() -> set[str]:
    """Valid ``candidates=`` values (``"exhaustive"`` plus every generator).

    The built-in names are included unconditionally so validation stays
    correct even before :mod:`repro.core.ann` has been imported.
    """
    load_entry_point_plugins()
    return set(CANDIDATE_REGISTRY) | {"exhaustive", "ivf", "lsh"}
