"""Dirichlet-energy monitoring of the semantic encoder (Sec. III analysis).

The paper's central empirical observation is that, under semantic
inconsistency, the Dirichlet energy of deeper semantic-encoder layers
collapses towards zero (over-smoothing), and that the MMSL objective keeps
it bounded away from zero.  :class:`EnergyMonitor` records the per-layer
energies during training so the analysis figure can be regenerated, and the
helper functions verify the Proposition 2 / 3 bounds on concrete weights.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..kg.laplacian import dirichlet_energy, layer_energy_bounds
from .encoder import EncoderOutput

__all__ = ["EnergySnapshot", "EnergyMonitor", "verify_layer_bounds"]


@dataclass
class EnergySnapshot:
    """Dirichlet energies of the encoder stages at one training step."""

    step: int
    modal: dict[str, float]
    attended: dict[str, float]
    original: float
    fused: float

    def ratio(self) -> float:
        """Energy retention ratio E(X^k) / E(X^0) (collapse indicator)."""
        return self.fused / max(self.original, 1e-12)


@dataclass
class EnergyMonitor:
    """Records Dirichlet-energy trajectories of encoder outputs.

    ``laplacian`` may be a dense array or a CSR matrix; the energies are
    computed through the backend-dispatching :func:`dirichlet_energy`.
    """

    laplacian: "np.ndarray | object"
    history: list[EnergySnapshot] = field(default_factory=list)

    def record(self, step: int, output: EncoderOutput) -> EnergySnapshot:
        """Compute and store the energies of one encoder pass."""
        snapshot = EnergySnapshot(
            step=step,
            modal={m: dirichlet_energy(t.numpy(), self.laplacian)
                   for m, t in output.modal.items()},
            attended={m: dirichlet_energy(t.numpy(), self.laplacian)
                      for m, t in output.attended.items()},
            original=dirichlet_energy(output.original.numpy(), self.laplacian),
            fused=dirichlet_energy(output.fused.numpy(), self.laplacian),
        )
        self.history.append(snapshot)
        return snapshot

    def ratios(self) -> list[float]:
        """Energy retention ratio per recorded step."""
        return [snapshot.ratio() for snapshot in self.history]

    def collapsed(self, threshold: float = 1e-3) -> bool:
        """True when the last recorded step shows an over-smoothing collapse."""
        return bool(self.history) and self.history[-1].ratio() < threshold


def verify_layer_bounds(features: np.ndarray, weight: np.ndarray,
                        laplacian: np.ndarray) -> dict[str, float]:
    """Check Proposition 2 on a concrete linear layer ``X W``.

    Returns the previous/next energies together with the singular-value
    bounds; tests assert ``lower <= energy_next <= upper`` (up to numerical
    tolerance).
    """
    energy_previous = dirichlet_energy(features, laplacian)
    transformed = np.asarray(features, dtype=np.float64) @ np.asarray(weight, dtype=np.float64)
    energy_next = dirichlet_energy(transformed, laplacian)
    lower, upper = layer_energy_bounds(weight, energy_previous)
    return {
        "energy_previous": energy_previous,
        "energy_next": energy_next,
        "lower_bound": lower,
        "upper_bound": upper,
    }
