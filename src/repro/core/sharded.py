"""Multi-process sharded execution of the blockwise decode scan.

:func:`repro.core.similarity.blockwise_topk` reduces the streamed
similarity row-shard by row-shard through :class:`~repro.core.similarity.
PartialTopK`; because the merge reducer is associative and commutative,
the scan parallelises trivially — each worker process owns a contiguous,
*block-aligned* range of source rows, streams it exactly as the
single-process engine would, and ships its partial reduction back to the
parent for merging.

Three properties make the parallel result bit-identical to the serial one
on complete candidate sets (pinned by ``tests/properties/
test_property_sharded.py`` against the brute-force oracles):

* shard boundaries are multiples of ``block_size``, so every worker issues
  the very same block GEMMs the serial scan would (float summation order
  inside each block is unchanged);
* normalisation is row-local and performed once by the caller — workers
  receive the already-normalised tables;
* :func:`~repro.core.similarity.merge_partials` resolves cross-shard
  column-max ties exactly like the serial strictly-greater running update
  (lowest source row wins).

Workers are **forked**, never spawned: the normalised tables are inherited
copy-on-write (or as shared file-backed pages when they are memory-mapped
:class:`~repro.core.store.EmbeddingStore` arrays), so no embedding data is
ever pickled.  Only the task descriptor (a row range) travels to each
worker and only the partial reduction travels back.  Platforms without
``fork`` — or pool start-up failures — degrade to an in-process scan of
the same shards, which merges to the identical result.

FLOPs accounting: a forked worker's :func:`~repro.core.ann.flops_counter`
stack lives in the child and never reaches the parent, so the decode
engine charges the *merged* partial's ``computed_cells`` to the parent's
counters after the scan.  The in-process fallback therefore runs under
:func:`~repro.core.ann.paused_flops_counting` — otherwise the same cells
would be counted twice.

Memory accounting: each forked worker records its own peak RSS
(``RUSAGE_SELF``, a per-process high-water mark) into
``PartialTopK.worker_rss_mb``; the merge *sums* them, giving the
efficiency experiment a true multi-process memory figure —
``RUSAGE_CHILDREN`` only tracks the single largest child and would
under-report a pool.
"""

from __future__ import annotations

import os
import resource
import sys

import numpy as np

from .ann import RowCandidates, paused_flops_counting

__all__ = ["shard_boundaries", "scan_partials_parallel", "default_num_workers"]


def default_num_workers() -> int:
    """CPUs available to this process (the sensible worker-count default)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def shard_boundaries(num_rows: int, num_workers: int,
                     block_size: int) -> list[tuple[int, int]]:
    """Contiguous block-aligned row shards, as even as block granularity allows.

    Every boundary is a multiple of ``block_size`` (the last shard absorbs
    the tail), so a sharded scan issues exactly the block GEMMs of the
    serial scan — the alignment the bit-identity guarantee rests on.  At
    most ``ceil(num_rows / block_size)`` shards are returned: a worker with
    no blocks would be pure fork overhead.
    """
    if num_rows <= 0:
        raise ValueError("num_rows must be positive")
    if num_workers <= 0:
        raise ValueError("num_workers must be positive")
    if block_size <= 0:
        raise ValueError("block_size must be positive")
    num_blocks = -(-num_rows // block_size)
    num_shards = min(num_workers, num_blocks)
    base, extra = divmod(num_blocks, num_shards)
    bounds: list[tuple[int, int]] = []
    next_block = 0
    for shard in range(num_shards):
        start_block = next_block
        next_block += base + (1 if shard < extra else 0)
        bounds.append((start_block * block_size,
                       min(num_rows, next_block * block_size)))
    return bounds


# Worker inputs are published module-globally immediately before forking so
# the pool inherits them through copy-on-write pages — nothing but the row
# range is pickled per task, and nothing but the partial comes back.
_FORK_STATE: dict | None = None


def _run_shard(bounds: tuple[int, int]):
    from .similarity import compute_partial_topk, compute_partial_topk_candidates

    state = _FORK_STATE
    assert state is not None, "worker forked without published state"
    row_start, row_stop = bounds
    if state["kind"] == "exhaustive":
        partial = compute_partial_topk(
            state["source_norm"], state["target_norm"], row_start, row_stop,
            k_keep=state["k_keep"], csls_k_col=state["csls_k_col"],
            block_size=state["block_size"])
    else:
        partial = compute_partial_topk_candidates(
            state["source_norm"], state["target_norm"],
            state["row_candidates"], row_start, row_stop,
            k_keep=state["k_keep"], block_size=state["block_size"],
            dtype=state["dtype"])
    if state["report_rss"]:
        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # ru_maxrss is kilobytes on Linux, bytes on macOS.
        partial.worker_rss_mb = peak / (1024.0 ** 2 if sys.platform == "darwin"
                                        else 1024.0)
    return partial


def scan_partials_parallel(source_norm: list[np.ndarray],
                           target_norm: list[np.ndarray], *,
                           kind: str,
                           num_workers: int,
                           block_size: int,
                           k_keep: int,
                           csls_k_col: int = 0,
                           row_candidates: RowCandidates | None = None,
                           dtype=np.float64):
    """Scan all source rows as ``num_workers`` forked row shards.

    ``kind`` selects the scan: ``"exhaustive"`` (block GEMMs; needs
    ``csls_k_col``) or ``"candidates"`` (sparse gathers; needs an already
    padded ``row_candidates``).  Returns the per-shard
    :class:`~repro.core.similarity.PartialTopK` list in shard order —
    callers merge with :func:`~repro.core.similarity.merge_partial_topk`,
    whose result is invariant to that order.
    """
    if kind not in ("exhaustive", "candidates"):
        raise ValueError("kind must be 'exhaustive' or 'candidates'")
    if kind == "candidates" and row_candidates is None:
        raise ValueError("kind='candidates' needs row_candidates")
    num_rows = source_norm[0].shape[0]
    bounds = shard_boundaries(num_rows, num_workers, block_size)

    global _FORK_STATE
    state = {
        "kind": kind,
        "source_norm": source_norm,
        "target_norm": target_norm,
        "row_candidates": row_candidates,
        "k_keep": k_keep,
        "csls_k_col": csls_k_col,
        "block_size": block_size,
        "dtype": dtype,
        "report_rss": True,
    }

    import multiprocessing

    if len(bounds) > 1 and "fork" in multiprocessing.get_all_start_methods():
        _FORK_STATE = state
        try:
            context = multiprocessing.get_context("fork")
            with context.Pool(processes=len(bounds)) as pool:
                return pool.map(_run_shard, bounds)
        except OSError:  # pragma: no cover - fork resource exhaustion
            pass
        finally:
            _FORK_STATE = None

    # In-process fallback: same shards, same partials, same merge — minus
    # the parallelism.  Counting is paused because the caller charges the
    # merged computed_cells (see module docstring).
    state["report_rss"] = False
    _FORK_STATE = state
    try:
        with paused_flops_counting():
            return [_run_shard(shard_bounds) for shard_bounds in bounds]
    finally:
        _FORK_STATE = None
