"""Back-compat shims for the pre-pipeline keyword-argument API.

The declarative pipeline (:mod:`repro.pipeline`) is the supported way to
compose backends, decode modes, sampling strategies and candidate
generation.  The old entry points — ``Trainer(model, task, config)`` and
``model.similarity(decode=..., candidates=...)`` — keep working but emit a
:class:`DeprecationWarning` that spells out the spec-equivalent invocation.

The facade itself drives the very same engines, so every internal call runs
inside :func:`spec_driven`, which silences the shim: users migrating to the
spec path never see a warning produced by our own plumbing.
"""

from __future__ import annotations

import contextlib
import warnings

__all__ = ["spec_driven", "in_spec_context", "warn_legacy"]

_DEPTH = 0


@contextlib.contextmanager
def spec_driven():
    """Mark the dynamic extent of a spec-driven (facade) invocation."""
    global _DEPTH
    _DEPTH += 1
    try:
        yield
    finally:
        _DEPTH -= 1


def in_spec_context() -> bool:
    """True while executing on behalf of the pipeline facade."""
    return _DEPTH > 0


def warn_legacy(legacy: str, spec_equivalent: str, stacklevel: int = 3) -> None:
    """Deprecation-warn a legacy call pattern, spelling out the spec path.

    No-op inside :func:`spec_driven`, so the facade can reuse the legacy
    engines without triggering its own deprecation machinery.
    """
    if _DEPTH:
        return
    warnings.warn(
        f"{legacy} is deprecated in favour of the declarative pipeline API; "
        f"equivalent: {spec_equivalent}",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
