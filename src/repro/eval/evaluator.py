"""Task-level evaluation and timing harnesses."""

from __future__ import annotations

import inspect
import time
from dataclasses import dataclass, field

import numpy as np

from ..core.task import PreparedTask
from .metrics import AlignmentMetrics, evaluate_alignment

__all__ = ["Evaluator", "TimingResult", "time_callable"]


@dataclass
class Evaluator:
    """Evaluate similarities against a prepared task's test split.

    Accepts both full similarity matrices and streaming
    :class:`~repro.core.similarity.TopKSimilarity` decodes; ``decode``
    is forwarded to models whose ``similarity()`` supports the
    ``"dense" | "blockwise" | "auto"`` switch, so large tasks evaluate
    without ever materialising the ``n_s x n_t`` matrix.
    """

    task: PreparedTask
    restrict_candidates: bool = True
    decode: str = "auto"

    def evaluate_similarity(self, similarity) -> AlignmentMetrics:
        """Score a similarity matrix or top-k decode on the test pairs."""
        return evaluate_alignment(similarity, self.task.test_pairs,
                                  restrict_candidates=self.restrict_candidates)

    def evaluate_model(self, model, use_propagation: bool = True) -> AlignmentMetrics:
        """Score any model exposing ``similarity()``.

        The ``use_propagation`` / ``decode`` keywords are forwarded only
        when the model's signature accepts them (inspected once, rather
        than probing with retries that could swallow a genuine TypeError
        raised inside the decode itself).
        """
        try:
            parameters = inspect.signature(model.similarity).parameters
            accepts_kwargs = any(p.kind is inspect.Parameter.VAR_KEYWORD
                                 for p in parameters.values())
        except (TypeError, ValueError):  # builtins / C callables
            parameters, accepts_kwargs = {}, False
        kwargs = {}
        if accepts_kwargs or "use_propagation" in parameters:
            kwargs["use_propagation"] = use_propagation
        if accepts_kwargs or "decode" in parameters:
            kwargs["decode"] = self.decode
        return self.evaluate_similarity(model.similarity(**kwargs))


@dataclass
class TimingResult:
    """Wall-clock measurement of a callable, with optional per-phase detail."""

    label: str
    seconds: float
    phases: dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict[str, float]:
        summary = {"total_seconds": self.seconds}
        summary.update(self.phases)
        return summary


def time_callable(label: str, fn, *args, **kwargs) -> tuple[TimingResult, object]:
    """Run ``fn`` and return its wall-clock time alongside its result."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    elapsed = time.perf_counter() - start
    return TimingResult(label=label, seconds=elapsed), result
