"""Task-level evaluation and timing harnesses."""

from __future__ import annotations

import inspect
import time
from dataclasses import dataclass, field

import numpy as np

from ..core import rules
from ..core.compat import spec_driven
from ..core.task import PreparedTask
from .metrics import AlignmentMetrics, evaluate_alignment

__all__ = ["Evaluator", "TimingResult", "filter_supported_kwargs", "time_callable"]


def filter_supported_kwargs(fn, **candidates) -> dict:
    """Keep only the keyword arguments ``fn``'s signature accepts.

    The signature is inspected once rather than probing with retries that
    could swallow a genuine TypeError raised inside ``fn`` itself; builtins
    and C callables without an inspectable signature receive no kwargs.
    Shared by :meth:`Evaluator.evaluate_model` and the training loops so a
    keyword added to ``model.similarity`` is forwarded consistently.
    """
    try:
        parameters = inspect.signature(fn).parameters
    except (TypeError, ValueError):  # builtins / C callables
        return {}
    if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()):
        return dict(candidates)
    return {key: value for key, value in candidates.items() if key in parameters}


@dataclass
class Evaluator:
    """Evaluate similarities against a prepared task's test split.

    Accepts both full similarity matrices and streaming
    :class:`~repro.core.similarity.TopKSimilarity` decodes; ``decode``,
    ``encode`` and ``encode_batch_size`` are forwarded to models whose
    ``similarity()`` supports them, so large tasks evaluate without ever
    materialising the ``n_s x n_t`` matrix (``decode="blockwise"``) or a
    full-graph encoder pass (``encode="sampled"``, the neighbour-sampled
    training pipeline's inference path).  ``ranking="csls"`` ranks on
    CSLS-rescaled similarities — exactly, for dense and streaming decodes
    alike.  ``candidates="ivf" | "lsh"`` (with an optional
    :class:`~repro.core.ann.AnnConfig`) further restricts streaming decodes
    to approximate candidate sets; such decodes are scored with honest
    recall-style ranks and refuse CSLS ranking rather than degrade
    silently.
    """

    task: PreparedTask
    restrict_candidates: bool = True
    decode: str = "auto"
    encode: str = "full"
    encode_batch_size: int | None = None
    ranking: str = "cosine"
    candidates: str = "exhaustive"
    ann: object | None = None

    def __post_init__(self) -> None:
        # Legality delegated to repro.core.rules (the spec validator uses
        # the same functions), so an incoherent evaluator is rejected at
        # construction with the same message everywhere.
        rules.check_decode_method(self.decode)
        rules.check_encode_method(self.encode)
        rules.check_ranking_method(self.ranking)
        rules.check_candidates_method(self.candidates)
        rules.check_candidates_decode(self.candidates, self.decode)
        rules.check_ranking_candidates(self.ranking, self.candidates)

    def evaluate_similarity(self, similarity) -> AlignmentMetrics:
        """Score a similarity matrix or top-k decode on the test pairs."""
        return evaluate_alignment(similarity, self.task.test_pairs,
                                  restrict_candidates=self.restrict_candidates,
                                  ranking=self.ranking)

    def evaluate_model(self, model, use_propagation: bool = True) -> AlignmentMetrics:
        """Score any model exposing ``similarity()``.

        The ``use_propagation`` / ``decode`` / ``encode`` keywords are
        forwarded only when the model's signature accepts them (see
        :func:`filter_supported_kwargs`).
        """
        forwarded = {"use_propagation": use_propagation, "decode": self.decode,
                     "encode": self.encode}
        if self.encode_batch_size is not None:
            forwarded["encode_batch_size"] = self.encode_batch_size
        if self.candidates != "exhaustive":
            forwarded["candidates"] = self.candidates
            if self.ann is not None:
                forwarded["ann"] = self.ann
        kwargs = filter_supported_kwargs(model.similarity, **forwarded)
        with spec_driven():
            similarity = model.similarity(**kwargs)
        return self.evaluate_similarity(similarity)


@dataclass
class TimingResult:
    """Wall-clock measurement of a callable, with optional per-phase detail."""

    label: str
    seconds: float
    phases: dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict[str, float]:
        summary = {"total_seconds": self.seconds}
        summary.update(self.phases)
        return summary


def time_callable(label: str, fn, *args, **kwargs) -> tuple[TimingResult, object]:
    """Run ``fn`` and return its wall-clock time alongside its result."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    elapsed = time.perf_counter() - start
    return TimingResult(label=label, seconds=elapsed), result
