"""Task-level evaluation and timing harnesses."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..core.task import PreparedTask
from .metrics import AlignmentMetrics, evaluate_alignment

__all__ = ["Evaluator", "TimingResult", "time_callable"]


@dataclass
class Evaluator:
    """Evaluate similarity matrices against a prepared task's test split."""

    task: PreparedTask
    restrict_candidates: bool = True

    def evaluate_similarity(self, similarity: np.ndarray) -> AlignmentMetrics:
        """Score a full source×target similarity matrix on the test pairs."""
        return evaluate_alignment(similarity, self.task.test_pairs,
                                  restrict_candidates=self.restrict_candidates)

    def evaluate_model(self, model, use_propagation: bool = True) -> AlignmentMetrics:
        """Score any model exposing ``similarity(use_propagation=...)``."""
        try:
            similarity = model.similarity(use_propagation=use_propagation)
        except TypeError:
            similarity = model.similarity()
        return self.evaluate_similarity(similarity)


@dataclass
class TimingResult:
    """Wall-clock measurement of a callable, with optional per-phase detail."""

    label: str
    seconds: float
    phases: dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict[str, float]:
        summary = {"total_seconds": self.seconds}
        summary.update(self.phases)
        return summary


def time_callable(label: str, fn, *args, **kwargs) -> tuple[TimingResult, object]:
    """Run ``fn`` and return its wall-clock time alongside its result."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    elapsed = time.perf_counter() - start
    return TimingResult(label=label, seconds=elapsed), result
