"""Evaluation metrics for entity alignment: Hits@k and MRR (Eq. 23-24).

Given a pairwise similarity matrix between source and target entities and a
set of gold test pairs, each source query entity is ranked against the
candidate target entities (by convention the targets of the test pairs, as
in the paper's evaluation protocol) and the rank of its gold counterpart
feeds H@k and MRR.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ranks_from_similarity", "hits_at_k", "mean_reciprocal_rank", "AlignmentMetrics",
           "evaluate_alignment"]


def ranks_from_similarity(similarity: np.ndarray, test_pairs: np.ndarray,
                          restrict_candidates: bool = True) -> np.ndarray:
    """Rank of the gold target for every test source entity (1-based).

    Parameters
    ----------
    similarity:
        Full ``(num_source, num_target)`` similarity matrix.
    test_pairs:
        ``(num_test, 2)`` array of gold ``[source, target]`` pairs.
    restrict_candidates:
        When True (the standard MMEA protocol) candidates are restricted to
        the target entities appearing in the test set; otherwise every
        target entity is a candidate.
    """
    similarity = np.asarray(similarity, dtype=np.float64)
    test_pairs = np.asarray(test_pairs, dtype=np.int64)
    if test_pairs.ndim != 2 or test_pairs.shape[1] != 2:
        raise ValueError("test_pairs must have shape (num_test, 2)")
    if restrict_candidates:
        candidates = np.unique(test_pairs[:, 1])
    else:
        candidates = np.arange(similarity.shape[1])
    candidate_position = {int(t): i for i, t in enumerate(candidates)}
    scores = similarity[:, candidates]
    ranks = np.zeros(len(test_pairs), dtype=np.int64)
    for row, (source_id, target_id) in enumerate(test_pairs):
        gold_column = candidate_position[int(target_id)]
        row_scores = scores[source_id]
        gold_score = row_scores[gold_column]
        # Rank = 1 + number of strictly better candidates; ties are counted
        # optimistically-deterministically by breaking on index order.
        better = np.sum(row_scores > gold_score)
        ties_before = np.sum((row_scores == gold_score)[:gold_column])
        ranks[row] = 1 + better + ties_before
    return ranks


def hits_at_k(ranks: np.ndarray, k: int) -> float:
    """Fraction of queries whose gold answer is ranked within the top ``k``."""
    ranks = np.asarray(ranks)
    if len(ranks) == 0:
        return 0.0
    return float(np.mean(ranks <= k))


def mean_reciprocal_rank(ranks: np.ndarray) -> float:
    """Mean of reciprocal ranks of the gold answers."""
    ranks = np.asarray(ranks, dtype=np.float64)
    if len(ranks) == 0:
        return 0.0
    return float(np.mean(1.0 / ranks))


@dataclass(frozen=True)
class AlignmentMetrics:
    """Standard MMEA metric bundle: H@1, H@10 and MRR."""

    hits_at_1: float
    hits_at_10: float
    mrr: float
    num_queries: int = 0

    def as_dict(self) -> dict[str, float]:
        return {
            "H@1": self.hits_at_1,
            "H@10": self.hits_at_10,
            "MRR": self.mrr,
        }

    def __str__(self) -> str:
        return (f"H@1={self.hits_at_1 * 100:.1f} H@10={self.hits_at_10 * 100:.1f} "
                f"MRR={self.mrr * 100:.1f}")


def evaluate_alignment(similarity: np.ndarray, test_pairs: np.ndarray,
                       restrict_candidates: bool = True) -> AlignmentMetrics:
    """Compute H@1 / H@10 / MRR of a similarity matrix on gold test pairs."""
    test_pairs = np.asarray(test_pairs, dtype=np.int64)
    if len(test_pairs) == 0:
        return AlignmentMetrics(0.0, 0.0, 0.0, 0)
    ranks = ranks_from_similarity(similarity, test_pairs, restrict_candidates)
    return AlignmentMetrics(
        hits_at_1=hits_at_k(ranks, 1),
        hits_at_10=hits_at_k(ranks, 10),
        mrr=mean_reciprocal_rank(ranks),
        num_queries=len(ranks),
    )
