"""Evaluation metrics for entity alignment: Hits@k and MRR (Eq. 23-24).

Given pairwise similarities between source and target entities and a set of
gold test pairs, each source query entity is ranked against the candidate
target entities (by convention the targets of the test pairs, as in the
paper's evaluation protocol) and the rank of its gold counterpart feeds H@k
and MRR.

Similarities may arrive either as a full ``(num_source, num_target)``
matrix or as a streaming :class:`~repro.core.similarity.TopKSimilarity`
decode, in which case ranks come from the stored top-k neighbours — exact
whenever the gold target sits strictly inside the stored top-k, with an
``O(n_t)`` single-row fallback re-materialisation when it does not (gold
missing, or tied with the top-k boundary score).

``ranking="csls"`` ranks on CSLS-rescaled similarities instead of raw
cosine, without ever densifying a streaming decode: within a row the CSLS
ordering is ``2 s(i, j) - r_S(j)`` (the row term is constant), and the
streamed column k-NN means ``r_S`` are available for *every* column, so a
stored entry's CSLS is exact and an unstored column's CSLS is bounded by
``2 · boundary - min_j r_S(j)``.  Whenever the gold beats that bound the
stored top-k already contains every better-ranked candidate; otherwise the
same ``O(n_t)`` single-row fallback applies — so CSLS ranks are always
exact too, matching ``csls_similarity`` on the dense matrix bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import rules
from ..core.similarity import TopKSimilarity

__all__ = ["ranks_from_similarity", "hits_at_k", "mean_reciprocal_rank", "AlignmentMetrics",
           "evaluate_alignment"]


def ranks_from_similarity(similarity, test_pairs: np.ndarray,
                          restrict_candidates: bool = True,
                          ranking: str = "cosine",
                          csls_k: int = 10) -> np.ndarray:
    """Rank of the gold target for every test source entity (1-based).

    Parameters
    ----------
    similarity:
        Full ``(num_source, num_target)`` similarity matrix, or a
        :class:`TopKSimilarity` streaming decode.
    test_pairs:
        ``(num_test, 2)`` array of gold ``[source, target]`` pairs.
    restrict_candidates:
        When True (the standard MMEA protocol) candidates are restricted to
        the target entities appearing in the test set; otherwise every
        target entity is a candidate.
    ranking:
        ``"cosine"`` ranks the raw similarities; ``"csls"`` ranks their
        CSLS rescaling (hubness correction) — computed on the fly for a
        dense matrix and from the streamed k-NN means for a top-k decode.
    csls_k:
        ``k`` of the CSLS local-scaling means on the dense path; a top-k
        decode uses the ``csls_k`` it was streamed with.
    """
    rules.check_ranking_method(ranking)
    test_pairs = np.asarray(test_pairs, dtype=np.int64)
    if test_pairs.ndim != 2 or test_pairs.shape[1] != 2:
        raise ValueError("test_pairs must have shape (num_test, 2)")
    if isinstance(similarity, TopKSimilarity):
        return _ranks_from_topk(similarity, test_pairs, restrict_candidates,
                                ranking=ranking)
    similarity = np.asarray(similarity, dtype=np.float64)
    if ranking == "csls":
        from ..core.alignment import csls_similarity
        similarity = csls_similarity(similarity, k=csls_k)
    if restrict_candidates:
        candidates = np.unique(test_pairs[:, 1])
    else:
        candidates = np.arange(similarity.shape[1])
    # One batched comparison over the (num_test, num_candidates) score
    # matrix; candidate positions ascend with target id (np.unique sorts),
    # so searchsorted recovers each gold's column.
    scores = similarity[np.ix_(test_pairs[:, 0], candidates)]
    gold_columns = np.searchsorted(candidates, test_pairs[:, 1])
    gold_scores = scores[np.arange(len(test_pairs)), gold_columns]
    # Rank = 1 + number of strictly better candidates; ties are counted
    # optimistically-deterministically by breaking on index order.
    better = np.sum(scores > gold_scores[:, None], axis=1)
    positions = np.arange(len(candidates))
    ties_before = np.sum((scores == gold_scores[:, None])
                         & (positions[None, :] < gold_columns[:, None]), axis=1)
    return (1 + better + ties_before).astype(np.int64)


def _ranks_from_topk(topk: TopKSimilarity, test_pairs: np.ndarray,
                     restrict_candidates: bool = True,
                     ranking: str = "cosine") -> np.ndarray:
    """Gold ranks from a streaming top-k decode (exact; see module docstring).

    An ``approximate`` (candidate-restricted) decode has no exact-row
    fallback: ranks come from the stored top-k alone and a gold outside it
    ranks behind every candidate — the honest recall-style semantics of an
    ANN decode.  CSLS ranking on such a decode would be silently lossy and
    is refused.
    """
    if topk.approximate and ranking == "csls":
        raise rules.approximate_csls_error("this decode")
    num_target = topk.shape[1]
    if restrict_candidates:
        candidates = np.unique(test_pairs[:, 1])
    else:
        candidates = np.arange(num_target)
    if topk.columns is not None and not np.all(np.isin(candidates, topk.columns)):
        raise ValueError(
            "the top-k decode was restricted to a candidate set that does not "
            "cover the requested candidates; decode with columns=None or with "
            "all test targets included")
    is_candidate = np.zeros(num_target, dtype=bool)
    is_candidate[candidates] = True
    if topk.columns is None:
        candidate_positions = candidates
    else:
        candidate_positions = np.searchsorted(topk.columns, candidates)

    rows = test_pairs[:, 0]
    golds = test_pairs[:, 1]
    kept_ids = topk.indices[rows]                       # (num_test, k)
    kept_scores = topk.scores[rows]                     # (num_test, k) raw cosine
    kept_candidate = is_candidate[kept_ids]

    gold_hit = kept_ids == golds[:, None]
    found = gold_hit.any(axis=1)
    gold_scores = np.where(
        found,
        np.take_along_axis(kept_scores, gold_hit.argmax(axis=1)[:, None], axis=1)[:, 0],
        -np.inf)
    # Any column outside the stored top-k scores at most the boundary (the
    # k-th best raw similarity of the row).
    boundary = kept_scores[:, -1]

    if ranking == "csls":
        # Rescale the kept entries to their exact CSLS values (identical
        # arithmetic to csls_similarity on the dense matrix, entry by
        # entry); an unstored candidate's CSLS is bounded by
        # 2·boundary - min_j r_S(j), so the stored top-k provably contains
        # every better-ranked candidate whenever the gold beats that bound.
        kept_rank = topk.csls_scores(rows)
        gold_col_mean = topk.col_knn_mean[topk.column_positions(golds)]
        gold_rank = np.where(
            found,
            2.0 * gold_scores - topk.row_knn_mean[rows] - gold_col_mean,
            -np.inf)
        min_col_mean = topk.col_knn_mean[candidate_positions].min()
        # The row term r_T(i) is common to both sides; compare without it
        # so float cancellation cannot misclassify a borderline row.
        exact = found & (topk.is_exhaustive()
                         | ((2.0 * gold_scores - gold_col_mean)
                            > 2.0 * boundary - min_col_mean))
    else:
        kept_rank = kept_scores
        gold_rank = gold_scores
        # Exact whenever the gold sits strictly inside the stored top-k:
        # every strictly-better candidate and every tie then also sits
        # inside it.
        exact = found & (topk.is_exhaustive() | (gold_scores > boundary))

    better = np.sum(kept_candidate & (kept_rank > gold_rank[:, None]), axis=1)
    ties_before = np.sum(kept_candidate & (kept_rank == gold_rank[:, None])
                         & (kept_ids < golds[:, None]), axis=1)
    ranks = (1 + better + ties_before).astype(np.int64)

    if topk.approximate:
        # No exact fallback exists: a gold the candidate generator missed
        # ranks behind every candidate (a recall miss, not a silent guess).
        ranks[~found] = len(candidates) + 1
        return ranks

    # O(n_t) per-row fallback: gold outside the stored top-k or not provably
    # separated from it — re-materialise (and rescale) just those rows.
    for row in np.flatnonzero(~exact):
        if ranking == "csls":
            row_scores = topk.csls_row(int(rows[row]))
        else:
            row_scores = topk.row_scores(int(rows[row]))
        row_scores = row_scores[candidate_positions]
        gold_column = int(np.searchsorted(candidates, golds[row]))
        gold_score = row_scores[gold_column]
        ranks[row] = (1 + np.sum(row_scores > gold_score)
                      + np.sum(row_scores[:gold_column] == gold_score))
    return ranks


def hits_at_k(ranks: np.ndarray, k: int) -> float:
    """Fraction of queries whose gold answer is ranked within the top ``k``."""
    ranks = np.asarray(ranks)
    if len(ranks) == 0:
        return 0.0
    return float(np.mean(ranks <= k))


def mean_reciprocal_rank(ranks: np.ndarray) -> float:
    """Mean of reciprocal ranks of the gold answers."""
    ranks = np.asarray(ranks, dtype=np.float64)
    if len(ranks) == 0:
        return 0.0
    return float(np.mean(1.0 / ranks))


@dataclass(frozen=True)
class AlignmentMetrics:
    """Standard MMEA metric bundle: H@1, H@10 and MRR."""

    hits_at_1: float
    hits_at_10: float
    mrr: float
    num_queries: int = 0

    def as_dict(self) -> dict[str, float]:
        return {
            "H@1": self.hits_at_1,
            "H@10": self.hits_at_10,
            "MRR": self.mrr,
        }

    def __str__(self) -> str:
        return (f"H@1={self.hits_at_1 * 100:.1f} H@10={self.hits_at_10 * 100:.1f} "
                f"MRR={self.mrr * 100:.1f}")


def evaluate_alignment(similarity, test_pairs: np.ndarray,
                       restrict_candidates: bool = True,
                       ranking: str = "cosine",
                       csls_k: int = 10) -> AlignmentMetrics:
    """Compute H@1 / H@10 / MRR on gold test pairs.

    ``similarity`` is a full matrix or a :class:`TopKSimilarity` decode;
    ``ranking="csls"`` scores the CSLS rescaling instead of raw cosine.
    """
    test_pairs = np.asarray(test_pairs, dtype=np.int64)
    if len(test_pairs) == 0:
        return AlignmentMetrics(0.0, 0.0, 0.0, 0)
    ranks = ranks_from_similarity(similarity, test_pairs, restrict_candidates,
                                  ranking=ranking, csls_k=csls_k)
    return AlignmentMetrics(
        hits_at_1=hits_at_k(ranks, 1),
        hits_at_10=hits_at_k(ranks, 10),
        mrr=mean_reciprocal_rank(ranks),
        num_queries=len(ranks),
    )
