"""Evaluation metrics and harnesses for entity alignment."""

from .metrics import (
    ranks_from_similarity,
    hits_at_k,
    mean_reciprocal_rank,
    AlignmentMetrics,
    evaluate_alignment,
)
from .evaluator import Evaluator, TimingResult, time_callable

__all__ = [
    "ranks_from_similarity",
    "hits_at_k",
    "mean_reciprocal_rank",
    "AlignmentMetrics",
    "evaluate_alignment",
    "Evaluator",
    "TimingResult",
    "time_callable",
]
