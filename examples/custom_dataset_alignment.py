"""Align two user-provided multi-modal knowledge graphs.

This example shows the full path a downstream user takes to align their own
data rather than one of the bundled benchmark replicas:

1. build :class:`~repro.kg.MultiModalKG` objects from raw triples,
   attribute facts and (optionally partial) image features,
2. wrap them in a :class:`~repro.kg.KGPair` with whatever seed alignments
   are available,
3. persist / reload the task in the DBP15K-style on-disk format,
4. declare a pipeline spec with ``dataset="custom"`` and fit it on the
   pair through the :class:`~repro.pipeline.AlignmentPipeline` facade,
   with the iterative (bootstrapping) strategy enabled,
5. inspect the discovered alignment pairs and persist the fitted aligner
   — a reloaded artifact decodes the same pairs without retraining.

The graphs here are tiny and hand-made so the script runs in seconds; swap
in your own triples to use it for real data.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

import numpy as np

from repro import (
    Aligner,
    AlignmentPipeline,
    DataSpec,
    DecodeSpec,
    ModelSpec,
    PipelineSpec,
    TrainingConfig,
)
from repro.core import greedy_one_to_one
from repro.kg import AlignmentPair, KGPair, MultiModalKG, load_pair_dbp_format, save_pair_dbp_format

FAST = os.environ.get("REPRO_EXAMPLES_FAST") == "1"


def build_demo_graph(name: str, rng: np.random.Generator, num_entities: int = 60,
                     drop_images: float = 0.3) -> MultiModalKG:
    """A small community-structured MMKG with partially missing images."""
    relation_triples = []
    for entity in range(num_entities):
        # Ring structure plus a few shortcuts keeps the graph connected.
        relation_triples.append((entity, entity % 4, (entity + 1) % num_entities))
        if entity % 5 == 0:
            relation_triples.append((entity, 4, (entity + 7) % num_entities))
    attribute_triples = [(entity, entity % 6, f"attr-{entity % 6}")
                         for entity in range(num_entities) if entity % 3 != 0]
    image_features = {entity: rng.normal(size=8) + entity % 4
                      for entity in range(num_entities)
                      if rng.random() > drop_images}
    return MultiModalKG.from_triples(
        num_entities=num_entities,
        relation_triples=relation_triples,
        attribute_triples=attribute_triples,
        image_features=image_features,
        num_relations=5,
        num_attributes=6,
        name=name,
    )


def main() -> None:
    rng = np.random.default_rng(0)
    num_entities = 40 if FAST else 60
    source = build_demo_graph("my-source-kg", rng, num_entities, drop_images=0.2)
    target = build_demo_graph("my-target-kg", rng, num_entities, drop_images=0.5)

    # Gold alignments: here the identity mapping; in practice these come
    # from curators or existing owl:sameAs links.
    alignments = [AlignmentPair(i, i) for i in range(source.num_entities)]
    pair = KGPair(source=source, target=target, alignments=alignments,
                  seed_ratio=0.3, name="custom-demo")

    # Persist in the DBP15K-style directory layout and load it back, which
    # is how a real dataset on disk would enter the pipeline.
    with tempfile.TemporaryDirectory() as tmp:
        directory = save_pair_dbp_format(pair, Path(tmp) / "custom-demo")
        pair = load_pair_dbp_format(directory)

    # dataset="custom" declares that the pair arrives via fit(pair=...);
    # everything else — model, iterative training, decode — is the same
    # declarative surface the benchmark presets use.
    spec = PipelineSpec(
        data=DataSpec(dataset="custom", num_entities=num_entities, seed=0),
        model=ModelSpec(name="DESAlign", hidden_dim=32,
                        options={"propagation_iters": 2}),
        training=TrainingConfig(epochs=10 if FAST else 60, eval_every=0,
                                iterative=True, iterative_rounds=1,
                                iterative_epochs=5 if FAST else 20, seed=0),
        decode=DecodeSpec(k=10),
    )
    aligner = AlignmentPipeline.from_spec(spec).fit(pair)
    print(f"Test metrics after iterative training: {aligner.metrics}")
    print(f"Pseudo-seed pairs added by the iterative strategy: "
          f"{aligner.result.history.pseudo_pairs}")

    # Produce a strict one-to-one alignment for export (the assignment may
    # have to fall back past any entity's top-k, so it needs the dense
    # matrix — fine at this scale).
    matches = greedy_one_to_one(aligner.topk().dense())
    correct = sum(1 for source_id, target_id in matches if source_id == target_id)
    print(f"Greedy one-to-one matching: {correct}/{len(matches)} pairs correct")
    print("First ten predicted pairs:", matches[:10])

    # Custom-data artifacts persist the cached decode payloads, so a
    # reloaded aligner serves the same pairs without the original graphs.
    with tempfile.TemporaryDirectory() as tmp:
        aligner.save(tmp)
        reloaded = Aligner.load(tmp)
        assert (reloaded.align().target_ids == aligner.align().target_ids).all()
        print(f"reloaded artifact metrics: {reloaded.evaluate()}")


if __name__ == "__main__":
    main()
