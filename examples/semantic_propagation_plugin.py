"""Use Semantic Propagation as a plug-in decoder for another MMEA model.

Section V-E of the paper points out that Semantic Propagation involves no
learning — it is a linear, CPU-friendly post-processing step — and can
therefore be bolted onto *any* existing aligner's embeddings.  This example
fits the MEAformer baseline through the pipeline facade, then decodes its
embeddings (a) with plain cosine similarity and (b) through Semantic
Propagation, and reports the difference on a split with many missing
images.

It also sweeps the number of propagation rounds, regenerating the shape of
the paper's Figure 4 for a model the propagation was never trained with.
"""

from __future__ import annotations

import os

import numpy as np

from repro import (
    AlignmentPipeline,
    DataSpec,
    DecodeSpec,
    Evaluator,
    ModelSpec,
    PipelineSpec,
    TrainingConfig,
)
from repro.core import SemanticPropagation
from repro.experiments import format_table

FAST = os.environ.get("REPRO_EXAMPLES_FAST") == "1"

NUM_ENTITIES = 50 if FAST else 100
EPOCHS = 8 if FAST else 60
MAX_ROUNDS = 3 if FAST else 6


def main() -> None:
    spec = PipelineSpec(
        data=DataSpec(dataset="FBDB15K", seed_ratio=0.3,
                      num_entities=NUM_ENTITIES, image_ratio=0.2,
                      text_ratio=0.3),
        model=ModelSpec(name="MEAformer"),
        training=TrainingConfig(epochs=EPOCHS, eval_every=0, seed=0),
        decode=DecodeSpec(use_propagation=False),
    )
    aligner = AlignmentPipeline.from_spec(spec).fit()
    print(f"MEAformer with plain cosine decoding: {aligner.metrics}")

    # Pull the trained joint embeddings out of the fitted aligner and
    # identify the semantically consistent entities to act as propagation
    # boundaries.
    task = aligner.task
    [source_embeddings], [target_embeddings] = aligner.decode_states()
    source_consistent, _, _ = task.source.features.consistency_partition()
    target_consistent, _, _ = task.target.features.consistency_partition()
    source_known = np.zeros(task.source.num_entities, dtype=bool)
    target_known = np.zeros(task.target.num_entities, dtype=bool)
    source_known[source_consistent] = True
    target_known[target_consistent] = True

    evaluator = Evaluator(task)
    rows = []
    for iterations in range(MAX_ROUNDS):
        decoder = SemanticPropagation(iterations=iterations)
        propagation = decoder(source_embeddings, target_embeddings,
                              task.source.adjacency, task.target.adjacency,
                              source_known=source_known, target_known=target_known)
        metrics = evaluator.evaluate_similarity(propagation.final_similarity())
        rows.append({"propagation rounds": iterations,
                     "H@1": 100 * metrics.hits_at_1,
                     "H@10": 100 * metrics.hits_at_10,
                     "MRR": 100 * metrics.mrr})

    print("\nSemantic Propagation as a plug-in decoder for MEAformer embeddings:")
    print(format_table(rows))
    print("\nRounds = 0 is the plain cosine decoder; a small number of rounds")
    print("should lift H@1/MRR on this high-missing-modality split, and too")
    print("many rounds drift back down as propagation over-smooths.")


if __name__ == "__main__":
    main()
