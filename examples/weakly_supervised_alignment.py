"""Weakly supervised entity alignment (the setting of Fig. 3, right).

Real MMKG integration projects rarely have 30% of gold alignments available
as seeds.  This example sweeps the seed ratio from 1% to 30% on an
FBDB15K-style split, fitting one declarative
:class:`~repro.pipeline.PipelineSpec` per ratio — optionally with the
iterative bootstrapping strategy that promotes mutual nearest neighbours to
pseudo-seeds — and prints the resulting accuracy curve.  Note how the two
variants differ *only* in their ``training`` section: the sweep is a pure
data/spec transformation, no kwargs threaded anywhere.
"""

from __future__ import annotations

import os

from repro import (
    AlignmentPipeline,
    DataSpec,
    ModelSpec,
    PipelineSpec,
    TrainingConfig,
)
from repro.experiments import format_table

FAST = os.environ.get("REPRO_EXAMPLES_FAST") == "1"

SEED_RATIOS = (0.08, 0.30) if FAST else (0.01, 0.08, 0.15, 0.30)
NUM_ENTITIES = 50 if FAST else 100
EPOCHS = 8 if FAST else 60


def fit(seed_ratio: float, iterative: bool):
    spec = PipelineSpec(
        data=DataSpec(dataset="FBDB15K", seed_ratio=seed_ratio,
                      num_entities=NUM_ENTITIES, seed=0),
        model=ModelSpec(name="DESAlign", hidden_dim=32,
                        options={"propagation_iters": 2}),
        training=TrainingConfig(epochs=EPOCHS, eval_every=0, seed=0,
                                iterative=iterative, iterative_rounds=1,
                                iterative_epochs=4 if FAST else 20),
    )
    return AlignmentPipeline.from_spec(spec).fit()


def main() -> None:
    rows = []
    for seed_ratio in SEED_RATIOS:
        basic = fit(seed_ratio, iterative=False)
        iterative = fit(seed_ratio, iterative=True)
        rows.append({
            "seed_ratio": seed_ratio,
            "seeds": len(basic.task.train_pairs),
            "basic H@1": 100 * basic.metrics.hits_at_1,
            "basic MRR": 100 * basic.metrics.mrr,
            "iterative H@1": 100 * iterative.metrics.hits_at_1,
            "iterative MRR": 100 * iterative.metrics.mrr,
            "pseudo pairs": iterative.result.history.pseudo_pairs[-1]
            if iterative.result.history.pseudo_pairs else 0,
        })
        print(f"finished seed ratio {seed_ratio:.0%}")

    print("\nWeakly supervised DESAlign on an FBDB15K-style split:")
    print(format_table(rows))
    print("\nAccuracy should rise with the seed ratio, and the iterative")
    print("strategy should recover part of the gap at the smallest ratios by")
    print("bootstrapping pseudo-seed pairs from mutual nearest neighbours.")


if __name__ == "__main__":
    main()
