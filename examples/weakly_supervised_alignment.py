"""Weakly supervised entity alignment (the setting of Fig. 3, right).

Real MMKG integration projects rarely have 30% of gold alignments available
as seeds.  This example sweeps the seed ratio from 1% to 30% on an
FBDB15K-style split, trains DESAlign at each ratio — optionally with the
iterative bootstrapping strategy that promotes mutual nearest neighbours to
pseudo-seeds — and prints the resulting accuracy curve.
"""

from __future__ import annotations

from repro import (
    DESAlign,
    DESAlignConfig,
    Trainer,
    TrainingConfig,
    load_benchmark,
    prepare_task,
)
from repro.experiments import format_table

SEED_RATIOS = (0.01, 0.08, 0.15, 0.30)
NUM_ENTITIES = 100
EPOCHS = 60


def train(task, iterative: bool):
    model = DESAlign(task, DESAlignConfig(hidden_dim=32, propagation_iters=2, seed=0))
    training = TrainingConfig(epochs=EPOCHS, eval_every=0, seed=0,
                              iterative=iterative, iterative_rounds=1,
                              iterative_epochs=20)
    return Trainer(model, task, training).fit()


def main() -> None:
    rows = []
    for seed_ratio in SEED_RATIOS:
        pair = load_benchmark("FBDB15K", seed_ratio=seed_ratio, num_entities=NUM_ENTITIES)
        task = prepare_task(pair, seed=0)
        basic = train(task, iterative=False)
        iterative = train(task, iterative=True)
        rows.append({
            "seed_ratio": seed_ratio,
            "seeds": len(task.train_pairs),
            "basic H@1": 100 * basic.metrics.hits_at_1,
            "basic MRR": 100 * basic.metrics.mrr,
            "iterative H@1": 100 * iterative.metrics.hits_at_1,
            "iterative MRR": 100 * iterative.metrics.mrr,
            "pseudo pairs": iterative.history.pseudo_pairs[-1]
            if iterative.history.pseudo_pairs else 0,
        })
        print(f"finished seed ratio {seed_ratio:.0%}")

    print("\nWeakly supervised DESAlign on an FBDB15K-style split:")
    print(format_table(rows))
    print("\nAccuracy should rise with the seed ratio, and the iterative")
    print("strategy should recover part of the gap at the smallest ratios by")
    print("bootstrapping pseudo-seed pairs from mutual nearest neighbours.")


if __name__ == "__main__":
    main()
