"""Quickstart: train DESAlign on a synthetic FBDB15K-style benchmark split.

This is the smallest end-to-end use of the public pipeline API:

1. declare the whole run — dataset, model, training recipe, decode — as
   one validated :class:`~repro.pipeline.PipelineSpec`,
2. fit it through the :class:`~repro.pipeline.AlignmentPipeline` facade,
3. query the fitted :class:`~repro.pipeline.Aligner` (metrics, top-k
   alignment candidates, per-entity rankings),
4. save the alignment artifact and reload it — the reloaded decode is
   bit-identical, no retraining needed.

Run with ``python examples/quickstart.py``; it finishes in well under a
minute on a laptop CPU.  Set ``REPRO_EXAMPLES_FAST=1`` (as CI does) for a
few-second smoke run.
"""

from __future__ import annotations

import os
import tempfile

from repro import (
    Aligner,
    AlignmentPipeline,
    DataSpec,
    DecodeSpec,
    ModelSpec,
    PipelineSpec,
    TrainingConfig,
)

FAST = os.environ.get("REPRO_EXAMPLES_FAST") == "1"


def main() -> None:
    # 1. One declarative spec for the whole run.  The same object (or its
    #    JSON form, via spec.to_json_file) drives the CLI's `repro run`.
    spec = PipelineSpec(
        data=DataSpec(dataset="FBDB15K", seed_ratio=0.2,
                      num_entities=60 if FAST else 120),
        model=ModelSpec(name="DESAlign", hidden_dim=32,
                        options={"propagation_iters": 2}),
        training=TrainingConfig(epochs=10 if FAST else 80,
                                eval_every=0 if FAST else 20, seed=0),
        decode=DecodeSpec(k=10),
    )

    # 2. Fit: prepares the task, builds the registered model, trains and
    #    evaluates — one call, no kwargs to thread.
    aligner = AlignmentPipeline.from_spec(spec).fit()
    print("DESAlign trained through the pipeline facade")
    print(f"  test metrics: {aligner.metrics}")
    print(f"  train time:   {aligner.result.train_seconds:.1f}s")

    # 3. Query the fitted aligner.  Decode states are cached, so repeated
    #    queries with different k pay the encoder cost once.
    table = aligner.align(k=5)
    print("\nTop-1 predictions for the first five source entities:")
    for source, target, score in table.pairs()[:5]:
        print(f"  source {source:3d} -> target {target:3d}  (score {score:.3f})")
    ranking = aligner.rank([0, 1], k=3)
    print(f"ranked candidates of entity 0: {list(ranking.target_ids[0])}")

    # 4. Persist and reload: the artifact carries the spec, the trained
    #    parameters and the cached decode payloads, so the reloaded
    #    aligner decodes bit-identically.
    with tempfile.TemporaryDirectory() as tmp:
        aligner.save(tmp)
        reloaded = Aligner.load(tmp)
        assert (reloaded.align(k=5).scores == table.scores).all()
        print("\nsaved + reloaded artifact reproduces the decode bit-identically")
        print(f"  reloaded metrics: {reloaded.evaluate()}")


if __name__ == "__main__":
    main()
