"""Quickstart: train DESAlign on a synthetic FBDB15K-style benchmark split.

This is the smallest end-to-end use of the public API:

1. materialise a benchmark split (a pair of multi-modal knowledge graphs
   with seed alignments),
2. prepare it for training (modal features, adjacency, Laplacian, splits),
3. train DESAlign with the MMSL objective,
4. decode with Semantic Propagation and report H@1 / H@10 / MRR.

Run with ``python examples/quickstart.py``; it finishes in well under a
minute on a laptop CPU.
"""

from __future__ import annotations

from repro import (
    DESAlign,
    DESAlignConfig,
    Evaluator,
    Trainer,
    TrainingConfig,
    load_benchmark,
    prepare_task,
)


def main() -> None:
    # 1. A scaled-down synthetic replica of the FB15K-DB15K task with 20%
    #    of the gold alignments revealed as training seeds.
    pair = load_benchmark("FBDB15K", seed_ratio=0.2, num_entities=120)
    print("Dataset statistics (Table I style):")
    for side, stats in pair.statistics().items():
        printable = {key: round(value, 3) for key, value in stats.items()}
        print(f"  {side}: {printable}")

    # 2. Prepare dense features, adjacency matrices and the train/test split.
    task = prepare_task(pair, seed=0)

    # 3. Train DESAlign.
    model = DESAlign(task, DESAlignConfig(hidden_dim=32, propagation_iters=2, seed=0))
    trainer = Trainer(model, task, TrainingConfig(epochs=80, eval_every=20, seed=0))
    result = trainer.fit()

    # 4. Report metrics, with and without the Semantic Propagation decoder.
    evaluator = Evaluator(task)
    print(f"\nDESAlign ({model.num_parameters()} parameters)")
    print(f"  trained in {result.train_seconds:.1f}s over {len(result.history.losses)} epochs")
    print(f"  with propagation:    {evaluator.evaluate_model(model, use_propagation=True)}")
    print(f"  without propagation: {evaluator.evaluate_model(model, use_propagation=False)}")


if __name__ == "__main__":
    main()
