"""Robustness to missing modal attributes (the scenario of Tables II and III).

The paper's central claim is that DESAlign stays accurate when a large
fraction of entities lack visual or textual attributes, because (a) the MMSL
objective stops the encoder from over-fitting to imputed modality noise and
(b) Semantic Propagation interpolates the missing semantics from existing
features instead of relying on a predefined random distribution.

This example sweeps the image ratio on a DBP15K-FR-EN-style split and
compares DESAlign against MEAformer, reporting H@1 / MRR per ratio together
with the isolated contribution of Semantic Propagation.

Run with ``python examples/missing_modality_robustness.py`` (a couple of
minutes on CPU).
"""

from __future__ import annotations

from repro import (
    DESAlign,
    DESAlignConfig,
    Evaluator,
    Trainer,
    TrainingConfig,
    load_benchmark,
    prepare_task,
)
from repro.baselines import MEAformer
from repro.experiments import format_table

IMAGE_RATIOS = (0.05, 0.30, 0.60)
NUM_ENTITIES = 100
EPOCHS = 60


def main() -> None:
    rows = []
    for image_ratio in IMAGE_RATIOS:
        pair = load_benchmark("DBP15K_FR_EN", seed_ratio=0.3, num_entities=NUM_ENTITIES,
                              image_ratio=image_ratio)
        task = prepare_task(pair, seed=0)
        evaluator = Evaluator(task)

        meaformer = MEAformer(task)
        Trainer(meaformer, task, TrainingConfig(epochs=EPOCHS, eval_every=0, seed=0)).fit()
        meaformer_metrics = evaluator.evaluate_model(meaformer)

        desalign = DESAlign(task, DESAlignConfig(hidden_dim=32, propagation_iters=2, seed=0))
        Trainer(desalign, task, TrainingConfig(epochs=EPOCHS, eval_every=0, seed=0)).fit()
        with_propagation = evaluator.evaluate_model(desalign, use_propagation=True)
        without_propagation = evaluator.evaluate_model(desalign, use_propagation=False)

        rows.append({
            "image_ratio": image_ratio,
            "MEAformer H@1": 100 * meaformer_metrics.hits_at_1,
            "DESAlign H@1": 100 * with_propagation.hits_at_1,
            "MEAformer MRR": 100 * meaformer_metrics.mrr,
            "DESAlign MRR": 100 * with_propagation.mrr,
            "DESAlign MRR (no SP)": 100 * without_propagation.mrr,
        })
        print(f"finished image ratio {image_ratio:.0%}")

    print("\nRobustness to missing images (DBP15K FR-EN style split):")
    print(format_table(rows))
    print("\nReading guide: DESAlign should stay ahead of MEAformer at every")
    print("ratio, and the 'no SP' column shows how much of that robustness is")
    print("contributed by Semantic Propagation alone.")


if __name__ == "__main__":
    main()
