"""Robustness to missing modal attributes (the scenario of Tables II and III).

The paper's central claim is that DESAlign stays accurate when a large
fraction of entities lack visual attributes, because (a) the MMSL
objective stops the encoder from over-fitting to imputed modality noise and
(b) Semantic Propagation interpolates the missing semantics from existing
features instead of relying on a predefined random distribution.

This example injects the missing modalities declaratively: the sweep
varies only the ``perturbation`` section of the :class:`PipelineSpec`
(seeded modality dropout on the vision channel — the same operator the
``repro robustness`` sweep drives), so a severity of 0.0 is the bit-exact
clean world and every model sees the identical corrupted world.  DESAlign
is compared against MEAformer, reporting H@1 / MRR per severity together
with the isolated contribution of Semantic Propagation (the DESAlign
aligner re-evaluated with ``use_propagation=False`` in its ``decode``
section).

Run with ``python examples/missing_modality_robustness.py`` (a couple of
minutes on CPU; seconds with ``REPRO_EXAMPLES_FAST=1``).
"""

from __future__ import annotations

import os

from repro import (
    AlignmentPipeline,
    DataSpec,
    DecodeSpec,
    ModelSpec,
    PipelineSpec,
    TrainingConfig,
)
from repro.experiments import format_table
from repro.pipeline import PerturbationSpec

FAST = os.environ.get("REPRO_EXAMPLES_FAST") == "1"

DROPOUT_SEVERITIES = (0.0, 0.6) if FAST else (0.0, 0.4, 0.8)
NUM_ENTITIES = 50 if FAST else 100
EPOCHS = 8 if FAST else 60


def base_spec(dropout: float) -> PipelineSpec:
    return PipelineSpec(
        data=DataSpec(dataset="DBP15K_FR_EN", seed_ratio=0.3,
                      num_entities=NUM_ENTITIES),
        training=TrainingConfig(epochs=EPOCHS, eval_every=0, seed=0),
        perturbation=PerturbationSpec(modality_dropout=dropout,
                                      dropout_channels=("vision",), seed=0),
    )


def main() -> None:
    rows = []
    for dropout in DROPOUT_SEVERITIES:
        spec = base_spec(dropout)

        meaformer = AlignmentPipeline.from_spec(
            spec.with_overrides(model=ModelSpec(name="MEAformer"))).fit()

        desalign = AlignmentPipeline.from_spec(
            spec.with_overrides(model=ModelSpec(name="DESAlign"))).fit()
        with_propagation = desalign.evaluate()
        # Same fitted aligner, decode re-declared without the propagation
        # rounds: isolates Semantic Propagation's contribution.
        without_propagation = desalign.with_decode(
            DecodeSpec(use_propagation=False)).evaluate()

        rows.append({
            "image dropout": dropout,
            "MEAformer H@1": 100 * meaformer.metrics.hits_at_1,
            "DESAlign H@1": 100 * with_propagation.hits_at_1,
            "MEAformer MRR": 100 * meaformer.metrics.mrr,
            "DESAlign MRR": 100 * with_propagation.mrr,
            "DESAlign MRR (no SP)": 100 * without_propagation.mrr,
        })
        print(f"finished image dropout {dropout:.0%}")

    print("\nRobustness to missing images (DBP15K FR-EN style split):")
    print(format_table(rows))
    print("\nReading guide: DESAlign should degrade more gracefully than")
    print("MEAformer as dropout rises, and the 'no SP' column shows how much")
    print("of that robustness is contributed by Semantic Propagation alone.")


if __name__ == "__main__":
    main()
