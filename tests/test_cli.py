"""Tests for the command-line interface."""

import functools
import json

import pytest

from repro.cli import build_parser, main
from repro.experiments import list_experiments, registry


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.model == "DESAlign"
        assert args.dataset == "FBDB15K"
        assert not args.iterative

    def test_train_rejects_unknown_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--model", "NotAModel"])

    def test_experiment_rejects_unknown_id(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "table99"])


class TestCommands:
    def test_datasets_listing(self, capsys):
        assert main(["datasets"]) == 0
        output = capsys.readouterr().out
        assert "FBDB15K" in output
        assert "DBP15K_FR_EN" in output
        assert "60 splits" in output

    def test_train_command_prints_metrics(self, capsys):
        exit_code = main(["train", "--model", "EVA", "--dataset", "FBYG15K",
                          "--entities", "40", "--epochs", "3"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "model=EVA" in output
        assert "H@1=" in output

    def test_experiment_command_writes_json(self, capsys, tmp_path):
        output_path = tmp_path / "fig4.json"
        exit_code = main(["experiment", "fig4", "--entities", "40", "--epochs", "2",
                          "--output", str(output_path)])
        assert exit_code == 0
        assert "fig4" in capsys.readouterr().out
        payload = json.loads(output_path.read_text())
        assert payload["experiment"] == "fig4"
        assert payload["rows"]

    def test_train_command_with_ivf_candidates(self, capsys):
        exit_code = main(["train", "--model", "DESAlign", "--dataset", "FBDB15K",
                          "--entities", "40", "--epochs", "2",
                          "--candidates", "ivf"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "model=DESAlign" in output
        assert "H@1=" in output

    def test_train_rejects_unknown_candidates(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--candidates", "faiss"])


#: Per-experiment grid reductions for the CLI smoke run: same runners, same
#: code paths, but one dataset / ratio / model row each so the whole registry
#: smokes in seconds.  Keys must cover the registry exactly (guard below).
SMOKE_KWARGS = {
    "table2": dict(datasets=("FBDB15K",), text_ratios=(0.4,),
                   models=("EVA", "DESAlign")),
    "table3": dict(datasets=("DBP15K_FR_EN",), image_ratios=(0.2,),
                   models=("DESAlign",)),
    "table4": dict(datasets=("FBDB15K",), seed_ratios=(0.3,),
                   basic_models=("GCN-align", "DESAlign"),
                   include_iterative=False),
    "table5": dict(datasets=("DBP15K_JA_EN",), non_iterative_models=("EVA",),
                   include_iterative=False),
    "table6_efficiency": dict(models=("DESAlign",), decode_scales=(120,),
                              train_entities=60),
    "fig3_left": dict(variants=("full", "w/o PP")),
    "fig3_right": dict(datasets=("FBDB15K",), seed_ratios=(0.2,),
                       models=("DESAlign",)),
    "fig4": dict(settings=(("FBDB15K", 0.3, None),), iteration_grid=(0, 1)),
    "fig_energy": dict(),
}


class TestExperimentRegistrySmoke:
    def test_smoke_grid_covers_the_whole_registry(self):
        assert set(SMOKE_KWARGS) == set(registry.EXPERIMENTS)

    def test_every_registry_entry_is_well_formed(self):
        for experiment_id, (runner, description) in registry.EXPERIMENTS.items():
            assert callable(runner), experiment_id
            assert isinstance(description, str) and description, experiment_id
        listed = dict(list_experiments())
        assert set(listed) == set(registry.EXPERIMENTS)

    @pytest.mark.parametrize("experiment_id",
                             [key for key, _ in list_experiments()])
    def test_cli_smoke_runs_every_registered_experiment(
            self, experiment_id, capsys, tmp_path, monkeypatch):
        runner, description = registry.EXPERIMENTS[experiment_id]
        reduced = functools.partial(runner, **SMOKE_KWARGS[experiment_id])
        monkeypatch.setitem(registry.EXPERIMENTS, experiment_id,
                            (reduced, description))
        output_path = tmp_path / f"{experiment_id}.json"
        exit_code = main(["experiment", experiment_id,
                          "--entities", "32", "--epochs", "1",
                          "--output", str(output_path)])
        assert exit_code == 0
        assert capsys.readouterr().out.strip()
        payload = json.loads(output_path.read_text())
        assert payload["rows"], experiment_id
        for row in payload["rows"]:
            for key in ("H@1", "H@10", "MRR"):
                if key in row:
                    assert 0.0 <= row[key] <= 100.0
