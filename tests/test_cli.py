"""Tests for the command-line interface."""

import functools
import json

import pytest

from repro.cli import build_parser, main
from repro.experiments import list_experiments, registry


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.model == "DESAlign"
        assert args.dataset == "FBDB15K"
        assert not args.iterative

    def test_train_rejects_unknown_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--model", "NotAModel"])

    def test_experiment_rejects_unknown_id(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "table99"])


class TestCommands:
    def test_datasets_listing(self, capsys):
        assert main(["datasets"]) == 0
        output = capsys.readouterr().out
        assert "FBDB15K" in output
        assert "DBP15K_FR_EN" in output
        assert "60 splits" in output

    def test_train_command_prints_metrics(self, capsys):
        exit_code = main(["train", "--model", "EVA", "--dataset", "FBYG15K",
                          "--entities", "40", "--epochs", "3"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "model=EVA" in output
        assert "H@1=" in output

    def test_experiment_command_writes_json(self, capsys, tmp_path):
        output_path = tmp_path / "fig4.json"
        exit_code = main(["experiment", "fig4", "--entities", "40", "--epochs", "2",
                          "--output", str(output_path)])
        assert exit_code == 0
        assert "fig4" in capsys.readouterr().out
        payload = json.loads(output_path.read_text())
        assert payload["experiment"] == "fig4"
        assert payload["rows"]

    def test_train_command_with_ivf_candidates(self, capsys):
        exit_code = main(["train", "--model", "DESAlign", "--dataset", "FBDB15K",
                          "--entities", "40", "--epochs", "2",
                          "--candidates", "ivf"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "model=DESAlign" in output
        assert "H@1=" in output

    def test_train_rejects_unknown_candidates(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--candidates", "faiss"])


def write_spec(tmp_path, **overrides):
    """A tiny runnable spec JSON; overrides replace whole sections."""
    payload = {
        "data": {"dataset": "FBDB15K", "num_entities": 36, "seed_ratio": 0.3},
        "model": {"name": "DESAlign", "hidden_dim": 16},
        "training": {"epochs": 2, "eval_every": 0, "seed": 0},
        "decode": {"k": 4},
    }
    payload.update(overrides)
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(payload))
    return path


class TestRunCommand:
    def test_run_prints_metrics_and_saves_artifact(self, capsys, tmp_path):
        spec_path = write_spec(tmp_path)
        artifact = tmp_path / "artifact"
        metrics_path = tmp_path / "metrics.json"
        exit_code = main(["run", "--config", str(spec_path),
                          "--save", str(artifact),
                          "--output", str(metrics_path)])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "model=DESAlign" in output
        assert "H@1=" in output
        for filename in ("spec.json", "params.npz", "store/store.json"):
            assert (artifact / filename).exists(), filename
        payload = json.loads(metrics_path.read_text())
        assert payload["spec"]["model"]["name"] == "DESAlign"
        assert 0.0 <= payload["metrics"]["H@1"] <= 1.0
        assert "train_seconds" in payload["metrics"]

    def test_run_rejects_illegal_spec(self, tmp_path):
        spec_path = write_spec(
            tmp_path, decode={"ranking": "csls", "candidates": "ivf"})
        with pytest.raises(ValueError, match="CSLS"):
            main(["run", "--config", str(spec_path)])

    def test_run_rejects_unknown_keys(self, tmp_path):
        spec_path = write_spec(tmp_path, optimiser={"lr": 0.1})
        with pytest.raises(ValueError, match="unknown top-level key"):
            main(["run", "--config", str(spec_path)])

    def test_run_matches_equivalent_legacy_train_invocation(self, capsys, tmp_path):
        """Acceptance: spec-driven run == legacy kwarg path on H@1/H@10/MRR."""
        import warnings

        from repro.core.config import DESAlignConfig, TrainingConfig
        from repro.core.model import DESAlign
        from repro.core.task import prepare_task
        from repro.core.trainer import Trainer
        from repro.data.benchmarks import load_benchmark

        spec_path = write_spec(tmp_path)
        assert main(["run", "--config", str(spec_path)]) == 0
        run_metrics_line = next(
            line for line in capsys.readouterr().out.splitlines()
            if line.startswith("metrics:"))

        pair = load_benchmark("FBDB15K", seed_ratio=0.3, num_entities=36)
        task = prepare_task(pair, structure_dim=16, seed=0, backend="dense")
        model = DESAlign(task, DESAlignConfig(hidden_dim=16, seed=0))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = Trainer(model, task,
                             TrainingConfig(epochs=2, eval_every=0, seed=0)).fit()
        assert run_metrics_line == f"metrics: {legacy.metrics}"


class TestAlignCommand:
    @pytest.fixture()
    def artifact(self, tmp_path):
        spec_path = write_spec(tmp_path)
        directory = tmp_path / "artifact"
        assert main(["run", "--config", str(spec_path),
                     "--save", str(directory)]) == 0
        return directory

    def test_align_emits_json(self, artifact, capsys):
        assert main(["align", "--artifact", str(artifact), "--k", "3"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["k"] == 3
        assert payload["approximate"] is False
        assert len(payload["alignments"]) == 36
        assert len(payload["alignments"][0]["targets"]) == 3

    def test_align_emits_tsv_for_selected_entities(self, artifact, capsys, tmp_path):
        output = tmp_path / "pairs.tsv"
        assert main(["align", "--artifact", str(artifact), "--k", "2",
                     "--entities", "0,5", "--format", "tsv",
                     "--output", str(output)]) == 0
        lines = output.read_text().strip().splitlines()
        assert lines[0] == "source\trank\ttarget\tscore"
        assert len(lines) == 1 + 2 * 2
        assert lines[1].split("\t")[0] == "0"

    def test_align_missing_artifact_fails(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["align", "--artifact", str(tmp_path / "nope")])

    def test_train_save_then_align(self, capsys, tmp_path):
        directory = tmp_path / "trained"
        assert main(["train", "--model", "DESAlign", "--dataset", "FBDB15K",
                     "--entities", "36", "--epochs", "2",
                     "--save", str(directory)]) == 0
        assert main(["align", "--artifact", str(directory), "--k", "2"]) == 0
        output = capsys.readouterr().out
        assert '"alignments"' in output

    def test_align_with_num_workers_matches_default(self, artifact, capsys):
        assert main(["align", "--artifact", str(artifact), "--k", "3"]) == 0
        baseline = json.loads(capsys.readouterr().out)
        assert main(["align", "--artifact", str(artifact), "--k", "3",
                     "--num-workers", "2"]) == 0
        assert json.loads(capsys.readouterr().out) == baseline


class TestIngestCommand:
    @pytest.fixture()
    def ivf_artifact(self, tmp_path):
        spec_path = write_spec(tmp_path, decode={
            "k": 4, "candidates": "ivf",
            "ann": {"n_clusters": 4, "nprobe": 2}})
        directory = tmp_path / "artifact"
        assert main(["run", "--config", str(spec_path),
                     "--save", str(directory)]) == 0
        return directory

    def test_ingest_folds_a_delta_and_saves(self, ivf_artifact, capsys,
                                            tmp_path):
        from repro.pipeline import Aligner

        n_source, _ = Aligner.load(ivf_artifact).topk(4).shape
        delta_path = tmp_path / "delta.json"
        delta_path.write_text(json.dumps({
            "source": {"entity_names": ["cli-new"],
                       "relation_triples": [[n_source, 0, 1]]}}))
        updated = tmp_path / "updated"
        assert main(["ingest", "--artifact", str(ivf_artifact),
                     "--delta", str(delta_path),
                     "--out", str(updated)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["generation"] == 1
        assert payload["num_new_source"] == 1
        assert payload["num_new_target"] == 0
        assert payload["rows_decoded"] > 0
        assert payload["artifact"] == str(updated)
        # the promoted artifact serves the extended id range
        loaded = Aligner.load(updated)
        assert loaded.rank([n_source], 4).target_ids.shape == (1, 4)

    def test_ingest_default_out_is_artifact_updated(self, ivf_artifact,
                                                    capsys, tmp_path):
        delta_path = tmp_path / "empty.json"
        delta_path.write_text(json.dumps({}))
        assert main(["ingest", "--artifact", str(ivf_artifact),
                     "--delta", str(delta_path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["noop"] is True
        assert payload["artifact"] == str(ivf_artifact) + "-updated"


#: Per-experiment grid reductions for the CLI smoke run: same runners, same
#: code paths, but one dataset / ratio / model row each so the whole registry
#: smokes in seconds.  Keys must cover the registry exactly (guard below).
SMOKE_KWARGS = {
    "table2": dict(datasets=("FBDB15K",), text_ratios=(0.4,),
                   models=("EVA", "DESAlign")),
    "table3": dict(datasets=("DBP15K_FR_EN",), image_ratios=(0.2,),
                   models=("DESAlign",)),
    "table4": dict(datasets=("FBDB15K",), seed_ratios=(0.3,),
                   basic_models=("GCN-align", "DESAlign"),
                   include_iterative=False),
    "table5": dict(datasets=("DBP15K_JA_EN",), non_iterative_models=("EVA",),
                   include_iterative=False),
    "table6_efficiency": dict(models=("DESAlign",), decode_scales=(120,),
                              train_entities=60),
    "fig3_left": dict(variants=("full", "w/o PP")),
    "fig3_right": dict(datasets=("FBDB15K",), seed_ratios=(0.2,),
                       models=("DESAlign",)),
    "fig4": dict(settings=(("FBDB15K", 0.3, None),), iteration_grid=(0, 1)),
    "fig_energy": dict(),
    "robustness": dict(corruptions=("modality_dropout",),
                       severities=(0.0, 0.5), models=("DESAlign",)),
}


class TestExperimentRegistrySmoke:
    def test_smoke_grid_covers_the_whole_registry(self):
        assert set(SMOKE_KWARGS) == set(registry.EXPERIMENTS)

    def test_every_registry_entry_is_well_formed(self):
        for experiment_id, (runner, description) in registry.EXPERIMENTS.items():
            assert callable(runner), experiment_id
            assert isinstance(description, str) and description, experiment_id
        listed = dict(list_experiments())
        assert set(listed) == set(registry.EXPERIMENTS)

    @pytest.mark.parametrize("experiment_id",
                             [key for key, _ in list_experiments()])
    def test_cli_smoke_runs_every_registered_experiment(
            self, experiment_id, capsys, tmp_path, monkeypatch):
        runner, description = registry.EXPERIMENTS[experiment_id]
        reduced = functools.partial(runner, **SMOKE_KWARGS[experiment_id])
        monkeypatch.setitem(registry.EXPERIMENTS, experiment_id,
                            (reduced, description))
        output_path = tmp_path / f"{experiment_id}.json"
        exit_code = main(["experiment", experiment_id,
                          "--entities", "32", "--epochs", "1",
                          "--output", str(output_path)])
        assert exit_code == 0
        assert capsys.readouterr().out.strip()
        payload = json.loads(output_path.read_text())
        assert payload["rows"], experiment_id
        for row in payload["rows"]:
            for key in ("H@1", "H@10", "MRR"):
                if key in row:
                    assert 0.0 <= row[key] <= 100.0
