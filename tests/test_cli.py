"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.model == "DESAlign"
        assert args.dataset == "FBDB15K"
        assert not args.iterative

    def test_train_rejects_unknown_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--model", "NotAModel"])

    def test_experiment_rejects_unknown_id(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "table99"])


class TestCommands:
    def test_datasets_listing(self, capsys):
        assert main(["datasets"]) == 0
        output = capsys.readouterr().out
        assert "FBDB15K" in output
        assert "DBP15K_FR_EN" in output
        assert "60 splits" in output

    def test_train_command_prints_metrics(self, capsys):
        exit_code = main(["train", "--model", "EVA", "--dataset", "FBYG15K",
                          "--entities", "40", "--epochs", "3"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "model=EVA" in output
        assert "H@1=" in output

    def test_experiment_command_writes_json(self, capsys, tmp_path):
        output_path = tmp_path / "fig4.json"
        exit_code = main(["experiment", "fig4", "--entities", "40", "--epochs", "2",
                          "--output", str(output_path)])
        assert exit_code == 0
        assert "fig4" in capsys.readouterr().out
        payload = json.loads(output_path.read_text())
        assert payload["experiment"] == "fig4"
        assert payload["rows"]
