"""Property-based pins for the sharded decode and the out-of-core store.

Three guarantees are exercised under hypothesis-driven shapes, shard
layouts and quantised (exact-tie-rich) inputs:

* **Reducer algebra** — :func:`repro.core.similarity.merge_partials` is
  associative and permutation-invariant even when scores tie *exactly*
  across shards: any merge order / grouping of the per-shard partials
  yields bitwise-equal merged arrays, because the column-max reduction is
  the lexicographic max by ``(value, -source row)`` and the row/col top-k
  merges are multiset reductions.

* **Sharded = serial** — a block-aligned sharded scan merged by that
  reducer equals the single-process engine array for array, for any
  worker count and block size (the bit-identity contract of
  ``num_workers``).

* **Mapped = in-memory** — decoding straight off ``np.load(mmap_mode="r")``
  views of an :class:`~repro.core.store.EmbeddingStore` produces bitwise
  the same decode as the in-RAM arrays: the engine's arithmetic never
  depends on where the pages live.

The exact-tie regime mirrors ``test_property_topk_decode``: a quantised
source against an identity target makes the similarity equal the source
matrix bitwise, so ties are plentiful and every tie-break rule is pinned.
"""

import tempfile
from functools import reduce
from pathlib import Path

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.similarity import (
    _normalize_rows,
    blockwise_topk,
    compute_partial_topk,
    merge_partial_topk,
    merge_partials,
)
from repro.core.sharded import shard_boundaries
from repro.core.store import EmbeddingStore

SETTINGS = settings(max_examples=30, deadline=None)


@st.composite
def tie_rich_case(draw, max_source=28, max_target=14):
    """Quantised source + identity target: bitwise-equal similarities with
    plenty of exact cross-shard score ties."""
    num_source = draw(st.integers(min_value=2, max_value=max_source))
    num_target = draw(st.integers(min_value=2, max_value=max_target))
    seed = draw(st.integers(min_value=0, max_value=2 ** 31 - 1))
    rng = np.random.default_rng(seed)
    source = np.round(rng.normal(size=(num_source, num_target)) * 2) / 2
    target = np.eye(num_target)
    block_size = draw(st.integers(min_value=1, max_value=max_source + 4))
    num_workers = draw(st.integers(min_value=2, max_value=6))
    k = draw(st.integers(min_value=1, max_value=num_target))
    return source, target, k, block_size, num_workers


def _partials_of(source, target, block_size, num_workers, k_keep, csls_k_col):
    source_norm = [_normalize_rows(source)]
    target_norm = [_normalize_rows(target)]
    return [compute_partial_topk(source_norm, target_norm, start, stop,
                                 k_keep=k_keep, csls_k_col=csls_k_col,
                                 block_size=block_size)
            for start, stop in shard_boundaries(len(source), num_workers,
                                                block_size)]


def _assert_partials_equal(a, b):
    assert np.array_equal(a.rows, b.rows)
    assert np.array_equal(a.indices, b.indices)
    assert np.array_equal(a.scores, b.scores)
    assert np.array_equal(a.col_max, b.col_max)
    assert np.array_equal(a.col_argmax, b.col_argmax)
    # col_top is an order-free multiset of per-column top values.
    assert np.array_equal(np.sort(a.col_top, axis=0),
                          np.sort(b.col_top, axis=0))
    assert a.computed_cells == b.computed_cells


class TestReducerAlgebra:
    @SETTINGS
    @given(case=tie_rich_case(), permutation_seed=st.integers(0, 2 ** 31 - 1))
    def test_merge_is_permutation_invariant_under_exact_ties(
            self, case, permutation_seed):
        source, target, k, block_size, num_workers = case
        partials = _partials_of(source, target, block_size, num_workers,
                                k_keep=k, csls_k_col=min(5, len(source)))
        merged = merge_partial_topk(partials)
        order = np.random.default_rng(permutation_seed).permutation(len(partials))
        shuffled = merge_partial_topk([partials[i] for i in order])
        _assert_partials_equal(merged, shuffled)

    @SETTINGS
    @given(case=tie_rich_case())
    def test_merge_is_associative(self, case):
        source, target, k, block_size, num_workers = case
        partials = _partials_of(source, target, block_size, num_workers,
                                k_keep=k, csls_k_col=min(4, len(source)))
        left = reduce(merge_partials, partials)
        right = partials[-1]
        for partial in partials[-2::-1]:
            right = merge_partials(partial, right)
        _assert_partials_equal(left, right)


class TestShardedEqualsSerial:
    @SETTINGS
    @given(case=tie_rich_case())
    def test_sharded_scan_is_bit_identical_under_exact_ties(self, case):
        source, target, k, block_size, num_workers = case
        serial = blockwise_topk(source, target, k=k, block_size=block_size)
        sharded = blockwise_topk(source, target, k=k, block_size=block_size,
                                 num_workers=num_workers)
        assert np.array_equal(serial.indices, sharded.indices)
        assert np.array_equal(serial.scores, sharded.scores)
        assert np.array_equal(serial.col_max, sharded.col_max)
        assert np.array_equal(serial.col_argmax, sharded.col_argmax)
        assert np.array_equal(serial.row_knn_mean, sharded.row_knn_mean)
        assert np.array_equal(serial.col_knn_mean, sharded.col_knn_mean)
        assert serial.computed_cells == sharded.computed_cells


class TestMappedEqualsInMemory:
    @SETTINGS
    @given(seed=st.integers(0, 2 ** 31 - 1),
           num_source=st.integers(3, 24), num_target=st.integers(3, 20),
           num_rounds=st.integers(1, 3), k=st.integers(1, 8),
           block_size=st.integers(1, 16))
    def test_decode_off_mmap_store_is_bit_identical(
            self, seed, num_source, num_target, num_rounds, k, block_size):
        rng = np.random.default_rng(seed)
        source = [rng.normal(size=(num_source, 6)) for _ in range(num_rounds)]
        target = [rng.normal(size=(num_target, 6)) for _ in range(num_rounds)]
        with tempfile.TemporaryDirectory() as tmp:
            EmbeddingStore.create(Path(tmp) / "store", source_states=source,
                                  target_states=target)
            store = EmbeddingStore.open(Path(tmp) / "store", mmap=True)
            mapped_source, mapped_target = store.states()
            in_memory = blockwise_topk(source, target, k=k,
                                       block_size=block_size)
            mapped = blockwise_topk(mapped_source, mapped_target, k=k,
                                    block_size=block_size)
        assert np.array_equal(in_memory.indices, mapped.indices)
        assert np.array_equal(in_memory.scores, mapped.scores)
        assert np.array_equal(in_memory.col_max, mapped.col_max)
        assert np.array_equal(in_memory.col_argmax, mapped.col_argmax)
        assert np.array_equal(in_memory.row_knn_mean, mapped.row_knn_mean)
        assert np.array_equal(in_memory.col_knn_mean, mapped.col_knn_mean)
