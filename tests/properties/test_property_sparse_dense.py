"""Property-based tests: the sparse backend is equivalent to the dense one.

For random graphs and features, the CSR operators must reproduce the dense
reference implementations — normalisation, Laplacian, both Dirichlet-energy
forms, Semantic Propagation states and GCN forward/backward — to numerical
tolerance.  This is the contract that lets ``backend="sparse"`` replace the
``O(n²)`` pipeline wholesale.
"""

import numpy as np
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.autograd import Tensor
from repro.core.propagation import SemanticPropagation
from repro.kg.laplacian import (
    dirichlet_energy,
    dirichlet_energy_pairwise,
    graph_laplacian,
    largest_laplacian_eigenvalue,
    normalized_adjacency,
)
from repro.kg.sparse import (
    dirichlet_energy_edges,
    graph_laplacian_sparse,
    largest_eigenvalue,
    normalized_adjacency_sparse,
)
from repro.nn import GCN

SETTINGS = settings(max_examples=30, deadline=None)


@st.composite
def random_graph_and_features(draw, max_nodes=14, max_dim=5):
    num_nodes = draw(st.integers(min_value=2, max_value=max_nodes))
    dim = draw(st.integers(min_value=1, max_value=max_dim))
    seed = draw(st.integers(min_value=0, max_value=2 ** 31 - 1))
    density = draw(st.floats(min_value=0.05, max_value=0.9))
    rng = np.random.default_rng(seed)
    adjacency = (rng.random((num_nodes, num_nodes)) < density).astype(float)
    adjacency = np.triu(adjacency, k=1)
    adjacency = adjacency + adjacency.T
    features = rng.normal(size=(num_nodes, dim))
    return adjacency, features


class TestSpectralEquivalence:
    @SETTINGS
    @given(random_graph_and_features())
    def test_normalized_adjacency(self, graph_and_features):
        adjacency, _ = graph_and_features
        dense = normalized_adjacency(adjacency)
        sparse = normalized_adjacency_sparse(sp.csr_matrix(adjacency))
        assert np.allclose(dense, sparse.toarray(), atol=1e-12)

    @SETTINGS
    @given(random_graph_and_features())
    def test_laplacian(self, graph_and_features):
        adjacency, _ = graph_and_features
        dense = graph_laplacian(adjacency)
        sparse = graph_laplacian_sparse(sp.csr_matrix(adjacency))
        assert np.allclose(dense, sparse.toarray(), atol=1e-12)

    @SETTINGS
    @given(random_graph_and_features())
    def test_largest_eigenvalue(self, graph_and_features):
        adjacency, _ = graph_and_features
        dense_lap = graph_laplacian(adjacency)
        sparse_lap = graph_laplacian_sparse(sp.csr_matrix(adjacency))
        assert np.isclose(largest_laplacian_eigenvalue(dense_lap),
                          largest_eigenvalue(sparse_lap), atol=1e-9)


class TestEnergyEquivalence:
    @SETTINGS
    @given(random_graph_and_features())
    def test_edgewise_matches_trace_form(self, graph_and_features):
        adjacency, features = graph_and_features
        trace_form = dirichlet_energy(features, graph_laplacian(adjacency))
        edge_form = dirichlet_energy_edges(features, sp.csr_matrix(adjacency))
        assert np.isclose(trace_form, edge_form, rtol=1e-7, atol=1e-8)

    @SETTINGS
    @given(random_graph_and_features())
    def test_edgewise_matches_dense_pairwise(self, graph_and_features):
        adjacency, features = graph_and_features
        dense_form = dirichlet_energy_pairwise(features, adjacency)
        edge_form = dirichlet_energy_pairwise(features, sp.csr_matrix(adjacency))
        assert np.isclose(dense_form, edge_form, rtol=1e-7, atol=1e-8)

    @SETTINGS
    @given(random_graph_and_features())
    def test_sparse_trace_form_matches_dense(self, graph_and_features):
        adjacency, features = graph_and_features
        dense = dirichlet_energy(features, graph_laplacian(adjacency))
        sparse = dirichlet_energy(features, graph_laplacian_sparse(sp.csr_matrix(adjacency)))
        assert np.isclose(dense, sparse, rtol=1e-9, atol=1e-10)


class TestPropagationEquivalence:
    @SETTINGS
    @given(random_graph_and_features(), st.integers(min_value=0, max_value=4))
    def test_states_match(self, graph_and_features, iterations):
        adjacency, features = graph_and_features
        known = np.random.default_rng(0).random(len(adjacency)) < 0.5
        propagation = SemanticPropagation(iterations=iterations)
        dense_states = propagation.propagate_features(features, adjacency, known)
        sparse_states = propagation.propagate_features(
            features, sp.csr_matrix(adjacency), known)
        for dense_state, sparse_state in zip(dense_states, sparse_states):
            assert np.allclose(dense_state, sparse_state, atol=1e-10)


class TestGCNEquivalence:
    @SETTINGS
    @given(random_graph_and_features(max_dim=4))
    def test_forward_and_backward_match(self, graph_and_features):
        adjacency, features = graph_and_features
        dim = features.shape[1]
        gcn = GCN(dim, 2, np.random.default_rng(0))
        dense_norm = normalized_adjacency(adjacency)
        sparse_norm = normalized_adjacency_sparse(sp.csr_matrix(adjacency))

        dense_out = gcn(Tensor(features), dense_norm)
        (dense_out ** 2.0).sum().backward()
        dense_grads = [p.grad.copy() for p in gcn.parameters()]
        for parameter in gcn.parameters():
            parameter.zero_grad()

        sparse_out = gcn(Tensor(features), sparse_norm)
        (sparse_out ** 2.0).sum().backward()
        assert np.allclose(dense_out.numpy(), sparse_out.numpy(), atol=1e-10)
        for dense_grad, parameter in zip(dense_grads, gcn.parameters()):
            assert np.allclose(dense_grad, parameter.grad, atol=1e-8)
