"""Property-based tests (hypothesis) for the Dirichlet-energy machinery.

These validate the paper's mathematical claims on randomly generated graphs
and feature matrices: Definition 3 (the two energy forms agree and are
non-negative), Proposition 1 (convexity lower bound), Proposition 2
(singular-value bounds), Corollary 1 (gap bound), and the spectral range of
the normalised Laplacian.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.kg.laplacian import (
    dirichlet_energy,
    dirichlet_energy_pairwise,
    energy_gap_bounds,
    graph_laplacian,
    largest_laplacian_eigenvalue,
    layer_energy_bounds,
    normalized_adjacency,
)

SETTINGS = settings(max_examples=40, deadline=None)


@st.composite
def random_graph_and_features(draw, max_nodes=12, max_dim=5):
    num_nodes = draw(st.integers(min_value=2, max_value=max_nodes))
    dim = draw(st.integers(min_value=1, max_value=max_dim))
    seed = draw(st.integers(min_value=0, max_value=2 ** 31 - 1))
    density = draw(st.floats(min_value=0.1, max_value=0.9))
    rng = np.random.default_rng(seed)
    adjacency = (rng.random((num_nodes, num_nodes)) < density).astype(float)
    adjacency = np.triu(adjacency, k=1)
    adjacency = adjacency + adjacency.T
    features = rng.normal(size=(num_nodes, dim))
    return adjacency, features


class TestDefinition3:
    @SETTINGS
    @given(random_graph_and_features())
    def test_energy_non_negative(self, graph_and_features):
        adjacency, features = graph_and_features
        laplacian = graph_laplacian(adjacency)
        assert dirichlet_energy(features, laplacian) >= -1e-9

    @SETTINGS
    @given(random_graph_and_features())
    def test_trace_equals_pairwise_form(self, graph_and_features):
        adjacency, features = graph_and_features
        laplacian = graph_laplacian(adjacency)
        trace_form = dirichlet_energy(features, laplacian)
        pairwise_form = dirichlet_energy_pairwise(features, adjacency)
        assert np.isclose(trace_form, pairwise_form, rtol=1e-7, atol=1e-8)

    @SETTINGS
    @given(random_graph_and_features(), st.floats(min_value=0.1, max_value=10.0))
    def test_energy_is_quadratic_in_scaling(self, graph_and_features, scale):
        adjacency, features = graph_and_features
        laplacian = graph_laplacian(adjacency)
        base = dirichlet_energy(features, laplacian)
        scaled = dirichlet_energy(scale * features, laplacian)
        assert np.isclose(scaled, scale ** 2 * base, rtol=1e-6, atol=1e-8)


class TestSpectrum:
    @SETTINGS
    @given(random_graph_and_features())
    def test_laplacian_eigenvalues_in_range(self, graph_and_features):
        adjacency, _ = graph_and_features
        laplacian = graph_laplacian(adjacency)
        eigenvalues = np.linalg.eigvalsh(laplacian)
        assert eigenvalues.min() >= -1e-8
        assert largest_laplacian_eigenvalue(laplacian) <= 2.0 + 1e-8

    @SETTINGS
    @given(random_graph_and_features())
    def test_normalized_adjacency_spectral_radius_at_most_one(self, graph_and_features):
        adjacency, _ = graph_and_features
        normalised = normalized_adjacency(adjacency)
        eigenvalues = np.linalg.eigvalsh(normalised)
        assert np.abs(eigenvalues).max() <= 1.0 + 1e-8


class TestProposition1:
    @SETTINGS
    @given(random_graph_and_features(), st.integers(min_value=0, max_value=2 ** 31 - 1),
           st.floats(min_value=0.01, max_value=2.0))
    def test_convexity_lower_bound(self, graph_and_features, seed, magnitude):
        """L(X̂) - L(X) >= 2 <ΔX, X̂ - X> (first-order convexity bound)."""
        adjacency, features = graph_and_features
        laplacian = graph_laplacian(adjacency)
        rng = np.random.default_rng(seed)
        modified = features + magnitude * rng.normal(size=features.shape)
        gap = dirichlet_energy(modified, laplacian) - dirichlet_energy(features, laplacian)
        first_order = 2.0 * float(np.sum((laplacian @ features) * (modified - features)))
        assert gap >= first_order - 1e-7


class TestCorollary1:
    @SETTINGS
    @given(random_graph_and_features(), st.integers(min_value=0, max_value=2 ** 31 - 1))
    def test_lower_bound_never_exceeds_distance(self, graph_and_features, seed):
        adjacency, features = graph_and_features
        laplacian = graph_laplacian(adjacency)
        rng = np.random.default_rng(seed)
        modified = features + rng.normal(size=features.shape)
        lower, distance, _ = energy_gap_bounds(features, modified, laplacian)
        assert lower <= distance + 1e-7


class TestProposition2:
    @SETTINGS
    @given(random_graph_and_features(), st.integers(min_value=0, max_value=2 ** 31 - 1))
    def test_linear_layer_energy_bounds(self, graph_and_features, seed):
        adjacency, features = graph_and_features
        laplacian = graph_laplacian(adjacency)
        rng = np.random.default_rng(seed)
        weight = rng.normal(size=(features.shape[1], features.shape[1]))
        previous = dirichlet_energy(features, laplacian)
        lower, upper = layer_energy_bounds(weight, previous)
        energy_next = dirichlet_energy(features @ weight, laplacian)
        assert lower - 1e-7 <= energy_next <= upper + max(1e-7, 1e-9 * abs(upper))
