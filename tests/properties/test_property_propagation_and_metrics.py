"""Property-based tests for Semantic Propagation and the evaluation metrics."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.propagation import SemanticPropagation, closed_form_interpolation
from repro.eval.metrics import (
    evaluate_alignment,
    hits_at_k,
    mean_reciprocal_rank,
    ranks_from_similarity,
)
from repro.kg.laplacian import dirichlet_energy, graph_laplacian

SETTINGS = settings(max_examples=30, deadline=None)


@st.composite
def connected_graph_features_mask(draw, max_nodes=10, max_dim=4):
    """A connected random graph, features, and a non-trivial known-mask."""
    num_nodes = draw(st.integers(min_value=3, max_value=max_nodes))
    dim = draw(st.integers(min_value=1, max_value=max_dim))
    seed = draw(st.integers(min_value=0, max_value=2 ** 31 - 1))
    rng = np.random.default_rng(seed)
    adjacency = (rng.random((num_nodes, num_nodes)) < 0.4).astype(float)
    adjacency = np.triu(adjacency, k=1)
    adjacency = adjacency + adjacency.T
    # Guarantee connectivity with a chain.
    for i in range(num_nodes - 1):
        adjacency[i, i + 1] = adjacency[i + 1, i] = 1.0
    features = rng.normal(size=(num_nodes, dim))
    num_known = draw(st.integers(min_value=1, max_value=num_nodes - 1))
    known = np.zeros(num_nodes, dtype=bool)
    known[rng.choice(num_nodes, size=num_known, replace=False)] = True
    return adjacency, features, known


class TestPropagationProperties:
    @SETTINGS
    @given(connected_graph_features_mask(), st.integers(min_value=1, max_value=6))
    def test_known_rows_always_preserved(self, case, iterations):
        adjacency, features, known = case
        propagation = SemanticPropagation(iterations=iterations, reset_known=True)
        states = propagation.propagate_features(features, adjacency, known)
        for state in states:
            assert np.allclose(state[known], features[known])

    @SETTINGS
    @given(connected_graph_features_mask(), st.integers(min_value=1, max_value=6))
    def test_energy_never_increases_without_reset(self, case, iterations):
        adjacency, features, _ = case
        propagation = SemanticPropagation(iterations=iterations, reset_known=False)
        states = propagation.propagate_features(features, adjacency)
        laplacian = graph_laplacian(adjacency)
        energies = [dirichlet_energy(state, laplacian) for state in states]
        for previous, current in zip(energies, energies[1:]):
            assert current <= previous + 1e-8

    @SETTINGS
    @given(connected_graph_features_mask())
    def test_closed_form_is_energy_optimal(self, case):
        adjacency, features, known = case
        solution = closed_form_interpolation(features, adjacency, known)
        laplacian = graph_laplacian(adjacency)
        best = dirichlet_energy(solution, laplacian)
        rng = np.random.default_rng(0)
        perturbed = solution.copy()
        perturbed[~known] += 0.05 * rng.normal(size=perturbed[~known].shape)
        assert dirichlet_energy(perturbed, laplacian) >= best - 1e-8

    @SETTINGS
    @given(connected_graph_features_mask(), st.integers(min_value=0, max_value=4))
    def test_decoder_similarity_is_bounded(self, case, iterations):
        adjacency, features, known = case
        propagation = SemanticPropagation(iterations=iterations)
        result = propagation(features, features, adjacency, adjacency,
                             source_known=known, target_known=known)
        similarity = result.final_similarity()
        assert np.all(similarity <= 1.0 + 1e-7)
        assert np.all(similarity >= -1.0 - 1e-7)
        assert len(result.similarities) == iterations + 1


@st.composite
def similarity_and_test_pairs(draw, max_entities=12):
    num_source = draw(st.integers(min_value=2, max_value=max_entities))
    num_target = draw(st.integers(min_value=2, max_value=max_entities))
    seed = draw(st.integers(min_value=0, max_value=2 ** 31 - 1))
    rng = np.random.default_rng(seed)
    similarity = rng.normal(size=(num_source, num_target))
    num_test = draw(st.integers(min_value=1, max_value=min(num_source, num_target)))
    sources = rng.choice(num_source, size=num_test, replace=False)
    targets = rng.choice(num_target, size=num_test, replace=False)
    return similarity, np.stack([sources, targets], axis=1)


class TestMetricProperties:
    @SETTINGS
    @given(similarity_and_test_pairs())
    def test_metric_invariants(self, case):
        similarity, test_pairs = case
        metrics = evaluate_alignment(similarity, test_pairs)
        assert 0.0 <= metrics.hits_at_1 <= metrics.hits_at_10 <= 1.0
        assert metrics.hits_at_1 <= metrics.mrr <= 1.0
        assert metrics.num_queries == len(test_pairs)

    @SETTINGS
    @given(similarity_and_test_pairs())
    def test_ranks_within_candidate_range(self, case):
        similarity, test_pairs = case
        ranks = ranks_from_similarity(similarity, test_pairs)
        num_candidates = len(np.unique(test_pairs[:, 1]))
        assert np.all(ranks >= 1)
        assert np.all(ranks <= num_candidates)

    @SETTINGS
    @given(similarity_and_test_pairs())
    def test_oracle_similarity_achieves_perfect_scores(self, case):
        similarity, test_pairs = case
        oracle = np.full_like(similarity, -1.0)
        for source_id, target_id in test_pairs:
            oracle[source_id, target_id] = 1.0
        metrics = evaluate_alignment(oracle, test_pairs)
        assert metrics.hits_at_1 == 1.0
        assert metrics.mrr == 1.0

    @SETTINGS
    @given(similarity_and_test_pairs(), st.integers(min_value=1, max_value=20))
    def test_hits_monotone_in_k(self, case, k):
        similarity, test_pairs = case
        ranks = ranks_from_similarity(similarity, test_pairs)
        assert hits_at_k(ranks, k) <= hits_at_k(ranks, k + 1)
        assert mean_reciprocal_rank(ranks) <= 1.0
