"""Property-based equivalence of blockwise top-k decoding vs the dense path.

Two input regimes are exercised:

* **Exact-tie regime** — the target side is an identity matrix, so the
  similarity equals the normalised source matrix *bitwise* in both the
  dense and the streamed computation (multiplying by ``I`` introduces no
  rounding).  Quantised sources then produce plenty of *exact* score ties,
  and every reduction — ranks with their strictly-better + ties-before-gold
  semantics, CSLS values on kept pairs, mutual-NN pair sets — must match
  the dense path exactly, across random shapes, block sizes and ``k``
  values (including ``k > n_t``).

* **Continuous regime** — random Gaussian embeddings, where the block-GEMM
  and the full-GEMM may differ in the last ulp; score values must agree to
  1e-12 and every reduction must agree exactly whenever the similarity
  values are separated by more than that noise floor.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from oracles import (
    reference_csls,
    reference_mutual_pairs,
    reference_ranks,
    reference_topk,
)
from repro.core.alignment import (
    cosine_similarity,
    csls_similarity,
    greedy_one_to_one,
    mutual_nearest_pairs,
)
from repro.core.similarity import blockwise_topk
from repro.eval.metrics import evaluate_alignment, ranks_from_similarity

SETTINGS = settings(max_examples=40, deadline=None)


@st.composite
def exact_tie_case(draw, max_source=24, max_target=16):
    """Quantised source + identity target: bitwise-equal similarities."""
    num_source = draw(st.integers(min_value=2, max_value=max_source))
    num_target = draw(st.integers(min_value=2, max_value=max_target))
    seed = draw(st.integers(min_value=0, max_value=2 ** 31 - 1))
    rng = np.random.default_rng(seed)
    source = np.round(rng.normal(size=(num_source, num_target)) * 2) / 2
    target = np.eye(num_target)
    k = draw(st.integers(min_value=1, max_value=max_target + 8))
    block_size = draw(st.integers(min_value=1, max_value=max_source + 4))
    csls_k = draw(st.integers(min_value=1, max_value=12))
    num_test = draw(st.integers(min_value=1, max_value=min(num_source, num_target)))
    sources = rng.choice(num_source, size=num_test, replace=False)
    targets = rng.choice(num_target, size=num_test, replace=False)
    test_pairs = np.stack([sources, targets], axis=1)
    return source, target, k, block_size, csls_k, test_pairs


class TestExactTieEquivalence:
    @SETTINGS
    @given(exact_tie_case())
    def test_metrics_and_ranks_match_dense_exactly(self, case):
        source, target, k, block_size, csls_k, test_pairs = case
        dense = cosine_similarity(source, target)
        topk = blockwise_topk(source, target, k=k, block_size=block_size,
                              csls_k=csls_k)
        for restrict in (True, False):
            assert np.array_equal(
                ranks_from_similarity(topk, test_pairs, restrict),
                ranks_from_similarity(dense, test_pairs, restrict))
        assert evaluate_alignment(topk, test_pairs) == \
            evaluate_alignment(dense, test_pairs)

    @SETTINGS
    @given(exact_tie_case())
    def test_csls_kept_values_match_dense_exactly(self, case):
        source, target, k, block_size, csls_k, _ = case
        dense_csls = reference_csls(cosine_similarity(source, target), k=csls_k)
        topk = blockwise_topk(source, target, k=k, block_size=block_size,
                              csls_k=csls_k)
        rows = np.arange(topk.shape[0])[:, None]
        assert np.array_equal(topk.csls_scores(), dense_csls[rows, topk.indices])

    @SETTINGS
    @given(exact_tie_case(), st.sampled_from([-0.5, 0.0, 0.3]))
    def test_mutual_pair_sets_match_dense_exactly(self, case, threshold):
        source, target, k, block_size, csls_k, test_pairs = case
        dense = cosine_similarity(source, target)
        topk = blockwise_topk(source, target, k=k, block_size=block_size,
                              csls_k=csls_k)
        assert topk.mutual_nearest_pairs(threshold) == \
            reference_mutual_pairs(dense, threshold)
        exclude_source = {int(test_pairs[0, 0])}
        exclude_target = {int(test_pairs[0, 1])}
        assert topk.mutual_nearest_pairs(threshold, exclude_source, exclude_target) \
            == reference_mutual_pairs(dense, threshold, exclude_source, exclude_target)

    @SETTINGS
    @given(exact_tie_case())
    def test_restricted_decode_matches_restricted_evaluation(self, case):
        source, target, k, block_size, _, test_pairs = case
        dense = cosine_similarity(source, target)
        candidates = np.unique(test_pairs[:, 1])
        topk = blockwise_topk(source, target, k=k, block_size=block_size,
                              columns=candidates)
        assert np.array_equal(ranks_from_similarity(topk, test_pairs, True),
                              ranks_from_similarity(dense, test_pairs, True))


@st.composite
def continuous_case(draw, max_entities=20, max_dim=6):
    num_source = draw(st.integers(min_value=2, max_value=max_entities))
    num_target = draw(st.integers(min_value=2, max_value=max_entities))
    dim = draw(st.integers(min_value=1, max_value=max_dim))
    seed = draw(st.integers(min_value=0, max_value=2 ** 31 - 1))
    rng = np.random.default_rng(seed)
    source = rng.normal(size=(num_source, dim))
    target = rng.normal(size=(num_target, dim))
    k = draw(st.integers(min_value=1, max_value=max_entities + 5))
    block_size = draw(st.integers(min_value=1, max_value=max_entities))
    return source, target, k, block_size


def _well_separated(dense: np.ndarray, noise_floor: float = 1e-9) -> bool:
    """True when no two similarity values sit within the GEMM noise floor."""
    values = np.sort(dense.ravel())
    gaps = np.diff(values)
    return bool(len(gaps) == 0 or gaps.min() > noise_floor)


class TestContinuousEquivalence:
    @SETTINGS
    @given(continuous_case())
    def test_scores_match_dense_within_tolerance(self, case):
        source, target, k, block_size = case
        dense = cosine_similarity(source, target)
        topk = blockwise_topk(source, target, k=k, block_size=block_size)
        _, expected_scores = reference_topk(dense, topk.k)
        assert np.allclose(topk.scores, expected_scores, atol=1e-12)
        assert np.allclose(topk.col_max, dense.max(axis=0), atol=1e-12)
        assert np.allclose(topk.dense(), dense, atol=1e-12)

    @SETTINGS
    @given(continuous_case())
    def test_reductions_match_dense_when_separated(self, case):
        source, target, k, block_size = case
        dense = cosine_similarity(source, target)
        if not _well_separated(dense):  # pragma: no cover - measure-zero event
            return
        topk = blockwise_topk(source, target, k=k, block_size=block_size)
        rng = np.random.default_rng(0)
        num_test = min(dense.shape)
        pairs = np.stack([rng.choice(dense.shape[0], num_test, replace=False),
                          rng.choice(dense.shape[1], num_test, replace=False)],
                         axis=1)
        assert np.array_equal(ranks_from_similarity(topk, pairs),
                              ranks_from_similarity(dense, pairs))
        assert topk.mutual_nearest_pairs() == mutual_nearest_pairs(dense)


@st.composite
def similarity_and_pairs(draw, max_entities=14):
    num_source = draw(st.integers(min_value=2, max_value=max_entities))
    num_target = draw(st.integers(min_value=2, max_value=max_entities))
    seed = draw(st.integers(min_value=0, max_value=2 ** 31 - 1))
    quantise = draw(st.booleans())
    rng = np.random.default_rng(seed)
    similarity = rng.normal(size=(num_source, num_target))
    if quantise:
        similarity = np.round(similarity)
    num_test = draw(st.integers(min_value=1, max_value=min(num_source, num_target)))
    sources = rng.choice(num_source, size=num_test, replace=False)
    targets = rng.choice(num_target, size=num_test, replace=False)
    return similarity, np.stack([sources, targets], axis=1)


class TestVectorisedHelpers:
    @SETTINGS
    @given(similarity_and_pairs(), st.booleans())
    def test_vectorised_ranks_match_loop_reference(self, case, restrict):
        similarity, test_pairs = case
        assert np.array_equal(
            ranks_from_similarity(similarity, test_pairs, restrict),
            reference_ranks(similarity, test_pairs, restrict))

    @SETTINGS
    @given(similarity_and_pairs(), st.integers(min_value=1, max_value=20))
    def test_partitioned_csls_bit_identical_to_full_sort(self, case, k):
        similarity, _ = case
        assert np.array_equal(csls_similarity(similarity, k=k),
                              reference_csls(similarity, k=k))

    @SETTINGS
    @given(similarity_and_pairs(), st.sampled_from([-0.5, 0.0, 0.3]))
    def test_vectorised_mutual_pairs_match_scan_reference(self, case, threshold):
        similarity, test_pairs = case
        assert mutual_nearest_pairs(similarity, threshold) == \
            reference_mutual_pairs(similarity, threshold)
        exclude_source = {int(test_pairs[0, 0])}
        exclude_target = {int(test_pairs[0, 1])}
        assert mutual_nearest_pairs(similarity, threshold, exclude_source,
                                    exclude_target) == \
            reference_mutual_pairs(similarity, threshold, exclude_source,
                                   exclude_target)

    @SETTINGS
    @given(similarity_and_pairs())
    def test_greedy_partial_selection_is_valid_and_tie_deterministic(self, case):
        similarity, _ = case
        matches = greedy_one_to_one(similarity)
        sources = [s for s, _ in matches]
        targets = [t for _, t in matches]
        assert len(matches) == min(similarity.shape)
        assert len(set(sources)) == len(matches)
        assert len(set(targets)) == len(matches)
        assert matches == greedy_one_to_one(similarity)  # deterministic
