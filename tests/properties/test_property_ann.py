"""Property-based guarantees of the IVF/LSH candidate-generation layer.

Three contracts, each over random seeded geometries:

* **Escalation exactness** — with ``exact_escalation=True`` the IVF layer's
  centroid-plus-radius bound proves every row's top-1, so recall@1 against
  the exhaustive decode is exactly 1.0 for *any* geometry, and the
  escalated mutual-NN pair set matches the dense selection.
* **Complete probing is exhaustive** — ``nprobe == n_clusters`` covers
  every bucket, and the engine must reproduce the exhaustive blockwise
  decode *bit for bit* (same dispatch, same arrays).
* **Determinism** — candidate sets are a pure function of the inputs and
  the seed: regenerating with the same seed yields identical structures,
  for IVF and LSH alike.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from oracles import reference_mutual_pairs
from repro.core.alignment import cosine_similarity
from repro.core.ann import AnnConfig, IVFIndex, generate_candidates, recall_at_k
from repro.core.similarity import blockwise_topk

SETTINGS = settings(max_examples=25, deadline=None)


@st.composite
def random_geometry(draw, max_entities=40, max_dim=8):
    """Continuous random embeddings (ties almost surely absent)."""
    num_source = draw(st.integers(min_value=2, max_value=max_entities))
    num_target = draw(st.integers(min_value=2, max_value=max_entities))
    dim = draw(st.integers(min_value=1, max_value=max_dim))
    seed = draw(st.integers(min_value=0, max_value=2 ** 31 - 1))
    rng = np.random.default_rng(seed)
    source = rng.normal(size=(num_source, dim))
    # A mix of noisy copies and unrelated rows: realistic ANN structure.
    copied = min(num_source, num_target)
    target = rng.normal(size=(num_target, dim))
    target[:copied] = source[:copied] + 0.3 * rng.normal(size=(copied, dim))
    ann_seed = draw(st.integers(min_value=0, max_value=10_000))
    return source, target, ann_seed


class TestEscalationExactness:
    @SETTINGS
    @given(random_geometry())
    def test_recall_at_1_is_one_for_any_seeded_geometry(self, case):
        source, target, ann_seed = case
        exact = blockwise_topk(source, target, k=1)
        cands = generate_candidates(
            "ivf", source, target,
            AnnConfig(seed=ann_seed, exact_escalation=True))
        approx = blockwise_topk(source, target, k=1, row_candidates=cands)
        assert recall_at_k(approx.indices, exact.indices, k=1) == 1.0

    @SETTINGS
    @given(random_geometry())
    def test_escalated_mutual_pairs_match_dense(self, case):
        source, target, ann_seed = case
        dense = cosine_similarity(source, target)
        cands = generate_candidates(
            "ivf", source, target,
            AnnConfig(seed=ann_seed, exact_escalation=True))
        approx = blockwise_topk(source, target, k=2, row_candidates=cands)
        assert approx.mutual_nearest_pairs() == reference_mutual_pairs(dense)


class TestCompleteProbingIsExhaustive:
    @SETTINGS
    @given(random_geometry(), st.integers(min_value=1, max_value=6),
           st.integers(min_value=1, max_value=12))
    def test_nprobe_equals_n_clusters_reproduces_blockwise_bitwise(
            self, case, n_clusters, k):
        source, target, ann_seed = case
        exact = blockwise_topk(source, target, k=k, block_size=7)
        # The front door short-circuits full probing to None (exhaustive,
        # nothing materialised)...
        assert generate_candidates(
            "ivf", source, target,
            AnnConfig(seed=ann_seed, n_clusters=n_clusters,
                      nprobe=n_clusters)) is None
        # ... and an explicitly materialised complete candidate set must
        # dispatch to the identical GEMM path, bit for bit.
        index = IVFIndex(target, n_clusters=n_clusters, seed=ann_seed)
        cands = index.candidates(source, nprobe=index.n_clusters)
        assert cands.is_complete()
        via = blockwise_topk(source, target, k=k, block_size=7,
                             row_candidates=cands)
        assert not via.approximate
        assert np.array_equal(via.indices, exact.indices)
        assert np.array_equal(via.scores, exact.scores)
        assert np.array_equal(via.col_max, exact.col_max)
        assert np.array_equal(via.col_argmax, exact.col_argmax)
        assert np.array_equal(via.row_knn_mean, exact.row_knn_mean)
        assert np.array_equal(via.col_knn_mean, exact.col_knn_mean)


class TestDeterminism:
    @SETTINGS
    @given(random_geometry(), st.sampled_from(["ivf", "lsh"]))
    def test_candidates_reproducible_for_fixed_seed(self, case, method):
        source, target, ann_seed = case
        config = AnnConfig(seed=ann_seed)
        first = generate_candidates(method, source, target, config)
        second = generate_candidates(method, source, target, config)
        assert np.array_equal(first.indptr, second.indptr)
        assert np.array_equal(first.indices, second.indices)

    @SETTINGS
    @given(random_geometry())
    def test_escalated_candidates_reproducible(self, case):
        source, target, ann_seed = case
        config = AnnConfig(seed=ann_seed, exact_escalation=True)
        first = generate_candidates("ivf", source, target, config)
        second = generate_candidates("ivf", source, target, config)
        assert np.array_equal(first.indptr, second.indptr)
        assert np.array_equal(first.indices, second.indices)
