"""Property-based tests: full-fanout subgraph forwards equal full-graph ones.

For random graphs, features and seed sets, a full-neighbourhood
:class:`SubgraphView` must reproduce the full-graph forward pass on the
seed rows, for both the GCN (`spmm` over renumbered CSR blocks) and the
edge-list GAT (bipartite segment softmax).  Every *graph* reduction — CSR
row aggregation, segment softmax/sum — visits the same values in the same
order and is asserted bit-equal; the dense ``X @ W`` projections go through
BLAS, whose kernel choice depends on the row count, so the end-to-end
stacks are asserted to the last ulp (``rtol=0, atol=1e-12``) instead.
Sampler id maps must round-trip exactly.
"""

import numpy as np
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.autograd import Tensor
from repro.kg.sampling import NeighbourSampler, attention_pattern
from repro.kg.sparse import normalized_adjacency_sparse
from repro.nn import GAT, GCN

SETTINGS = settings(max_examples=25, deadline=None)


@st.composite
def graph_features_and_seeds(draw, max_nodes=16, max_dim=6):
    num_nodes = draw(st.integers(min_value=3, max_value=max_nodes))
    dim = draw(st.integers(min_value=2, max_value=max_dim))
    if dim % 2:
        dim += 1  # GAT heads need an even feature count
    seed = draw(st.integers(min_value=0, max_value=2 ** 31 - 1))
    density = draw(st.floats(min_value=0.1, max_value=0.8))
    num_seeds = draw(st.integers(min_value=1, max_value=num_nodes))
    rng = np.random.default_rng(seed)
    adjacency = (rng.random((num_nodes, num_nodes)) < density).astype(float)
    adjacency = np.triu(adjacency, k=1)
    adjacency = adjacency + adjacency.T
    features = rng.normal(size=(num_nodes, dim))
    seeds = np.sort(rng.choice(num_nodes, size=num_seeds, replace=False))
    return sp.csr_matrix(adjacency), features, seeds, seed


class TestFullFanoutEquivalence:
    @SETTINGS
    @given(graph_features_and_seeds())
    def test_csr_block_aggregation_bit_equal(self, case):
        """The renumbered-block aggregation itself is bit-identical."""
        adjacency, features, seeds, _ = case
        normalized = normalized_adjacency_sparse(adjacency)
        full = np.asarray(normalized @ features)
        view = NeighbourSampler(normalized, (None,)).sample(seeds)
        sub = np.asarray(view.layers[0].csr_block() @ features[view.input_nodes])
        assert np.array_equal(sub, full[view.seed_nodes])

    @SETTINGS
    @given(graph_features_and_seeds())
    def test_gcn_forward_matches_full_graph(self, case):
        adjacency, features, seeds, seed = case
        dim = features.shape[1]
        normalized = normalized_adjacency_sparse(adjacency)
        gcn = GCN(dim, 2, np.random.default_rng(seed))
        full = gcn(Tensor(features), normalized).numpy()
        view = NeighbourSampler(normalized, (None, None)).sample(seeds)
        sub = gcn(Tensor(features[view.input_nodes]), view).numpy()
        np.testing.assert_allclose(sub, full[view.seed_nodes], rtol=0, atol=1e-12)

    @SETTINGS
    @given(graph_features_and_seeds())
    def test_gat_forward_matches_full_graph(self, case):
        adjacency, features, seeds, seed = case
        dim = features.shape[1]
        gat = GAT(dim, 2, 2, np.random.default_rng(seed))
        full = gat(Tensor(features), adjacency).numpy()
        pattern = attention_pattern(adjacency)
        view = NeighbourSampler(pattern, (None, None), rescale=False).sample(seeds)
        sub = gat(Tensor(features[view.input_nodes]), view).numpy()
        np.testing.assert_allclose(sub, full[view.seed_nodes], rtol=0, atol=1e-12)

    @SETTINGS
    @given(graph_features_and_seeds())
    def test_gcn_parameter_gradients_match(self, case):
        """Backward through the seed rows accumulates identical weight grads."""
        adjacency, features, seeds, seed = case
        dim = features.shape[1]
        normalized = normalized_adjacency_sparse(adjacency)

        gcn = GCN(dim, 2, np.random.default_rng(seed))
        full = gcn(Tensor(features), normalized)
        full.index_select(seeds).sum().backward()
        full_grads = [p.grad.copy() for p in gcn.parameters()]
        gcn.zero_grad()

        view = NeighbourSampler(normalized, (None, None)).sample(seeds)
        sub = gcn(Tensor(features[view.input_nodes]), view)
        sub.sum().backward()
        for parameter, reference in zip(gcn.parameters(), full_grads):
            assert np.allclose(parameter.grad, reference, atol=1e-12)


class TestIdMapRoundTrip:
    @SETTINGS
    @given(graph_features_and_seeds(), st.integers(min_value=1, max_value=4))
    def test_local_global_round_trip(self, case, fanout):
        adjacency, _, seeds, seed = case
        pattern = attention_pattern(adjacency)
        view = NeighbourSampler(pattern, (fanout, fanout), seed=seed).sample(seeds)
        assert np.array_equal(view.seed_nodes, seeds)
        for layer in range(len(view.node_layers)):
            nodes = view.node_layers[layer]
            locals_ = np.arange(len(nodes))
            assert np.array_equal(
                view.global_to_local(view.local_to_global(locals_, layer=layer),
                                     layer=layer),
                locals_)
            # global ids are unique and sorted, so the maps are bijections
            assert np.array_equal(nodes, np.unique(nodes))
