"""Property-based tests for the autograd substrate.

Verify algebraic identities of the Tensor operations and that analytic
gradients match finite differences on randomly drawn inputs and shapes.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.autograd import Tensor, check_gradients, softmax

SETTINGS = settings(max_examples=40, deadline=None)


@st.composite
def random_array(draw, max_rows=6, max_cols=6):
    rows = draw(st.integers(min_value=1, max_value=max_rows))
    cols = draw(st.integers(min_value=1, max_value=max_cols))
    seed = draw(st.integers(min_value=0, max_value=2 ** 31 - 1))
    return np.random.default_rng(seed).normal(size=(rows, cols))


class TestAlgebraicIdentities:
    @SETTINGS
    @given(random_array())
    def test_addition_commutes(self, values):
        a = Tensor(values)
        b = Tensor(values[::-1].copy())
        assert np.allclose((a + b).numpy(), (b + a).numpy())

    @SETTINGS
    @given(random_array())
    def test_double_negation(self, values):
        a = Tensor(values)
        assert np.allclose((-(-a)).numpy(), values)

    @SETTINGS
    @given(random_array())
    def test_exp_log_inverse_on_positive_values(self, values):
        a = Tensor(np.abs(values) + 0.1)
        assert np.allclose(a.log().exp().numpy(), a.numpy(), rtol=1e-9)

    @SETTINGS
    @given(random_array())
    def test_sum_equals_numpy(self, values):
        assert np.isclose(Tensor(values).sum().item(), values.sum())

    @SETTINGS
    @given(random_array())
    def test_transpose_involution(self, values):
        a = Tensor(values)
        assert np.allclose(a.T.T.numpy(), values)

    @SETTINGS
    @given(random_array())
    def test_softmax_rows_are_distributions(self, values):
        probs = softmax(Tensor(values), axis=-1).numpy()
        assert np.allclose(probs.sum(axis=-1), 1.0, atol=1e-9)
        assert np.all(probs >= 0)

    @SETTINGS
    @given(random_array())
    def test_relu_is_idempotent(self, values):
        a = Tensor(values)
        assert np.allclose(a.relu().relu().numpy(), a.relu().numpy())


class TestGradientProperties:
    @SETTINGS
    @given(random_array())
    def test_sum_gradient_is_ones(self, values):
        a = Tensor(values, requires_grad=True)
        a.sum().backward()
        assert np.allclose(a.grad, np.ones_like(values))

    @SETTINGS
    @given(random_array())
    def test_linear_combination_gradcheck(self, values):
        a = Tensor(values, requires_grad=True)
        b = Tensor(values * 0.5 + 0.1, requires_grad=True)

        def fn(inputs):
            x, y = inputs
            return (x * y + x - y * 2.0).sum()

        assert check_gradients(fn, [a, b])

    @SETTINGS
    @given(random_array())
    def test_mean_and_sum_gradients_are_proportional(self, values):
        a = Tensor(values, requires_grad=True)
        a.mean().backward()
        mean_grad = a.grad.copy()
        a.zero_grad()
        a.sum().backward()
        sum_grad = a.grad
        assert np.allclose(mean_grad * values.size, sum_grad)

    @SETTINGS
    @given(random_array(), random_array())
    def test_broadcast_gradients_have_input_shapes(self, left, right):
        a = Tensor(left, requires_grad=True)
        b = Tensor(right[:1, :left.shape[1]] if right.shape[1] >= left.shape[1]
                   else np.ones((1, left.shape[1])), requires_grad=True)
        (a * b).sum().backward()
        assert a.grad.shape == a.shape
        assert b.grad.shape == b.shape
