"""Tests for the synthetic MMKG pair generator and the benchmark presets."""

import numpy as np
import pytest

from repro.data import (
    ALL_DATASETS,
    BILINGUAL_DATASETS,
    MONOLINGUAL_DATASETS,
    MISSING_RATIOS,
    SyntheticPairConfig,
    benchmark_suite,
    dataset_preset,
    generate_pair,
    generate_world,
    is_bilingual,
    load_benchmark,
)


class TestWorldGeneration:
    def test_world_shapes(self):
        config = SyntheticPairConfig(num_entities=50, seed=1)
        world = generate_world(config, np.random.default_rng(1))
        assert world.latent.shape == (50, config.latent_dim)
        assert world.communities.shape == (50,)
        assert len(world.base_edges) > 0

    def test_skeleton_is_connected(self):
        import networkx as nx
        config = SyntheticPairConfig(num_entities=60, seed=2)
        world = generate_world(config, np.random.default_rng(2))
        graph = nx.Graph(world.base_edges)
        graph.add_nodes_from(range(60))
        assert nx.is_connected(graph)

    def test_determinism_given_seed(self):
        config = SyntheticPairConfig(num_entities=30, seed=3)
        world_a = generate_world(config, np.random.default_rng(3))
        world_b = generate_world(config, np.random.default_rng(3))
        assert np.allclose(world_a.latent, world_b.latent)
        assert world_a.base_edges == world_b.base_edges


class TestPairGeneration:
    def test_pair_shapes_and_alignments(self):
        pair = generate_pair(SyntheticPairConfig(num_entities=40, seed=4))
        assert pair.source.num_entities == 40
        assert pair.target.num_entities == 40
        assert pair.num_alignments == 40
        # Alignments are a permutation of target entities.
        targets = sorted(p.target for p in pair.alignments)
        assert targets == list(range(40))

    def test_determinism(self):
        config = SyntheticPairConfig(num_entities=30, seed=5)
        first = generate_pair(config)
        second = generate_pair(config)
        assert first.source.num_relation_triples == second.source.num_relation_triples
        assert [(p.source, p.target) for p in first.alignments] == \
               [(p.source, p.target) for p in second.alignments]

    def test_different_seeds_differ(self):
        base = SyntheticPairConfig(num_entities=30, seed=6)
        other = base.with_overrides(seed=7)
        assert [(p.source, p.target) for p in generate_pair(base).alignments] != \
               [(p.source, p.target) for p in generate_pair(other).alignments]

    def test_coverage_ratios_are_respected(self):
        config = SyntheticPairConfig(num_entities=200, seed=8,
                                     image_coverage_source=0.4,
                                     image_coverage_target=0.9,
                                     attribute_coverage_source=0.5)
        pair = generate_pair(config)
        assert abs(pair.source.image_coverage() - 0.4) < 0.12
        assert abs(pair.target.image_coverage() - 0.9) < 0.12
        assert abs(pair.source.attribute_coverage() - 0.5) < 0.15

    def test_target_graph_is_sparser_with_triple_ratio(self):
        config = SyntheticPairConfig(num_entities=100, seed=9, triple_ratio_target=0.4,
                                     edge_noise_target=0.0, edge_noise_source=0.0)
        pair = generate_pair(config)
        assert pair.target.num_relation_triples < pair.source.num_relation_triples

    def test_aligned_entities_share_visual_semantics(self):
        # Across the whole dataset, the visual features of aligned entities
        # should be more similar than those of random pairs (shared latent).
        config = SyntheticPairConfig(num_entities=80, seed=10,
                                     image_coverage_source=1.0,
                                     image_coverage_target=1.0,
                                     feature_noise=0.05)
        pair = generate_pair(config)
        source_feats = pair.source.image_features
        target_feats = pair.target.image_features

        def normalised(vec):
            return vec / (np.linalg.norm(vec) + 1e-12)

        aligned, random_pairs = [], []
        rng = np.random.default_rng(0)
        for alignment in pair.alignments:
            aligned.append(normalised(source_feats[alignment.source])
                           @ normalised(target_feats[alignment.target]))
            random_target = int(rng.integers(0, 80))
            random_pairs.append(normalised(source_feats[alignment.source])
                                @ normalised(target_feats[random_target]))
        assert np.mean(aligned) > np.mean(random_pairs)


class TestPresets:
    @pytest.mark.parametrize("dataset", ALL_DATASETS)
    def test_every_preset_generates(self, dataset):
        pair = load_benchmark(dataset, num_entities=40)
        assert pair.source.num_entities == 40
        assert pair.name == dataset

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            dataset_preset("DBP15K_DE_EN")

    def test_bilingual_flag(self):
        assert all(is_bilingual(d) for d in BILINGUAL_DATASETS)
        assert not any(is_bilingual(d) for d in MONOLINGUAL_DATASETS)

    def test_monolingual_presets_have_asymmetric_vocabularies(self):
        config = dataset_preset("FBYG15K")
        assert config.num_relations_source > config.num_relations_target

    def test_seed_ratio_override(self):
        pair = load_benchmark("FBDB15K", seed_ratio=0.5, num_entities=40)
        train, test = pair.split(np.random.default_rng(0))
        assert abs(len(train) / (len(train) + len(test)) - 0.5) < 0.05


class TestSplitManipulation:
    def test_image_ratio_reduces_coverage_in_both_graphs(self):
        full = load_benchmark("DBP15K_FR_EN", num_entities=60)
        reduced = load_benchmark("DBP15K_FR_EN", num_entities=60, image_ratio=0.2)
        assert reduced.source.num_images < full.source.num_images
        assert reduced.target.num_images < full.target.num_images
        assert reduced.source.image_coverage() <= 0.25

    def test_text_ratio_reduces_attribute_coverage(self):
        full = load_benchmark("FBDB15K", num_entities=60)
        reduced = load_benchmark("FBDB15K", num_entities=60, text_ratio=0.1)
        assert reduced.source.attribute_coverage() < full.source.attribute_coverage()

    def test_ratio_splits_share_the_same_alignments(self):
        full = load_benchmark("FBDB15K", num_entities=60)
        reduced = load_benchmark("FBDB15K", num_entities=60, image_ratio=0.3)
        assert [(p.source, p.target) for p in full.alignments] == \
               [(p.source, p.target) for p in reduced.alignments]


class TestBenchmarkSuite:
    def test_suite_has_sixty_splits(self):
        assert len(benchmark_suite()) == 60

    def test_split_identifiers_are_unique(self):
        identifiers = [split.identifier for split in benchmark_suite()]
        assert len(identifiers) == len(set(identifiers))

    def test_suite_covers_all_missing_ratios(self):
        suite = benchmark_suite()
        text_ratios = {s.text_ratio for s in suite if s.text_ratio is not None}
        image_ratios = {s.image_ratio for s in suite if s.image_ratio is not None}
        assert set(MISSING_RATIOS) <= text_ratios
        assert set(MISSING_RATIOS) <= image_ratios

    def test_suite_covers_all_datasets(self):
        datasets = {split.dataset for split in benchmark_suite()}
        assert set(ALL_DATASETS) <= datasets
