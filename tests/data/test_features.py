"""Tests for modal feature construction (BoW encoders, imputation, masks)."""

import numpy as np
import pytest

from repro.data import (
    ModalFeatureSet,
    bag_of_attributes,
    bag_of_relations,
    build_feature_set,
    visual_feature_matrix,
)
from repro.kg import MultiModalKG


@pytest.fixture
def graph():
    return MultiModalKG.from_triples(
        num_entities=6,
        relation_triples=[(0, 0, 1), (1, 1, 2), (2, 2, 3), (3, 0, 4), (0, 1, 5)],
        attribute_triples=[(0, 0, "x"), (0, 1, "y"), (1, 0, "z"), (3, 2, "w")],
        image_features={0: [1.0, 2.0, 3.0], 2: [4.0, 5.0, 6.0]},
        num_relations=3,
        num_attributes=3,
        name="feat-test",
    )


class TestBagOfWords:
    def test_relation_bow_counts_incident_edges(self, graph):
        features = bag_of_relations(graph)
        assert features.shape == (6, 3)
        # Entity 0 participates in two triples: (0, r0, 1) and (0, r1, 5).
        assert features[0].sum() == 2.0
        assert np.all(features >= 0)

    def test_relation_bow_total_mass_is_twice_triples(self, graph):
        features = bag_of_relations(graph)
        assert features.sum() == 2 * graph.num_relation_triples

    def test_attribute_bow_counts(self, graph):
        features = bag_of_attributes(graph)
        assert features.shape == (6, 3)
        assert features[0].sum() == 2.0
        assert features[5].sum() == 0.0

    def test_feature_hashing_respects_requested_dim(self, graph):
        features = bag_of_relations(graph, dim=2)
        assert features.shape == (6, 2)
        assert features.sum() == 2 * graph.num_relation_triples

    def test_empty_vocabulary_graph(self):
        empty = MultiModalKG.from_triples(num_entities=3, relation_triples=[])
        assert bag_of_relations(empty).shape[0] == 3
        assert bag_of_attributes(empty).shape[0] == 3


class TestVisualFeatures:
    def test_matrix_and_mask(self, graph):
        features, mask = visual_feature_matrix(graph)
        assert features.shape == (6, 3)
        assert mask.tolist() == [True, False, True, False, False, False]
        assert np.allclose(features[0], [1.0, 2.0, 3.0])
        assert np.allclose(features[1], 0.0)

    def test_padding_to_larger_dim(self, graph):
        features, _ = visual_feature_matrix(graph, dim=5)
        assert features.shape == (6, 5)
        assert np.allclose(features[0, 3:], 0.0)

    def test_graph_without_images(self):
        empty = MultiModalKG.from_triples(num_entities=3, relation_triples=[])
        features, mask = visual_feature_matrix(empty, dim=4)
        assert features.shape == (3, 4)
        assert not mask.any()


class TestBuildFeatureSet:
    def test_all_modalities_present(self, graph):
        feature_set = build_feature_set(graph, np.random.default_rng(0))
        assert set(feature_set.features) == {"graph", "relation", "attribute", "vision"}
        assert feature_set.num_entities == 6

    def test_masks_reflect_native_coverage(self, graph):
        feature_set = build_feature_set(graph, np.random.default_rng(0))
        assert feature_set.masks["vision"].sum() == 2
        assert feature_set.masks["attribute"].sum() == 3
        assert feature_set.masks["graph"].all()

    def test_missing_ratio(self, graph):
        feature_set = build_feature_set(graph, np.random.default_rng(0))
        assert feature_set.missing_ratio("vision") == pytest.approx(4 / 6)
        assert feature_set.missing_ratio("graph") == 0.0

    def test_random_imputation_fills_missing_rows(self, graph):
        feature_set = build_feature_set(graph, np.random.default_rng(0),
                                        imputation="random_from_distribution")
        vision = feature_set.features["vision"]
        # Imputed rows are not all zero (they follow the observed distribution).
        assert np.abs(vision[1]).sum() > 0

    def test_zero_imputation(self, graph):
        feature_set = build_feature_set(graph, np.random.default_rng(0), imputation="zero")
        assert np.allclose(feature_set.features["vision"][1], 0.0)

    def test_mean_imputation(self, graph):
        feature_set = build_feature_set(graph, np.random.default_rng(0), imputation="mean")
        expected = np.mean([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]], axis=0)
        assert np.allclose(feature_set.features["vision"][1], expected)

    def test_unknown_imputation_raises(self, graph):
        with pytest.raises(ValueError):
            build_feature_set(graph, np.random.default_rng(0), imputation="magic")

    def test_feature_dims_follow_arguments(self, graph):
        feature_set = build_feature_set(graph, np.random.default_rng(0),
                                        relation_dim=7, attribute_dim=9,
                                        vision_dim=3, structure_dim=11)
        dims = feature_set.dims()
        assert dims == {"graph": 11, "relation": 7, "attribute": 9, "vision": 3}


class TestConsistencyPartition:
    def test_partition_is_disjoint_cover(self, graph):
        feature_set = build_feature_set(graph, np.random.default_rng(0))
        consistent, sparse, missing = feature_set.consistency_partition()
        union = np.concatenate([consistent, sparse, missing])
        assert sorted(union.tolist()) == list(range(6))
        assert len(set(union.tolist())) == 6

    def test_entities_missing_a_modality_are_in_missing_set(self, graph):
        feature_set = build_feature_set(graph, np.random.default_rng(0))
        _, _, missing = feature_set.consistency_partition()
        # Entity 5 has no attributes and no image: must be inconsistent.
        assert 5 in missing.tolist()

    def test_partition_without_graph_reference(self, graph):
        feature_set = build_feature_set(graph, np.random.default_rng(0))
        detached = ModalFeatureSet(features=feature_set.features,
                                   masks=feature_set.masks, graph=None)
        consistent, sparse, missing = detached.consistency_partition()
        assert len(sparse) == 0
        assert len(consistent) + len(missing) == 6
