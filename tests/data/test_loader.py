"""Tests for the mini-batch seed-pair loader (repro.data.loader)."""

import numpy as np
import pytest

from repro.data.loader import SeedPairBatch, SeedPairLoader
from repro.kg.sampling import NeighbourSampler, attention_pattern
from repro.kg.sparse import adjacency_from_triples


def _samplers(num_entities: int, seed: int = 0):
    rng = np.random.default_rng(seed)

    class _Triple:
        def __init__(self, head, tail):
            self.head, self.tail = head, tail

    triples = [_Triple(int(a), int(b))
               for a, b in rng.integers(0, num_entities, size=(4 * num_entities, 2))]
    pattern = attention_pattern(adjacency_from_triples(num_entities, triples))
    return (NeighbourSampler(pattern, (3, 3), seed=seed),
            NeighbourSampler(pattern, (3, 3), seed=seed + 1))


@pytest.fixture()
def pairs():
    rng = np.random.default_rng(2)
    sources = rng.choice(30, size=20, replace=False)
    targets = rng.choice(30, size=20, replace=False)
    return np.stack([sources, targets], axis=1).astype(np.int64)


class TestSeedPairLoader:
    def test_batches_cover_all_pairs_once(self, pairs):
        source_sampler, target_sampler = _samplers(30)
        loader = SeedPairLoader(pairs, source_sampler, target_sampler, batch_size=6)
        assert len(loader) == 4
        seen = []
        for batch in loader:
            assert isinstance(batch, SeedPairBatch)
            assert len(batch) <= 6
            seen.append(batch.pairs)
        seen = np.concatenate(seen, axis=0)
        assert len(seen) == len(pairs)
        assert np.array_equal(np.sort(seen[:, 0]), np.sort(pairs[:, 0]))
        assert np.array_equal(np.sort(seen[:, 1]), np.sort(pairs[:, 1]))

    def test_local_indices_map_back_to_pair_ids(self, pairs):
        source_sampler, target_sampler = _samplers(30, seed=1)
        loader = SeedPairLoader(pairs, source_sampler, target_sampler, batch_size=7)
        for batch in loader:
            assert np.array_equal(
                batch.source_view.seed_nodes[batch.source_index], batch.pairs[:, 0])
            assert np.array_equal(
                batch.target_view.seed_nodes[batch.target_index], batch.pairs[:, 1])
            # the views carry exactly the batch entities as seeds
            assert np.array_equal(batch.source_view.seed_nodes,
                                  np.unique(batch.pairs[:, 0]))

    def test_single_batch_keeps_pair_order(self, pairs):
        source_sampler, target_sampler = _samplers(30, seed=2)
        loader = SeedPairLoader(pairs, source_sampler, target_sampler, batch_size=64)
        batches = list(loader)
        assert len(batches) == 1
        assert np.array_equal(batches[0].pairs, pairs)

    def test_shuffle_uses_shared_generator(self, pairs):
        source_sampler, target_sampler = _samplers(30, seed=3)
        rng_a = np.random.default_rng(9)
        rng_b = np.random.default_rng(9)
        loader_a = SeedPairLoader(pairs, source_sampler, target_sampler,
                                  batch_size=5, rng=rng_a)
        loader_b = SeedPairLoader(pairs, *_samplers(30, seed=3),
                                  batch_size=5, rng=rng_b)
        order_a = np.concatenate([b.pairs for b in loader_a], axis=0)
        order_b = np.concatenate([b.pairs for b in loader_b], axis=0)
        assert np.array_equal(order_a, order_b)

    def test_empty_and_invalid_inputs(self):
        source_sampler, target_sampler = _samplers(10, seed=4)
        empty = SeedPairLoader(np.empty((0, 2), dtype=np.int64),
                               source_sampler, target_sampler)
        assert list(empty) == []
        with pytest.raises(ValueError):
            SeedPairLoader(np.zeros((3, 3)), source_sampler, target_sampler)
        with pytest.raises(ValueError):
            SeedPairLoader(np.zeros((3, 2)), source_sampler, target_sampler,
                           batch_size=0)
