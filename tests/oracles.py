"""Shared brute-force oracles for the decode stack's test suites.

Every optimised decode path in the library — vectorised ranking, partial-
selection CSLS, streaming blockwise top-k, approximate candidate decodes —
is validated against the straightforward formulations collected here.  The
oracles deliberately trade speed for obviousness: per-test-pair Python
loops, full ``np.sort`` reductions and quadratic scans, exactly as the
historical implementations computed them, so a test failure localises the
bug in the optimised path rather than the reference.

The helpers accept plain dense similarity matrices (oracles never consume
streaming decodes; producing the dense matrix is the caller's job).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "reference_ranks",
    "reference_csls",
    "reference_mutual_pairs",
    "reference_topk",
]


def reference_ranks(similarity, test_pairs, restrict_candidates: bool = True) -> np.ndarray:
    """The historical per-test-pair Python loop, kept as a semantics oracle.

    Rank = 1 + strictly-better candidates + equal-scoring candidates whose
    column precedes the gold's (the deterministic index-order tie break of
    the evaluation protocol).
    """
    similarity = np.asarray(similarity, dtype=np.float64)
    test_pairs = np.asarray(test_pairs, dtype=np.int64)
    if restrict_candidates:
        candidates = np.unique(test_pairs[:, 1])
    else:
        candidates = np.arange(similarity.shape[1])
    candidate_position = {int(t): i for i, t in enumerate(candidates)}
    scores = similarity[:, candidates]
    ranks = np.zeros(len(test_pairs), dtype=np.int64)
    for row, (source_id, target_id) in enumerate(test_pairs):
        gold_column = candidate_position[int(target_id)]
        row_scores = scores[source_id]
        gold_score = row_scores[gold_column]
        better = np.sum(row_scores > gold_score)
        ties_before = np.sum((row_scores == gold_score)[:gold_column])
        ranks[row] = 1 + better + ties_before
    return ranks


def reference_csls(similarity, k: int = 10) -> np.ndarray:
    """CSLS via the historical full-sort formulation.

    ``CSLS(i, j) = 2 s(i, j) - r_T(i) - r_S(j)`` with the k-NN means taken
    over ascending-sorted slices, which fixes the summation order the
    optimised partition-based implementation must reproduce bit for bit.
    """
    similarity = np.asarray(similarity, dtype=np.float64)
    k_row = min(k, similarity.shape[1])
    k_col = min(k, similarity.shape[0])
    row_mean = np.sort(similarity, axis=1)[:, -k_row:].mean(axis=1, keepdims=True)
    col_mean = np.sort(similarity, axis=0)[-k_col:, :].mean(axis=0, keepdims=True)
    return 2.0 * similarity - row_mean - col_mean


def reference_mutual_pairs(similarity, threshold: float = 0.0,
                           exclude_source=None,
                           exclude_target=None) -> list[tuple[int, int]]:
    """Mutual nearest neighbours by an explicit per-row/per-column scan.

    ``np.argmax`` first-index tie semantics in both directions, then the
    threshold and the exclusion sets — the selection rule of the iterative
    strategy, spelled out one pair at a time.
    """
    similarity = np.asarray(similarity, dtype=np.float64)
    exclude_source = exclude_source or set()
    exclude_target = exclude_target or set()
    pairs: list[tuple[int, int]] = []
    for source_id in range(similarity.shape[0]):
        target_id = int(np.argmax(similarity[source_id]))
        if int(np.argmax(similarity[:, target_id])) != source_id:
            continue
        if similarity[source_id, target_id] < threshold:
            continue
        if source_id in exclude_source or target_id in exclude_target:
            continue
        pairs.append((source_id, target_id))
    return pairs


def reference_topk(similarity, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Per-row top-``k`` (indices, scores) by full argsort.

    Sorted by descending score with ties broken by ascending column id —
    the deterministic order the streaming engine stores.
    """
    similarity = np.asarray(similarity, dtype=np.float64)
    k = min(k, similarity.shape[1])
    indices = np.empty((similarity.shape[0], k), dtype=np.int64)
    scores = np.empty((similarity.shape[0], k), dtype=np.float64)
    columns = np.arange(similarity.shape[1])
    for row in range(similarity.shape[0]):
        order = np.lexsort((columns, -similarity[row]))[:k]
        indices[row] = order
        scores[row] = similarity[row][order]
    return indices, scores
