"""Back-compat shims: legacy call patterns warn, keep working, and agree
with the facade; every consolidated legality rule still rejects from every
entry surface with its single-source message."""

import warnings

import numpy as np
import pytest

from repro.core.config import DESAlignConfig, TrainingConfig
from repro.core.model import DESAlign
from repro.core.task import prepare_task
from repro.core.trainer import Trainer
from repro.data.benchmarks import load_benchmark
from repro.eval.evaluator import Evaluator
from repro.pipeline import (
    AlignmentPipeline,
    DataSpec,
    DecodeSpec,
    ModelSpec,
    PipelineSpec,
)


@pytest.fixture(scope="module")
def tiny_task():
    pair = load_benchmark("FBDB15K", seed_ratio=0.3, num_entities=36)
    return prepare_task(pair, structure_dim=16, seed=0)


@pytest.fixture(scope="module")
def tiny_model(tiny_task):
    return DESAlign(tiny_task, DESAlignConfig(hidden_dim=16, seed=0))


class TestTrainerShim:
    def test_trainer_warns_with_spec_equivalent(self, tiny_task, tiny_model):
        with pytest.warns(DeprecationWarning, match="AlignmentPipeline.from_spec"):
            Trainer(tiny_model, tiny_task, TrainingConfig(epochs=1, eval_every=0))

    def test_trainer_result_equals_facade_result(self, tiny_task):
        config = TrainingConfig(epochs=2, eval_every=0, seed=0)
        model = DESAlign(tiny_task, DESAlignConfig(hidden_dim=16, seed=0))
        with pytest.warns(DeprecationWarning):
            legacy = Trainer(model, tiny_task, config).fit()

        spec = PipelineSpec(
            data=DataSpec(dataset="custom", num_entities=36, seed=0),
            model=ModelSpec(name="DESAlign", hidden_dim=16, seed=0),
            training=config,
        )
        aligner = AlignmentPipeline.from_spec(spec).fit(tiny_task)
        assert legacy.metrics == aligner.metrics


class TestSimilarityShim:
    def test_legacy_decode_kwarg_warns_with_decode_spec(self, tiny_model):
        with pytest.warns(DeprecationWarning, match="DecodeSpec\\(decode='blockwise'"):
            legacy = tiny_model.similarity(decode="blockwise", k=4)
        assert legacy.k >= 4

    def test_legacy_candidates_kwarg_warns(self, tiny_model):
        with pytest.warns(DeprecationWarning, match="candidates='ivf'"):
            tiny_model.similarity(decode="blockwise", candidates="ivf")

    def test_default_similarity_call_does_not_warn(self, tiny_model):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            tiny_model.similarity()

    def test_evaluator_path_does_not_warn(self, tiny_task, tiny_model):
        evaluator = Evaluator(tiny_task, decode="blockwise")
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            evaluator.evaluate_model(tiny_model)

    def test_legacy_similarity_equals_facade_decode(self, tiny_task):
        spec = PipelineSpec(
            data=DataSpec(dataset="custom", num_entities=36, seed=0),
            model=ModelSpec(name="DESAlign", hidden_dim=16, seed=0),
            training=TrainingConfig(epochs=1, eval_every=0, seed=0),
            decode=DecodeSpec(decode="blockwise", k=5),
        )
        aligner = AlignmentPipeline.from_spec(spec).fit(tiny_task)
        with pytest.warns(DeprecationWarning):
            legacy = aligner.model.similarity(decode="blockwise", k=5)
        facade = aligner.topk()
        assert np.array_equal(legacy.indices, facade.indices)
        assert np.array_equal(legacy.scores, facade.scores)

    def test_baseline_similarity_shim(self, tiny_task):
        from repro.baselines import EVA

        model = EVA(tiny_task)
        with pytest.warns(DeprecationWarning, match="EVA.similarity"):
            model.similarity(decode="blockwise")


class TestConsolidatedRules:
    """Each rejected combination, regression-tested on every entry surface."""

    def test_training_config_rejects_iterative_lsh(self):
        with pytest.raises(ValueError, match="LSH"):
            TrainingConfig(iterative=True, candidates="lsh")

    def test_training_config_rejects_patience_without_cadence(self):
        with pytest.raises(ValueError, match="eval_every"):
            TrainingConfig(early_stopping_patience=1, eval_every=0)

    def test_training_config_rejects_unknown_candidates(self):
        with pytest.raises(ValueError, match="candidate"):
            TrainingConfig(candidates="faiss")

    def test_training_config_rejects_unknown_sampling(self):
        with pytest.raises(ValueError, match="sampling"):
            TrainingConfig(sampling="layerwise")

    def test_evaluator_rejects_csls_on_approximate_candidates(self, tiny_task):
        with pytest.raises(ValueError, match="CSLS"):
            Evaluator(tiny_task, ranking="csls", candidates="ivf")

    def test_evaluator_rejects_dense_decode_with_candidates(self, tiny_task):
        with pytest.raises(ValueError, match="incompatible with decode='dense'"):
            Evaluator(tiny_task, decode="dense", candidates="lsh")

    def test_model_similarity_rejects_dense_with_candidates(self, tiny_model):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(ValueError, match="incompatible with decode='dense'"):
                tiny_model.similarity(decode="dense", candidates="ivf")

    def test_messages_are_identical_across_surfaces(self, tiny_task, tiny_model):
        """The same rule produces byte-identical messages on every surface."""
        def capture(callable_):
            with pytest.raises(ValueError) as info:
                callable_()
            return str(info.value)

        spec_csls = capture(lambda: PipelineSpec(
            decode=DecodeSpec(ranking="csls", candidates="ivf")).validate())
        evaluator_csls = capture(lambda: Evaluator(tiny_task, ranking="csls",
                                                   candidates="ivf"))
        assert spec_csls == evaluator_csls

        spec_dense = capture(lambda: PipelineSpec(
            decode=DecodeSpec(decode="dense", candidates="ivf")).validate())
        evaluator_dense = capture(lambda: Evaluator(tiny_task, decode="dense",
                                                    candidates="ivf"))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            model_dense = capture(lambda: tiny_model.similarity(
                decode="dense", candidates="ivf"))
        assert spec_dense == evaluator_dense == model_dense
