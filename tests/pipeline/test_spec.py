"""Spec serialisation and validation: round-trips, golden files, rejections."""

from pathlib import Path

import pytest

from repro.core.ann import AnnConfig
from repro.core.config import TrainingConfig
from repro.pipeline import (
    AlignmentPipeline,
    DataSpec,
    DecodeSpec,
    ModelSpec,
    PerturbationSpec,
    PipelineSpec,
)

GOLDEN_DIR = Path(__file__).parent / "golden"
GOLDEN_SPECS = sorted(GOLDEN_DIR.glob("*.json"))


class TestRoundTrip:
    def test_default_spec_round_trips(self):
        spec = PipelineSpec()
        assert PipelineSpec.from_dict(spec.to_dict()) == spec

    def test_rich_spec_round_trips(self):
        spec = PipelineSpec(
            data=DataSpec(dataset="DBP15K_FR_EN", num_entities=64,
                          seed_ratio=0.25, image_ratio=0.4, backend="sparse",
                          seed=3),
            model=ModelSpec(name="DESAlign", hidden_dim=16, seed=5,
                            options={"propagation_iters": 3}),
            training=TrainingConfig(epochs=4, eval_every=2,
                                    early_stopping_patience=1,
                                    sampling="neighbour", fanouts=(4, None),
                                    candidates="ivf",
                                    ann=AnnConfig(n_clusters=4, nprobe=2),
                                    seed=3),
            decode=DecodeSpec(decode="blockwise", k=7, encode="sampled",
                              candidates="ivf", ann=AnnConfig(nprobe=1)),
        )
        restored = PipelineSpec.from_dict(spec.to_dict())
        assert restored == spec
        # tuples survive the JSON list round trip
        assert restored.training.fanouts == (4, None)
        assert isinstance(restored.training.ann, AnnConfig)

    def test_tuple_valued_options_round_trip(self):
        spec = PipelineSpec(model=ModelSpec(
            options={"modalities": ("graph", "relation")}))
        # options canonicalise to the JSON-native form at construction, so
        # equality holds through to_dict/from_dict and save/load alike.
        assert spec.model.options == {"modalities": ["graph", "relation"]}
        assert PipelineSpec.from_dict(spec.to_dict()) == spec

    def test_json_file_round_trip(self, tmp_path):
        spec = PipelineSpec(model=ModelSpec(hidden_dim=24))
        path = spec.to_json_file(tmp_path / "spec.json")
        assert PipelineSpec.from_json_file(path) == spec

    @pytest.mark.parametrize("path", GOLDEN_SPECS, ids=lambda p: p.stem)
    def test_golden_specs_load_validate_and_round_trip(self, path):
        spec = PipelineSpec.from_json_file(path)
        assert spec.validate() is spec
        assert PipelineSpec.from_dict(spec.to_dict()) == spec

    def test_golden_specs_exist(self):
        assert len(GOLDEN_SPECS) >= 2

    def test_partial_sections_take_defaults(self):
        spec = PipelineSpec.from_dict({"model": {"name": "EVA"}})
        assert spec.model.name == "EVA"
        assert spec.data == DataSpec()
        assert spec.training == TrainingConfig()
        assert spec.perturbation == PerturbationSpec()
        assert spec.perturbation.is_noop()

    def test_perturbation_section_round_trips(self):
        spec = PipelineSpec(perturbation=PerturbationSpec(
            modality_dropout=0.4, dropout_channels=["vision"],
            feature_noise=0.2, seed_noise=0.1, seed=9))
        restored = PipelineSpec.from_dict(spec.to_dict())
        assert restored == spec
        assert restored.perturbation.dropout_channels == ("vision",)
        assert not restored.perturbation.is_noop()

    def test_invalid_json_file_is_actionable(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            PipelineSpec.from_json_file(path)


class TestUnknownKeys:
    def test_unknown_top_level_key(self):
        with pytest.raises(ValueError, match=r"unknown top-level key\(s\) \['optimizer'\]"):
            PipelineSpec.from_dict({"optimizer": {}})

    def test_unknown_data_key_lists_valid_keys(self):
        with pytest.raises(ValueError, match="dataset_name.*valid keys.*dataset"):
            PipelineSpec.from_dict({"data": {"dataset_name": "FBDB15K"}})

    def test_unknown_training_key(self):
        with pytest.raises(ValueError, match=r"\['lr'\] in the 'training' section"):
            PipelineSpec.from_dict({"training": {"lr": 0.1}})

    def test_unknown_ann_key(self):
        with pytest.raises(ValueError, match="'decode.ann' section"):
            PipelineSpec.from_dict(
                {"decode": {"candidates": "ivf", "ann": {"nlist": 4}}})

    def test_non_dict_section(self):
        with pytest.raises(ValueError, match="'model' section must be a JSON object"):
            PipelineSpec.from_dict({"model": "DESAlign"})

    def test_unknown_perturbation_key(self):
        with pytest.raises(ValueError,
                           match=r"\['dropout'\] in the 'perturbation' section"):
            PipelineSpec.from_dict({"perturbation": {"dropout": 0.5}})


class TestValidation:
    """Every rejected combination, checked once against the single source."""

    def test_unknown_model_name(self):
        with pytest.raises(ValueError, match="unknown model 'Unregistered'"):
            PipelineSpec(model=ModelSpec(name="Unregistered")).validate()

    def test_unknown_dataset(self):
        with pytest.raises(ValueError, match="unknown dataset 'WN18'"):
            PipelineSpec(data=DataSpec(dataset="WN18")).validate()

    def test_decode_num_workers_must_be_positive(self):
        with pytest.raises(ValueError, match="num_workers"):
            DecodeSpec(num_workers=0)
        spec = PipelineSpec(decode=DecodeSpec(num_workers=4))
        assert PipelineSpec.from_dict(spec.to_dict()) == spec

    def test_ann_gather_and_slack_round_trip_and_validate(self):
        spec = PipelineSpec(decode=DecodeSpec(
            candidates="ivf",
            ann=AnnConfig(gather="bucket", adaptive_slack=0.25,
                          train_size=1000)))
        assert PipelineSpec.from_dict(spec.to_dict()) == spec
        with pytest.raises(ValueError, match="gather"):
            AnnConfig(gather="grouped")

    def test_csls_ranking_refuses_approximate_candidates(self):
        with pytest.raises(ValueError, match="CSLS"):
            PipelineSpec(decode=DecodeSpec(ranking="csls",
                                           candidates="ivf")).validate()

    def test_dense_decode_refuses_candidates(self):
        with pytest.raises(ValueError, match="incompatible with decode='dense'"):
            PipelineSpec(decode=DecodeSpec(decode="dense",
                                           candidates="lsh")).validate()

    def test_iterative_refuses_lsh(self):
        # TrainingConfig rejects this at construction (same rule function);
        # validate() covers the composed object too.
        with pytest.raises(ValueError, match="LSH"):
            PipelineSpec(training=TrainingConfig(iterative=True,
                                                 candidates="lsh")).validate()

    def test_patience_requires_cadence(self):
        with pytest.raises(ValueError, match="eval_every"):
            PipelineSpec(
                training=TrainingConfig(early_stopping_patience=2,
                                        eval_every=0)).validate()

    def test_neighbour_sampling_needs_capability(self):
        # MCLEA's intra-modal objectives keep it full-graph; GCN-align and
        # EVA gained the capability with the incremental subsystem.
        with pytest.raises(ValueError, match="does not support sampling='neighbour'"):
            PipelineSpec(model=ModelSpec(name="MCLEA"),
                         training=TrainingConfig(sampling="neighbour")).validate()

    def test_sampled_encode_needs_capability(self):
        with pytest.raises(ValueError, match="does not support encode='sampled'"):
            PipelineSpec(model=ModelSpec(name="TransE"),
                         decode=DecodeSpec(encode="sampled")).validate()

    def test_backend_mismatch_between_model_and_data(self):
        with pytest.raises(ValueError, match="contradicts data backend"):
            PipelineSpec(data=DataSpec(backend="sparse"),
                         model=ModelSpec(options={"backend": "dense"})).validate()

    def test_model_auto_backend_is_coherent(self):
        spec = PipelineSpec(data=DataSpec(backend="sparse"),
                            model=ModelSpec(options={"backend": "auto"}))
        assert spec.validate() is spec

    def test_bad_vocabulary_rejected_at_construction(self):
        with pytest.raises(ValueError, match="backend"):
            DataSpec(backend="cuda")
        with pytest.raises(ValueError, match="decode"):
            DecodeSpec(decode="streaming")
        with pytest.raises(ValueError, match="ranking"):
            DecodeSpec(ranking="euclidean")
        with pytest.raises(ValueError, match="candidate"):
            DecodeSpec(candidates="faiss")
        with pytest.raises(ValueError, match="ratio"):
            DataSpec(seed_ratio=1.5)
        with pytest.raises(ValueError, match="k must be positive"):
            DecodeSpec(k=0)

    def test_perturbation_rejects_bad_rates_and_channels(self):
        with pytest.raises(ValueError, match="modality_dropout"):
            PerturbationSpec(modality_dropout=1.5)
        with pytest.raises(ValueError, match="feature_noise"):
            PerturbationSpec(feature_noise=-0.1)
        with pytest.raises(ValueError, match="dropout_channels"):
            PerturbationSpec(modality_dropout=0.5,
                             dropout_channels=("graph",))
        with pytest.raises(ValueError, match="at least one dropout channel"):
            PerturbationSpec(modality_dropout=0.5, dropout_channels=())

    def test_custom_dataset_requires_a_pair(self):
        pipeline = AlignmentPipeline(PipelineSpec(data=DataSpec(dataset="custom")))
        with pytest.raises(ValueError, match="fit\\(pair"):
            pipeline.build_task()
