"""AlignmentPipeline facade: lifecycle, caching, persistence, legacy parity."""

import warnings

import numpy as np
import pytest

from repro.core import ann as ann_module
from repro.core.ann import AnnConfig
from repro.core.config import DESAlignConfig, TrainingConfig
from repro.core.model import DESAlign
from repro.core.task import prepare_task
from repro.core.trainer import Trainer
from repro.data.benchmarks import load_benchmark
from repro.kg import AlignmentPair, KGPair
from repro.pipeline import (
    Aligner,
    AlignmentPipeline,
    DataSpec,
    DecodeSpec,
    ModelSpec,
    PipelineSpec,
)


def small_spec(**decode_kwargs) -> PipelineSpec:
    return PipelineSpec(
        data=DataSpec(dataset="FBDB15K", num_entities=40, seed_ratio=0.3, seed=0),
        model=ModelSpec(name="DESAlign", hidden_dim=16,
                        options={"propagation_iters": 2}),
        training=TrainingConfig(epochs=2, eval_every=0, seed=0),
        decode=DecodeSpec(k=5, **decode_kwargs),
    )


@pytest.fixture(scope="module")
def fitted():
    return AlignmentPipeline.from_spec(small_spec()).fit()


class TestLifecycle:
    def test_fit_returns_populated_aligner(self, fitted):
        assert fitted.metrics is not None
        assert fitted.model is not None
        assert fitted.task is not None
        assert 0.0 <= fitted.metrics.hits_at_1 <= 1.0

    def test_align_shapes_and_ordering(self, fitted):
        table = fitted.align()
        n_source = fitted.task.source.num_entities
        assert table.target_ids.shape == (n_source, 5)
        assert table.scores.shape == (n_source, 5)
        # descending scores per row
        assert np.all(np.diff(table.scores, axis=1) <= 0)
        assert not table.approximate

    def test_align_k_override(self, fitted):
        assert fitted.align(k=3).target_ids.shape[1] == 3
        assert fitted.align(k=3).k == 3

    def test_rank_matches_align_rows(self, fitted):
        table = fitted.align()
        ranked = fitted.rank([2, 7, 11])
        assert np.array_equal(ranked.target_ids, table.target_ids[[2, 7, 11]])
        assert np.array_equal(ranked.source_ids, [2, 7, 11])

    def test_rank_rejects_out_of_range_ids(self, fitted):
        with pytest.raises(ValueError, match="entity ids must lie in"):
            fitted.rank([10_000])

    def test_evaluate_matches_fit_metrics(self, fitted):
        # fit() evaluated through the same decode spec; a repeated
        # evaluation of the unchanged model must agree.
        assert fitted.evaluate() == fitted.metrics

    def test_pairs_and_records_and_tsv(self, fitted):
        table = fitted.rank([0, 1], k=2)
        assert len(table.pairs()) == 2
        records = table.to_records()
        assert records[0]["source"] == 0 and len(records[0]["targets"]) == 2
        tsv = table.to_tsv()
        assert tsv.startswith("source\trank\ttarget\tscore")
        assert len(tsv.strip().splitlines()) == 1 + 2 * 2

    def test_with_decode_shares_model_but_not_caches(self, fitted):
        sibling = fitted.with_decode(DecodeSpec(k=5, use_propagation=False))
        assert sibling.model is fitted.model
        # different decode pipelines disagree somewhere
        assert sibling.spec.decode.use_propagation is False
        assert sibling.evaluate() is not None

    def test_fit_accepts_prepared_task(self):
        spec = small_spec()
        task = AlignmentPipeline.from_spec(spec).build_task()
        aligner = AlignmentPipeline.from_spec(spec).fit(task)
        assert aligner.task is task


class TestCaching:
    def test_topk_cached_per_k(self, fitted):
        assert fitted.topk(5) is fitted.topk(5)
        assert fitted.topk(5) is not fitted.topk(3)

    def test_decode_states_computed_once(self, fitted):
        first = fitted.decode_states()
        assert fitted.decode_states() is first

    def test_candidate_generation_runs_once_across_ks(self, monkeypatch):
        spec = small_spec(decode="blockwise", candidates="ivf",
                          ann=AnnConfig(n_clusters=6, nprobe=1))
        aligner = AlignmentPipeline.from_spec(spec).fit()
        calls = []
        original = ann_module.generate_candidates

        def counting(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        monkeypatch.setattr("repro.pipeline.facade.generate_candidates", counting)
        aligner.align(3)
        aligner.align(5)
        aligner.rank([0], k=2)
        assert len(calls) == 1  # the quantiser is fitted once and reused
        assert aligner.align(3).approximate

    def test_repeated_rank_reuses_candidate_slices(self, tmp_path):
        spec = small_spec(decode="blockwise", candidates="ivf",
                          ann=AnnConfig(n_clusters=6, nprobe=1))
        AlignmentPipeline.from_spec(spec).fit().save(tmp_path / "artifact")
        aligner = Aligner.load(tmp_path / "artifact")
        ids = [3, 9, 14]
        first = aligner.rank(ids, k=4)
        misses = aligner.candidate_slice_misses
        assert misses == len(ids)
        second = aligner.rank(ids, k=4)
        # the second identical call regenerated nothing: every padded
        # per-row candidate slice came from the cache
        assert aligner.candidate_slice_misses == misses
        assert aligner.candidate_slice_hits >= len(ids)
        assert np.array_equal(first.target_ids, second.target_ids)
        assert np.array_equal(first.scores, second.scores)
        # partial overlap only misses on the genuinely new rows
        aligner.rank([3, 9, 21], k=4)
        assert aligner.candidate_slice_misses == misses + 1

    def test_rank_rows_matches_full_align_on_restricted_artifact(self, tmp_path):
        spec = small_spec(decode="blockwise", candidates="ivf",
                          ann=AnnConfig(n_clusters=6, nprobe=1))
        AlignmentPipeline.from_spec(spec).fit().save(tmp_path / "artifact")
        aligner = Aligner.load(tmp_path / "artifact")
        ids = np.array([1, 17, 30])
        subset = aligner.rank(ids, k=5)   # decodes only the requested rows
        full = aligner.align(k=5)         # whole-corpus decode
        assert np.array_equal(subset.target_ids, full.target_ids[ids])
        assert np.array_equal(subset.scores, full.scores[ids])
        assert subset.approximate


class TestLegacyParity:
    def test_facade_metrics_equal_legacy_trainer_path(self):
        spec = small_spec()
        aligner = AlignmentPipeline.from_spec(spec).fit()

        pair = load_benchmark("FBDB15K", seed_ratio=0.3, num_entities=40)
        task = prepare_task(pair, structure_dim=16, seed=0, backend="dense")
        model = DESAlign(task, DESAlignConfig(hidden_dim=16, seed=0,
                                              propagation_iters=2))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            result = Trainer(model, task, spec.training).fit()
        assert result.metrics == aligner.metrics

    def test_facade_emits_no_deprecation_warnings(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            aligner = AlignmentPipeline.from_spec(small_spec()).fit()
            aligner.align()
            aligner.evaluate()


class TestPersistence:
    def test_save_load_decode_is_bit_identical(self, fitted, tmp_path):
        fitted.save(tmp_path / "artifact")
        loaded = Aligner.load(tmp_path / "artifact")
        original = fitted.align()
        restored = loaded.align()
        assert np.array_equal(original.target_ids, restored.target_ids)
        assert np.array_equal(original.scores, restored.scores)
        # at a different k as well — states are the persisted quantity
        assert np.array_equal(fitted.align(k=3).scores, loaded.align(k=3).scores)

    def test_load_is_lazy_for_pure_serving(self, fitted, tmp_path):
        fitted.save(tmp_path / "artifact")
        loaded = Aligner.load(tmp_path / "artifact")
        # align/rank serve from the persisted decode payloads without
        # regenerating the benchmark or building a model...
        loaded.align()
        assert loaded.model is None and loaded.task is None
        # ...and the model materialises on the first operation needing it.
        loaded.evaluate()
        assert loaded.model is not None

    def test_save_load_restores_model_parameters(self, fitted, tmp_path):
        fitted.save(tmp_path / "artifact")
        loaded = Aligner.load(tmp_path / "artifact")
        assert loaded._ensure_model()
        original_state = fitted.model.state_dict()
        restored_state = loaded.model.state_dict()
        assert set(original_state) == set(restored_state)
        for key, values in original_state.items():
            assert np.array_equal(values, restored_state[key]), key

    def test_load_rejects_artifact_with_missing_params(self, fitted, tmp_path):
        directory = fitted.save(tmp_path / "artifact")
        (directory / "params.npz").unlink()
        with pytest.raises(FileNotFoundError, match="incomplete"):
            Aligner.load(directory)

    def test_resave_of_unmaterialised_load_keeps_params(self, fitted, tmp_path):
        fitted.save(tmp_path / "first")
        loaded = Aligner.load(tmp_path / "first")
        loaded.save(tmp_path / "second")  # model never materialised
        again = Aligner.load(tmp_path / "second")
        assert again.evaluate() == fitted.metrics

    def test_loaded_aligner_evaluates(self, fitted, tmp_path):
        fitted.save(tmp_path / "artifact")
        loaded = Aligner.load(tmp_path / "artifact")
        assert loaded.evaluate() == fitted.metrics

    def test_ivf_artifact_round_trips_candidates(self, tmp_path):
        spec = small_spec(decode="blockwise", candidates="ivf",
                          ann=AnnConfig(n_clusters=6, nprobe=1))
        aligner = AlignmentPipeline.from_spec(spec).fit()
        aligner.save(tmp_path / "artifact")
        loaded = Aligner.load(tmp_path / "artifact")
        assert np.array_equal(aligner.align().scores, loaded.align().scores)
        assert loaded.align().approximate

    def test_custom_data_artifact_serves_without_model(self, tmp_path):
        rng = np.random.default_rng(0)
        pair = load_benchmark("FBDB15K", seed_ratio=0.3, num_entities=32)
        custom = KGPair(source=pair.source, target=pair.target,
                        alignments=[AlignmentPair(p.source, p.target)
                                    for p in pair.alignments],
                        seed_ratio=0.3, name="custom-demo")
        del rng
        spec = PipelineSpec(
            data=DataSpec(dataset="custom", num_entities=32, seed=0),
            model=ModelSpec(name="DESAlign", hidden_dim=16),
            training=TrainingConfig(epochs=1, eval_every=0, seed=0),
            decode=DecodeSpec(k=5),
        )
        aligner = AlignmentPipeline.from_spec(spec).fit(custom)
        aligner.save(tmp_path / "artifact")
        loaded = Aligner.load(tmp_path / "artifact")
        assert not loaded._ensure_model()  # custom data cannot be regenerated
        assert np.array_equal(loaded.align().scores, aligner.align().scores)
        metrics = loaded.evaluate()  # served from the cached decode
        assert 0.0 <= metrics.hits_at_1 <= 1.0
        # with_decode keeps the cached states when only ranking/k change,
        # so a model-less artifact still supports decode ablations.
        sibling = loaded.with_decode(DecodeSpec(k=3))
        assert np.array_equal(sibling.align().target_ids,
                              loaded.align(k=3).target_ids)

    def test_mmap_load_is_bit_identical_and_reuses_extraction(
            self, fitted, tmp_path):
        directory = fitted.save(tmp_path / "artifact")
        mapped = Aligner.load(directory, mmap=True)
        # decode states are served from read-only memory maps ...
        states = mapped.decode_states()
        assert all(isinstance(state, np.memmap)
                   for side in states for state in side)
        assert all(not state.flags.writeable
                   for side in states for state in side)
        # ... and every decode agrees bit for bit with the in-memory load
        plain = Aligner.load(directory)
        assert np.array_equal(mapped.align().scores, plain.align().scores)
        assert np.array_equal(mapped.rank([0, 5]).scores,
                              plain.rank([0, 5]).scores)
        # v2 maps the store's .npy files natively — no extraction cache
        assert not (directory / ".mmap_cache").exists()
        # v1 artifacts unpack decode.npz once and reuse the extraction
        # (stamp unchanged on the second mapped load)
        legacy = fitted.save(tmp_path / "legacy", format_version=1)
        legacy_mapped = Aligner.load(legacy, mmap=True)
        assert np.array_equal(legacy_mapped.align().scores,
                              plain.align().scores)
        stamp = legacy / ".mmap_cache" / "source.stamp"
        token = stamp.read_text()
        again = Aligner.load(legacy, mmap=True)
        assert stamp.read_text() == token
        assert np.array_equal(again.align().scores, plain.align().scores)

    def test_decode_fingerprint_tracks_the_spec(self, fitted, tmp_path):
        directory = fitted.save(tmp_path / "artifact")
        loaded = Aligner.load(directory)
        assert loaded.decode_fingerprint() == fitted.decode_fingerprint()
        sibling = fitted.with_decode(DecodeSpec(k=5, use_propagation=False))
        assert sibling.decode_fingerprint() != fitted.decode_fingerprint()

    def test_load_rejects_missing_and_foreign_directories(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="spec.json"):
            Aligner.load(tmp_path / "missing")

    def test_load_rejects_unknown_format_version(self, fitted, tmp_path):
        import json
        directory = fitted.save(tmp_path / "artifact")
        payload = json.loads((directory / "spec.json").read_text())
        payload["format_version"] = 99
        (directory / "spec.json").write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="format_version"):
            Aligner.load(directory)


class TestRegistryExtension:
    def test_registered_model_plugs_into_the_facade(self):
        from repro.core.registries import MODEL_REGISTRY, _MODEL_INFO, register_model
        from repro.baselines import EVA, BaselineConfig

        @register_model("TestEVA")
        class _TestEVA(EVA):
            def __init__(self, task, hidden_dim=32, seed=0):
                super().__init__(task, BaselineConfig(hidden_dim=hidden_dim,
                                                      seed=seed))

        try:
            spec = PipelineSpec(
                data=DataSpec(dataset="FBDB15K", num_entities=32, seed_ratio=0.3),
                model=ModelSpec(name="TestEVA", hidden_dim=16),
                training=TrainingConfig(epochs=1, eval_every=0),
                decode=DecodeSpec(k=3, use_propagation=False),
            )
            aligner = AlignmentPipeline.from_spec(spec).fit()
            assert isinstance(aligner.model, _TestEVA)
            assert aligner.align().target_ids.shape[1] == 3
        finally:
            MODEL_REGISTRY.pop("TestEVA", None)
            _MODEL_INFO.pop("TestEVA", None)
