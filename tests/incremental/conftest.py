"""Shared fixtures: one fitted IVF artifact the ingestion tests warm-start.

Every mutating test loads its own :class:`IncrementalAligner` from the
persisted artifact, so ingests never leak extended models or tasks across
tests.
"""

import pytest

from repro.core.ann import AnnConfig
from repro.core.config import TrainingConfig
from repro.pipeline import (AlignmentPipeline, DataSpec, DecodeSpec,
                            ModelSpec, PipelineSpec)


def incremental_spec(**decode_kwargs) -> PipelineSpec:
    decode_kwargs.setdefault("candidates", "ivf")
    decode_kwargs.setdefault("ann", AnnConfig(n_clusters=4, nprobe=2))
    return PipelineSpec(
        data=DataSpec(dataset="FBDB15K", num_entities=80, backend="dense",
                      seed=1),
        model=ModelSpec(name="DESAlign", hidden_dim=16, seed=2,
                        options={"propagation_iters": 2}),
        training=TrainingConfig(epochs=2, eval_every=0, seed=3),
        decode=DecodeSpec(k=5, **decode_kwargs),
    )


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    """A fitted DESAlign + IVF artifact directory."""
    root = tmp_path_factory.mktemp("incremental-artifact")
    aligner = AlignmentPipeline.from_spec(incremental_spec()).fit()
    aligner.save(root / "base")
    return root / "base"
