"""IncrementalAligner: warm-start ingestion against from-scratch oracles."""

from dataclasses import replace

import numpy as np
import pytest

from repro.core.ann import AnnConfig
from repro.core.similarity import blockwise_topk
from repro.incremental import DeltaBatch, IncrementalAligner, SideDelta
from repro.pipeline import (Aligner, AlignmentPipeline, CUSTOM_DATASET,
                            DeltaSpec)

from conftest import incremental_spec


def growth_delta(task, num_source=4, num_target=3, seed_pair=True):
    n_s = task.source.num_entities
    n_t = task.target.num_entities
    return DeltaBatch(
        source=SideDelta(
            entity_names=[f"s-new-{i}" for i in range(num_source)],
            relation_triples=[(n_s, 0, 1), (n_s + 1, 1, 5)],
        ),
        target=SideDelta(
            entity_names=[f"t-new-{i}" for i in range(num_target)],
            relation_triples=[(n_t, 2, 3)],
        ),
        seed_pairs=[(n_s, n_t)] if seed_pair else (),
    )


class TestNoOp:
    def test_empty_delta_is_bit_exact_noop(self, artifact):
        inc = IncrementalAligner.from_artifact(artifact)
        before = inc.aligner
        report = inc.ingest(DeltaBatch())
        assert report.noop
        assert report.aligner is before
        assert report.generation == 0
        assert report.rows_encoded == 0 and report.rows_decoded == 0
        assert inc.generation == 0


class TestIngestExactness:
    def test_table_matches_full_decode_over_maintained_candidates(self,
                                                                  artifact):
        inc = IncrementalAligner.from_artifact(artifact)
        report = inc.ingest(growth_delta(inc.task))
        table = report.aligner.topk(5)
        src_states, tgt_states = report.aligner.decode_states()
        oracle = blockwise_topk(src_states, tgt_states, k=5,
                                row_candidates=inc._candidates)
        assert np.array_equal(table.indices, oracle.indices)
        assert np.array_equal(table.scores, oracle.scores)
        assert table.approximate
        assert table.shape == (src_states[0].shape[0], tgt_states[0].shape[0])

    def test_warm_encode_matches_full_reencode(self, artifact):
        """Warm states agree with a from-scratch re-encode.

        The artifact decodes with ``encode="full"`` (one whole-graph
        forward) while the warm path runs the subgraph forward, which sums
        the same terms in a different order — so re-encoded rows agree to
        float ulps, and rows outside the receptive field are bit-identical.
        """
        inc = IncrementalAligner.from_artifact(artifact)
        report = inc.ingest(growth_delta(inc.task))
        warm_src, warm_tgt = report.aligner.decode_states()
        fresh = Aligner(report.aligner.spec, task=report.aligner.task,
                        model=inc.model)
        full_src, full_tgt = fresh.decode_states()
        assert len(warm_src) == len(full_src)
        for warm, full in zip(warm_src + warm_tgt, full_src + full_tgt):
            warm, full = np.asarray(warm), np.asarray(full)
            assert np.allclose(warm, full, rtol=0.0, atol=1e-12)
            identical = np.all(warm == full, axis=1)
            # the difference is localised to the delta's receptive field
            assert identical.sum() > len(identical) // 2

    def test_warm_encode_bit_exact_under_sampled_encode(self, artifact):
        """With ``encode="sampled"`` both paths run the identical kernel."""
        base = Aligner.load(artifact)
        sampled = base.with_decode(replace(base.spec.decode,
                                           encode="sampled"))
        inc = IncrementalAligner(sampled)
        report = inc.ingest(growth_delta(inc.task))
        warm_src, warm_tgt = report.aligner.decode_states()
        fresh = Aligner(report.aligner.spec, task=report.aligner.task,
                        model=inc.model)
        full_src, full_tgt = fresh.decode_states()
        for warm, full in zip(warm_src + warm_tgt, full_src + full_tgt):
            assert np.array_equal(np.asarray(warm), np.asarray(full))

    def test_second_ingest_is_proportional(self, artifact):
        inc = IncrementalAligner.from_artifact(artifact)
        first = inc.ingest(growth_delta(inc.task))
        n_s = inc.task.source.num_entities
        small = DeltaBatch(source=SideDelta(
            entity_names=["late"], relation_triples=[(n_s, 0, 2)]))
        second = inc.ingest(small)
        assert second.generation == 2
        assert second.num_new_source == 1 and second.num_new_target == 0
        # a one-entity delta re-encodes / re-decodes a strict subset
        assert 0 < second.rows_encoded < first.rows_encoded
        assert 0 < second.rows_decoded < inc.task.source.num_entities
        assert inc.total_rows_decoded == (first.rows_decoded
                                          + second.rows_decoded)
        table = second.aligner.topk(5)
        src_states, tgt_states = second.aligner.decode_states()
        oracle = blockwise_topk(src_states, tgt_states, k=5,
                                row_candidates=inc._candidates)
        assert np.array_equal(table.indices, oracle.indices)
        assert np.array_equal(table.scores, oracle.scores)

    def test_refit_threshold_triggers_requantisation(self, artifact):
        inc = IncrementalAligner.from_artifact(
            artifact, delta_spec=DeltaSpec(refit_threshold=1e-6))
        report = inc.ingest(growth_delta(inc.task))
        assert report.refit
        assert inc.total_refits == 1
        # post-refit candidates + table still agree with a full decode
        table = report.aligner.topk(5)
        src_states, tgt_states = report.aligner.decode_states()
        oracle = blockwise_topk(src_states, tgt_states, k=5,
                                row_candidates=inc._candidates)
        assert np.array_equal(table.indices, oracle.indices)
        assert np.array_equal(table.scores, oracle.scores)

    def test_seed_pairs_extend_train_split(self, artifact):
        inc = IncrementalAligner.from_artifact(artifact)
        n_before = len(inc.task.train_pairs)
        report = inc.ingest(growth_delta(inc.task, seed_pair=True))
        assert len(report.aligner.task.train_pairs) == n_before + 1
        assert np.array_equal(report.aligner.task.test_pairs,
                              inc.aligner.task.test_pairs)


class TestExhaustiveFallback:
    def test_exhaustive_decode_re_decodes_in_full(self, artifact):
        base = Aligner.load(artifact)
        exhaustive = base.with_decode(
            replace(base.spec.decode, candidates="exhaustive"))
        inc = IncrementalAligner(exhaustive)
        report = inc.ingest(growth_delta(inc.task))
        assert report.rows_decoded == report.aligner.task.source.num_entities
        table = report.aligner.topk(5)
        assert not table.approximate
        src_states, tgt_states = report.aligner.decode_states()
        oracle = blockwise_topk(src_states, tgt_states, k=5)
        assert np.array_equal(table.indices, oracle.indices)
        assert np.array_equal(table.scores, oracle.scores)


class TestArtifactRoundTrip:
    def test_ingest_persists_a_promotable_artifact(self, artifact, tmp_path):
        inc = IncrementalAligner.from_artifact(artifact)
        report = inc.ingest(growth_delta(inc.task),
                            directory=tmp_path / "updated")
        loaded = Aligner.load(tmp_path / "updated")
        # the promoted spec is flipped to the custom dataset so load never
        # regenerates the (smaller) benchmark task around the parameters
        assert loaded.spec.data.dataset == CUSTOM_DATASET
        table = loaded.topk(5)
        assert np.array_equal(table.indices, report.aligner.topk(5).indices)
        assert np.array_equal(table.scores, report.aligner.topk(5).scores)
        ranked = loaded.rank([0, 1], 5)
        assert ranked.target_ids.shape == (2, 5)
        # custom-dataset artifacts drop the model, so they cannot seed
        # another incremental chain
        with pytest.raises(ValueError, match="custom-dataset"):
            IncrementalAligner(loaded)


class TestRejections:
    def test_lsh_candidates_rejected(self, artifact):
        base = Aligner.load(artifact)
        lsh = base.with_decode(replace(base.spec.decode, candidates="lsh"))
        with pytest.raises(ValueError, match="no centroid structure"):
            IncrementalAligner(lsh)

    def test_exact_escalation_rejected(self, artifact):
        base = Aligner.load(artifact)
        escalated = base.with_decode(replace(
            base.spec.decode,
            ann=AnnConfig(n_clusters=4, nprobe=2, exact_escalation=True)))
        with pytest.raises(ValueError, match="exact-escalation"):
            IncrementalAligner(escalated)

    def test_propagation_average_false_rejected(self):
        spec = incremental_spec()
        spec = spec.with_overrides(model=replace(
            spec.model, options={"propagation_iters": 1,
                                 "propagation_average": False}))
        aligner = AlignmentPipeline.from_spec(spec).fit()
        with pytest.raises(ValueError, match="propagation_average"):
            IncrementalAligner(aligner)
