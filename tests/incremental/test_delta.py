"""DeltaBatch serialisation and place-preserving task extension."""

import numpy as np
import pytest

from repro.core.task import prepare_task
from repro.data.synthetic import SyntheticPairConfig, generate_pair
from repro.incremental import DeltaBatch, SideDelta, apply_delta


def _growth_delta(task, num_source=2, num_target=1):
    """A small delta touching both sides of ``task``."""
    n_s = task.source.num_entities
    n_t = task.target.num_entities
    return DeltaBatch(
        source=SideDelta(
            entity_names=[f"src-new-{i}" for i in range(num_source)],
            relation_triples=[(n_s, 0, 1), (n_s + num_source - 1, 1, 3)],
            attribute_triples=[(n_s, 0, "fresh")],
        ),
        target=SideDelta(
            entity_names=[f"tgt-new-{i}" for i in range(num_target)],
            relation_triples=[(n_t, 0, 2)],
        ),
        seed_pairs=[(n_s, n_t)],
    )


class TestSerialisation:
    def test_round_trip_preserves_everything(self, tiny_task, tmp_path):
        delta = _growth_delta(tiny_task)
        delta.source.image_features[0] = np.arange(4, dtype=np.float64)
        loaded = DeltaBatch.load(delta.save(tmp_path / "delta.json"))
        assert loaded.source.entity_names == delta.source.entity_names
        assert loaded.source.relation_triples == delta.source.relation_triples
        assert loaded.source.attribute_triples == delta.source.attribute_triples
        assert set(loaded.source.image_features) == {0}
        assert np.array_equal(loaded.source.image_features[0],
                              delta.source.image_features[0])
        assert loaded.target.entity_names == delta.target.entity_names
        assert loaded.seed_pairs == delta.seed_pairs

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown key"):
            DeltaBatch.from_dict({"source": {}, "extra": 1})
        with pytest.raises(ValueError, match="unknown key"):
            SideDelta.from_dict({"entity_name": ["typo"]})

    def test_invalid_json_is_actionable(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            DeltaBatch.load(path)

    def test_is_empty(self):
        assert DeltaBatch().is_empty()
        assert not DeltaBatch(seed_pairs=[(0, 0)]).is_empty()
        assert not DeltaBatch(
            source=SideDelta(entity_names=["x"])).is_empty()


class TestApplyDelta:
    def test_place_preserving_extension(self, tiny_task):
        delta = _growth_delta(tiny_task, num_source=2, num_target=1)
        app = apply_delta(tiny_task, delta, seed=5)
        task = app.task
        n_s, n_t = app.num_source_before, app.num_target_before
        assert task.source.num_entities == n_s + 2
        assert task.target.num_entities == n_t + 1
        assert np.array_equal(app.new_source_ids, [n_s, n_s + 1])
        assert np.array_equal(app.new_target_ids, [n_t])
        # existing entity ids/names are untouched; new ones append
        assert task.pair.source.entity_names[:n_s] == \
            tiny_task.pair.source.entity_names
        assert task.pair.source.entity_names[n_s:] == ["src-new-0",
                                                       "src-new-1"]
        # the input task itself is never mutated
        assert tiny_task.source.num_entities == n_s
        assert len(tiny_task.pair.source.relation_triples) < \
            len(task.pair.source.relation_triples)

    def test_untouched_feature_rows_bit_identical(self, tiny_task):
        delta = _growth_delta(tiny_task)
        app = apply_delta(tiny_task, delta, seed=5)
        n_s = app.num_source_before
        touched = set(app.touched_source.tolist())
        untouched = [row for row in range(n_s) if row not in touched]
        assert untouched, "delta should leave most rows untouched"
        for modality in ("graph", "relation", "attribute", "vision"):
            old = tiny_task.source.features.features[modality]
            new = app.task.source.features.features[modality]
            assert np.array_equal(old[untouched], new[untouched]), modality

    def test_still_imputed_rows_keep_their_values(self):
        pair = generate_pair(SyntheticPairConfig(
            num_entities=30, num_communities=3, seed=11,
            image_coverage_source=0.3, image_coverage_target=0.3,
            seed_ratio=0.3, name="missing"))
        task = prepare_task(pair, relation_dim=8, attribute_dim=8,
                            structure_dim=8, seed=3)
        imputed = np.flatnonzero(~task.source.features.masks["vision"])
        assert len(imputed), "fixture must have imputed vision rows"
        app = apply_delta(task, _growth_delta(task), seed=5)
        old = task.source.features.features["vision"][imputed]
        new = app.task.source.features.features["vision"][imputed]
        assert np.array_equal(old, new)

    def test_split_stability_and_seed_pairs_extend_train_only(self, tiny_task):
        delta = _growth_delta(tiny_task)
        app = apply_delta(tiny_task, delta, seed=5)
        n_s = app.num_source_before
        n_t = app.num_target_before
        assert np.array_equal(app.task.test_pairs, tiny_task.test_pairs)
        assert np.array_equal(app.task.train_pairs[:-1], tiny_task.train_pairs)
        assert tuple(app.task.train_pairs[-1]) == (n_s, n_t)
        # the extended pair's cached split is carried over, not re-drawn
        train, test = app.task.pair.split()
        assert [(p.source, p.target) for p in test] == \
            [(p.source, p.target) for p in tiny_task.pair.split()[1]]
        assert (train[-1].source, train[-1].target) == (n_s, n_t)

    def test_touched_rows_cover_new_edges_endpoints(self, tiny_task):
        delta = _growth_delta(tiny_task)
        app = apply_delta(tiny_task, delta, seed=5)
        # triples (n_s, 0, 1) and (n_s+1, 1, 3) touch old entities 1 and 3
        assert {1, 3} <= set(app.touched_source.tolist())
        assert 2 in set(app.touched_target.tolist())
        seed_rows = app.seed_rows("source")
        assert set(app.new_source_ids.tolist()) <= set(seed_rows.tolist())
        assert set(app.touched_source.tolist()) <= set(seed_rows.tolist())

    def test_empty_delta_reproduces_task_bit_for_bit(self, tiny_task):
        app = apply_delta(tiny_task, DeltaBatch(), seed=99)
        assert app.task.source.num_entities == tiny_task.source.num_entities
        assert len(app.seed_rows("source")) == 0
        assert len(app.seed_rows("target")) == 0
        for side in ("source", "target"):
            old_side = getattr(tiny_task, side)
            new_side = getattr(app.task, side)
            for modality, values in old_side.features.features.items():
                assert np.array_equal(values,
                                      new_side.features.features[modality])
            assert np.array_equal(np.asarray(old_side.adjacency),
                                  np.asarray(new_side.adjacency))

    def test_out_of_range_references_rejected(self, tiny_task):
        n_s = tiny_task.source.num_entities
        bad = DeltaBatch(source=SideDelta(
            relation_triples=[(n_s + 5, 0, 0)]))
        with pytest.raises(ValueError, match="outside the extended range"):
            apply_delta(tiny_task, bad)
        bad = DeltaBatch(source=SideDelta(
            attribute_triples=[(n_s, 0, "v")]))
        with pytest.raises(ValueError, match="outside the extended range"):
            apply_delta(tiny_task, bad)
        bad = DeltaBatch(target=SideDelta(
            image_features={tiny_task.target.num_entities: np.ones(4)}))
        with pytest.raises(ValueError, match="outside the extended range"):
            apply_delta(tiny_task, bad)

    def test_vocabulary_growth(self, tiny_task):
        n_r = tiny_task.pair.source.num_relations
        delta = DeltaBatch(source=SideDelta(
            entity_names=["n"],
            relation_triples=[(tiny_task.source.num_entities, n_r + 2, 0)]))
        app = apply_delta(tiny_task, delta)
        assert app.task.pair.source.num_relations == n_r + 3
