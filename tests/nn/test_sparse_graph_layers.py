"""Sparse/dense equivalence of the graph layers (GCN via spmm, edge-list GAT)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.autograd import Tensor, check_gradients
from repro.kg.laplacian import normalized_adjacency
from repro.kg.sparse import normalized_adjacency_sparse
from repro.nn import GAT, GATLayer, GCN, GCNLayer


@pytest.fixture
def adjacency():
    rng = np.random.default_rng(3)
    n = 12
    matrix = np.zeros((n, n))
    for _ in range(26):
        i, j = rng.integers(0, n, 2)
        if i != j:
            matrix[i, j] = matrix[j, i] = 1.0
    return matrix


@pytest.fixture
def features(adjacency):
    return np.random.default_rng(4).normal(size=(adjacency.shape[0], 8))


def _parameter_grads(module):
    return [parameter.grad.copy() if parameter.grad is not None else None
            for parameter in module.parameters()]


class TestGCNSparse:
    def test_forward_matches_dense(self, adjacency, features):
        gcn = GCN(8, 2, np.random.default_rng(0))
        dense_norm = normalized_adjacency(adjacency)
        sparse_norm = normalized_adjacency_sparse(sp.csr_matrix(adjacency))
        out_dense = gcn(Tensor(features), dense_norm)
        out_sparse = gcn(Tensor(features), sparse_norm)
        assert np.allclose(out_dense.numpy(), out_sparse.numpy(), atol=1e-12)

    def test_gradients_match_dense(self, adjacency, features):
        gcn = GCN(8, 2, np.random.default_rng(0))
        dense_norm = normalized_adjacency(adjacency)
        sparse_norm = normalized_adjacency_sparse(sp.csr_matrix(adjacency))
        (gcn(Tensor(features), dense_norm) ** 2.0).sum().backward()
        grads_dense = _parameter_grads(gcn)
        for parameter in gcn.parameters():
            parameter.zero_grad()
        (gcn(Tensor(features), sparse_norm) ** 2.0).sum().backward()
        for dense_grad, sparse_grad in zip(grads_dense, _parameter_grads(gcn)):
            assert np.allclose(dense_grad, sparse_grad, atol=1e-10)

    def test_layer_gradcheck_through_spmm(self, adjacency, features):
        layer = GCNLayer(8, 4, np.random.default_rng(1))
        sparse_norm = normalized_adjacency_sparse(sp.csr_matrix(adjacency))
        x = Tensor(features, requires_grad=True)

        def objective(inputs):
            return (layer(inputs[0], sparse_norm) ** 2.0).sum()

        check_gradients(objective, [x, layer.weight, layer.bias], atol=1e-4)


class TestGATSparse:
    def test_layer_forward_matches_dense(self, adjacency, features):
        layer = GATLayer(8, 8, 2, np.random.default_rng(2))
        out_dense = layer(Tensor(features), adjacency)
        out_sparse = layer(Tensor(features), sp.csr_matrix(adjacency))
        assert np.allclose(out_dense.numpy(), out_sparse.numpy(), atol=1e-9)

    def test_stack_forward_matches_dense(self, adjacency, features):
        gat = GAT(8, 2, 2, np.random.default_rng(5))
        out_dense = gat(Tensor(features), adjacency)
        out_sparse = gat(Tensor(features), sp.csr_matrix(adjacency))
        assert np.allclose(out_dense.numpy(), out_sparse.numpy(), atol=1e-9)

    def test_gradients_match_dense(self, adjacency, features):
        gat = GAT(8, 2, 2, np.random.default_rng(5))
        x_dense = Tensor(features, requires_grad=True)
        x_sparse = Tensor(features, requires_grad=True)
        (gat(x_dense, adjacency) ** 2.0).sum().backward()
        grads_dense = _parameter_grads(gat)
        for parameter in gat.parameters():
            parameter.zero_grad()
        (gat(x_sparse, sp.csr_matrix(adjacency)) ** 2.0).sum().backward()
        assert np.allclose(x_dense.grad, x_sparse.grad, atol=1e-8)
        for dense_grad, sparse_grad in zip(grads_dense, _parameter_grads(gat)):
            assert np.allclose(dense_grad, sparse_grad, atol=1e-8)

    def test_attention_rows_sum_to_one_implicitly(self, adjacency, features):
        # Constant features make every neighbour score equal, so the output
        # of one head is the neighbourhood mean of the transformed features.
        layer = GATLayer(8, 4, 1, np.random.default_rng(6))
        constant = np.ones((adjacency.shape[0], 8))
        out = layer(Tensor(constant), sp.csr_matrix(adjacency)).numpy()
        transformed = constant @ layer._head_weight(0).numpy()
        assert np.allclose(out, transformed, atol=1e-9)

    def test_edge_gradcheck(self, adjacency, features):
        layer = GATLayer(8, 4, 2, np.random.default_rng(7))
        sparse_adjacency = sp.csr_matrix(adjacency)
        x = Tensor(features, requires_grad=True)

        def objective(inputs):
            return (layer(inputs[0], sparse_adjacency) ** 2.0).sum()

        check_gradients(objective, [x] + list(layer.parameters()), atol=1e-4)
