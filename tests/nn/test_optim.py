"""Tests for optimisers, schedules, clipping and early stopping."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import (
    Adam,
    AdamW,
    CosineWarmupSchedule,
    EarlyStopping,
    GradientClipper,
    Parameter,
    SGD,
)


def _quadratic_step(parameter, optimizer):
    """One optimisation step of f(w) = ||w||^2 / 2."""
    optimizer.zero_grad()
    loss = (parameter * parameter).sum() * 0.5
    loss.backward()
    optimizer.step()
    return loss.item()


class TestSGD:
    def test_moves_against_gradient(self):
        parameter = Parameter(np.array([1.0, -2.0]))
        SGD([parameter], lr=0.1).step.__self__  # noqa: B018 - silence lint on attribute access
        optimizer = SGD([parameter], lr=0.1)
        _quadratic_step(parameter, optimizer)
        assert np.allclose(parameter.numpy(), [0.9, -1.8])

    def test_momentum_accelerates(self):
        plain = Parameter(np.array([1.0]))
        with_momentum = Parameter(np.array([1.0]))
        plain_opt = SGD([plain], lr=0.05)
        momentum_opt = SGD([with_momentum], lr=0.05, momentum=0.9)
        for _ in range(20):
            _quadratic_step(plain, plain_opt)
            _quadratic_step(with_momentum, momentum_opt)
        assert abs(with_momentum.item()) < abs(plain.item())

    def test_rejects_non_positive_lr(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.ones(1))], lr=0.0)


class TestAdamFamily:
    def test_adam_converges_on_quadratic(self):
        parameter = Parameter(np.array([3.0, -4.0]))
        optimizer = Adam([parameter], lr=0.2)
        for _ in range(200):
            _quadratic_step(parameter, optimizer)
        assert np.allclose(parameter.numpy(), 0.0, atol=1e-2)

    def test_adam_skips_parameters_without_grad(self):
        used = Parameter(np.array([1.0]))
        unused = Parameter(np.array([5.0]))
        optimizer = Adam([used, unused], lr=0.1)
        _quadratic_step(used, optimizer)
        assert np.allclose(unused.numpy(), [5.0])

    def test_adamw_decays_weights_decoupled(self):
        parameter = Parameter(np.array([1.0]))
        optimizer = AdamW([parameter], lr=0.0001, weight_decay=0.5)
        # Gradient of a constant loss is zero, so only weight decay acts.
        optimizer.zero_grad()
        loss = (parameter * 0.0).sum()
        loss.backward()
        optimizer.step()
        assert parameter.item() < 1.0

    def test_adamw_converges(self):
        parameter = Parameter(np.array([2.0]))
        optimizer = AdamW([parameter], lr=0.2, weight_decay=0.01)
        for _ in range(100):
            _quadratic_step(parameter, optimizer)
        assert abs(parameter.item()) < 5e-2


class TestCosineWarmupSchedule:
    def test_warmup_then_decay(self):
        parameter = Parameter(np.ones(1))
        optimizer = Adam([parameter], lr=1.0)
        schedule = CosineWarmupSchedule(optimizer, total_steps=100, warmup_fraction=0.1)
        lrs = [schedule.step() for _ in range(100)]
        assert lrs[0] < lrs[9]                       # warming up
        assert abs(lrs[9] - 1.0) < 1e-6              # reaches base lr
        assert lrs[-1] < lrs[20]                     # decays afterwards
        assert lrs[-1] >= 0.0

    def test_rejects_bad_total_steps(self):
        with pytest.raises(ValueError):
            CosineWarmupSchedule(Adam([Parameter(np.ones(1))], lr=0.1), total_steps=0)


class TestGradientClipper:
    def test_clips_large_gradients(self):
        parameter = Parameter(np.ones(4))
        parameter.grad = np.full(4, 10.0)
        clipper = GradientClipper(max_norm=1.0)
        norm = clipper.clip([parameter])
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(parameter.grad) == pytest.approx(1.0)

    def test_leaves_small_gradients_alone(self):
        parameter = Parameter(np.ones(4))
        parameter.grad = np.full(4, 0.1)
        GradientClipper(max_norm=5.0).clip([parameter])
        assert np.allclose(parameter.grad, 0.1)

    def test_rejects_non_positive_norm(self):
        with pytest.raises(ValueError):
            GradientClipper(0.0)


class TestEarlyStopping:
    def test_stops_after_patience_without_improvement(self):
        stopper = EarlyStopping(patience=2, mode="max")
        assert stopper.update(0.5)
        assert not stopper.update(0.4)
        assert not stopper.update(0.45)
        assert stopper.should_stop

    def test_improvement_resets_counter(self):
        stopper = EarlyStopping(patience=2, mode="max")
        stopper.update(0.5)
        stopper.update(0.4)
        assert stopper.update(0.6)
        assert not stopper.should_stop

    def test_min_mode(self):
        stopper = EarlyStopping(patience=1, mode="min")
        stopper.update(1.0)
        assert stopper.update(0.5)
        assert not stopper.update(0.7)
        assert stopper.should_stop

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            EarlyStopping(mode="sideways")
