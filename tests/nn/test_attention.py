"""Tests for the cross-modal attention block (CAW, Eq. 9-13)."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import CrossModalAttentionBlock, MultiHeadCrossModalAttention


@pytest.fixture
def rng():
    return np.random.default_rng(13)


@pytest.fixture
def modal_stack(rng):
    # 7 entities, 4 modalities, 8 hidden dims.
    return Tensor(rng.normal(size=(7, 4, 8)), requires_grad=True)


class TestMultiHeadCrossModalAttention:
    def test_output_shapes(self, rng, modal_stack):
        attention = MultiHeadCrossModalAttention(8, num_heads=2, rng=rng)
        attended, confidences = attention(modal_stack)
        assert attended.shape == (7, 4, 8)
        assert confidences.shape == (7, 4)

    def test_confidences_are_a_distribution(self, rng, modal_stack):
        attention = MultiHeadCrossModalAttention(8, num_heads=1, rng=rng)
        _, confidences = attention(modal_stack)
        values = confidences.numpy()
        assert np.allclose(values.sum(axis=1), 1.0, atol=1e-8)
        assert np.all(values > 0)

    def test_rejects_indivisible_heads(self, rng):
        with pytest.raises(ValueError):
            MultiHeadCrossModalAttention(10, num_heads=4, rng=rng)

    def test_entities_are_independent(self, rng):
        attention = MultiHeadCrossModalAttention(4, num_heads=1, rng=rng)
        base_stack = np.random.default_rng(0).normal(size=(3, 2, 4))
        base, _ = attention(Tensor(base_stack))
        perturbed_stack = base_stack.copy()
        perturbed_stack[2] += 5.0
        perturbed, _ = attention(Tensor(perturbed_stack))
        assert np.allclose(base.numpy()[:2], perturbed.numpy()[:2], atol=1e-10)

    def test_gradients_flow_to_inputs_and_parameters(self, rng, modal_stack):
        attention = MultiHeadCrossModalAttention(8, num_heads=2, rng=rng)
        attended, confidences = attention(modal_stack)
        (attended.sum() + confidences.sum()).backward()
        assert modal_stack.grad is not None
        for _, param in attention.named_parameters():
            assert param.grad is not None

    def test_informative_modality_receives_more_attention(self, rng):
        # A modality identical across entities carries no alignment signal,
        # but attention mass is still a valid distribution; we only check
        # the weights differ across modalities for asymmetric inputs.
        attention = MultiHeadCrossModalAttention(4, num_heads=1, rng=rng)
        stack = np.zeros((5, 3, 4))
        stack[:, 0, :] = rng.normal(size=(5, 4)) * 5.0
        stack[:, 1, :] = 0.01
        stack[:, 2, :] = rng.normal(size=(5, 4))
        _, confidences = attention(Tensor(stack))
        values = confidences.numpy()
        assert values.std() > 0


class TestCrossModalAttentionBlock:
    def test_block_output_shapes(self, rng, modal_stack):
        block = CrossModalAttentionBlock(8, num_heads=2, hidden=16, rng=rng)
        fused, confidences = block(modal_stack)
        assert fused.shape == (7, 4, 8)
        assert confidences.shape == (7, 4)

    def test_residual_connection_present(self, rng):
        # With all attention/FFN weights zeroed, the block reduces to
        # LayerNorm applied twice to the input (residual paths dominate).
        block = CrossModalAttentionBlock(4, num_heads=1, hidden=8, rng=rng)
        for _, param in block.attention.named_parameters():
            param.data[:] = 0.0
        block.feed_forward.inner.weight.data[:] = 0.0
        block.feed_forward.outer.weight.data[:] = 0.0
        x = np.random.default_rng(1).normal(size=(2, 3, 4))
        fused, _ = block(Tensor(x))
        assert np.isfinite(fused.numpy()).all()
        # Output must still depend on the input through the residual path
        # (LayerNorm is affine-invariant, so perturb with non-affine noise).
        fused_other, _ = block(Tensor(x + np.random.default_rng(2).normal(size=x.shape)))
        assert not np.allclose(fused.numpy(), fused_other.numpy())

    def test_training_gradients(self, rng, modal_stack):
        block = CrossModalAttentionBlock(8, num_heads=1, hidden=16, rng=rng)
        fused, _ = block(modal_stack)
        fused.sum().backward()
        for _, param in block.named_parameters():
            assert param.grad is not None
