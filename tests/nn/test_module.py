"""Tests for the Module / Parameter system."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import Linear, Module, ModuleDict, ModuleList, Parameter, Sequential, ReLU


class TinyModel(Module):
    def __init__(self, rng):
        super().__init__()
        self.first = Linear(4, 3, rng)
        self.second = Linear(3, 2, rng)
        self.scale = Parameter(np.ones(2))

    def forward(self, x):
        return self.second(self.first(x).relu()) * self.scale


@pytest.fixture
def model():
    return TinyModel(np.random.default_rng(0))


class TestParameterRegistration:
    def test_parameters_are_collected_recursively(self, model):
        names = dict(model.named_parameters())
        assert "first.weight" in names
        assert "first.bias" in names
        assert "second.weight" in names
        assert "scale" in names

    def test_num_parameters_counts_scalars(self, model):
        expected = 4 * 3 + 3 + 3 * 2 + 2 + 2
        assert model.num_parameters() == expected

    def test_parameters_require_grad(self, model):
        assert all(p.requires_grad for p in model.parameters())

    def test_modules_iterates_children(self, model):
        assert len(list(model.modules())) == 3


class TestModesAndGradients:
    def test_train_eval_toggles_flag(self, model):
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad_clears_all(self, model):
        out = model(Tensor(np.ones((5, 4)))).sum()
        out.backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())

    def test_backward_reaches_every_parameter(self, model):
        model(Tensor(np.random.default_rng(1).normal(size=(5, 4)))).sum().backward()
        for name, param in model.named_parameters():
            assert param.grad is not None, name


class TestStateDict:
    def test_roundtrip(self, model):
        state = model.state_dict()
        clone = TinyModel(np.random.default_rng(42))
        clone.load_state_dict(state)
        for (_, a), (_, b) in zip(model.named_parameters(), clone.named_parameters()):
            assert np.allclose(a.numpy(), b.numpy())

    def test_state_dict_is_a_copy(self, model):
        state = model.state_dict()
        state["scale"][:] = 99.0
        assert not np.allclose(model.scale.numpy(), 99.0)

    def test_load_rejects_missing_keys(self, model):
        state = model.state_dict()
        state.pop("scale")
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_load_rejects_bad_shapes(self, model):
        state = model.state_dict()
        state["scale"] = np.ones(5)
        with pytest.raises(ValueError):
            model.load_state_dict(state)


class TestContainers:
    def test_module_list_registers_items(self):
        rng = np.random.default_rng(0)
        layers = ModuleList([Linear(2, 2, rng), Linear(2, 2, rng)])
        assert len(layers) == 2
        assert len(list(layers[0].named_parameters())) == 2
        parent = Module()
        parent.layers = layers
        assert len(parent.parameters()) == 4

    def test_module_dict_lookup(self):
        rng = np.random.default_rng(0)
        container = ModuleDict({"a": Linear(2, 3, rng)})
        container["b"] = Linear(3, 2, rng)
        assert "a" in container and "b" in container
        assert set(container.keys()) == {"a", "b"}

    def test_sequential_applies_in_order(self):
        rng = np.random.default_rng(0)
        seq = Sequential(Linear(3, 3, rng), ReLU(), Linear(3, 1, rng))
        out = seq(Tensor(np.ones((2, 3))))
        assert out.shape == (2, 1)
        assert len(seq) == 3

    def test_containers_cannot_be_called(self):
        with pytest.raises(RuntimeError):
            ModuleList([])()
        with pytest.raises(RuntimeError):
            ModuleDict({})()
