"""Tests for Linear, DiagonalLinear, LayerNorm, Dropout, FeedForward and init."""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients
from repro.nn import (
    DiagonalLinear,
    Dropout,
    FeedForward,
    LayerNorm,
    Linear,
    init,
)


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestLinear:
    def test_output_shape(self, rng):
        layer = Linear(5, 3, rng)
        assert layer(Tensor(np.zeros((4, 5)))).shape == (4, 3)

    def test_no_bias_option(self, rng):
        layer = Linear(5, 3, rng, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_matches_manual_computation(self, rng):
        layer = Linear(3, 2, rng)
        x = rng.normal(size=(4, 3))
        expected = x @ layer.weight.numpy() + layer.bias.numpy()
        assert np.allclose(layer(Tensor(x)).numpy(), expected)

    def test_gradcheck(self, rng):
        layer = Linear(3, 2, rng)
        x = Tensor(rng.normal(size=(4, 3)), requires_grad=True)

        def fn(_):
            return (layer(x) ** 2).sum()

        assert check_gradients(fn, [x, layer.weight, layer.bias])


class TestDiagonalLinear:
    def test_is_elementwise_scaling(self):
        layer = DiagonalLinear(4)
        layer.weight.data = np.array([1.0, 2.0, 3.0, 4.0])
        x = np.ones((2, 4))
        assert np.allclose(layer(Tensor(x)).numpy(), x * layer.weight.numpy())

    def test_parameter_count_is_linear_in_dim(self):
        assert DiagonalLinear(300).num_parameters() == 300


class TestLayerNorm:
    def test_output_statistics(self, rng):
        layer = LayerNorm(16)
        x = Tensor(rng.normal(3.0, 5.0, size=(8, 16)))
        out = layer(x).numpy()
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-6)

    def test_gradcheck(self, rng):
        layer = LayerNorm(5)
        x = Tensor(rng.normal(size=(3, 5)), requires_grad=True)

        def fn(_):
            return (layer(x) ** 2).sum()

        assert check_gradients(fn, [x, layer.gain, layer.bias])


class TestDropout:
    def test_respects_training_flag(self, rng):
        layer = Dropout(0.9, rng)
        layer.eval()
        x = Tensor(np.ones((10, 10)))
        assert np.allclose(layer(x).numpy(), 1.0)

    def test_drops_units_when_training(self, rng):
        layer = Dropout(0.5, rng)
        layer.train()
        out = layer(Tensor(np.ones((50, 50)))).numpy()
        assert (out == 0).any()


class TestFeedForward:
    def test_preserves_shape(self, rng):
        block = FeedForward(8, 16, rng)
        assert block(Tensor(np.zeros((5, 8)))).shape == (5, 8)

    def test_residual_path_keeps_information(self, rng):
        block = FeedForward(8, 16, rng)
        # Zero out the inner weights: output must reduce to LayerNorm(x).
        block.inner.weight.data[:] = 0.0
        block.inner.bias.data[:] = 0.0
        block.outer.weight.data[:] = 0.0
        block.outer.bias.data[:] = 0.0
        x = rng.normal(size=(3, 8))
        out = block(Tensor(x)).numpy()
        centred = (x - x.mean(axis=-1, keepdims=True))
        expected = centred / np.sqrt(x.var(axis=-1, keepdims=True) + 1e-5)
        assert np.allclose(out, expected, atol=1e-6)

    def test_gradients_flow_to_all_parameters(self, rng):
        block = FeedForward(6, 12, rng)
        block(Tensor(rng.normal(size=(4, 6)))).sum().backward()
        for name, param in block.named_parameters():
            assert param.grad is not None, name


class TestInitialisers:
    def test_glorot_uniform_bounds(self, rng):
        weights = init.glorot_uniform(rng, 100, 100)
        limit = np.sqrt(6.0 / 200)
        assert weights.shape == (100, 100)
        assert np.all(np.abs(weights) <= limit)

    def test_glorot_normal_std(self, rng):
        weights = init.glorot_normal(rng, 400, 400)
        assert abs(weights.std() - np.sqrt(2.0 / 800)) < 5e-3

    def test_kaiming_uniform_scale_depends_on_fan_in(self, rng):
        narrow = init.kaiming_uniform(rng, 10, 5)
        wide = init.kaiming_uniform(rng, 1000, 5)
        assert np.abs(narrow).max() > np.abs(wide).max()

    def test_zeros_and_ones(self):
        assert np.all(init.zeros((3, 3)) == 0)
        assert np.all(init.ones((2,)) == 1)
