"""Tests for the GAT and GCN graph encoders."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.kg.laplacian import normalized_adjacency
from repro.nn import GAT, GATLayer, GCN, GCNLayer, Parameter


@pytest.fixture
def rng():
    return np.random.default_rng(5)


@pytest.fixture
def chain_adjacency():
    """A 6-node chain graph."""
    adjacency = np.zeros((6, 6))
    for i in range(5):
        adjacency[i, i + 1] = adjacency[i + 1, i] = 1.0
    return adjacency


class TestGATLayer:
    def test_output_shape(self, rng, chain_adjacency):
        layer = GATLayer(8, 8, num_heads=2, rng=rng)
        out = layer(Tensor(rng.normal(size=(6, 8))), chain_adjacency)
        assert out.shape == (6, 8)

    def test_rejects_indivisible_heads(self, rng):
        with pytest.raises(ValueError):
            GATLayer(8, 6, num_heads=4, rng=rng)

    def test_attention_respects_adjacency(self, rng):
        # Two disconnected components: changing features in one component
        # must not change outputs in the other.
        adjacency = np.zeros((4, 4))
        adjacency[0, 1] = adjacency[1, 0] = 1.0
        adjacency[2, 3] = adjacency[3, 2] = 1.0
        layer = GATLayer(4, 4, num_heads=1, rng=rng)
        features = rng.normal(size=(4, 4))
        base = layer(Tensor(features), adjacency).numpy()
        perturbed = features.copy()
        perturbed[2:] += 10.0
        changed = layer(Tensor(perturbed), adjacency).numpy()
        assert np.allclose(base[:2], changed[:2], atol=1e-8)
        assert not np.allclose(base[2:], changed[2:])

    def test_isolated_node_attends_to_itself(self, rng):
        adjacency = np.zeros((3, 3))
        layer = GATLayer(4, 4, num_heads=1, rng=rng)
        features = rng.normal(size=(3, 4))
        out = layer(Tensor(features), adjacency).numpy()
        expected = features @ layer._head_weight(0).numpy()
        assert np.allclose(out, expected, atol=1e-8)

    def test_gradients_flow(self, rng, chain_adjacency):
        layer = GATLayer(4, 4, num_heads=2, rng=rng)
        features = Tensor(rng.normal(size=(6, 4)), requires_grad=True)
        layer(features, chain_adjacency).sum().backward()
        assert features.grad is not None
        for _, param in layer.named_parameters():
            assert param.grad is not None


class TestGAT:
    def test_stacked_output_shape(self, rng, chain_adjacency):
        encoder = GAT(8, num_layers=2, num_heads=2, rng=rng)
        out = encoder(Tensor(rng.normal(size=(6, 8))), chain_adjacency)
        assert out.shape == (6, 8)

    def test_has_diagonal_transform(self, rng):
        encoder = GAT(8, num_layers=2, num_heads=2, rng=rng)
        assert encoder.diagonal.weight.size == 8

    def test_parameters_update_structure_embedding_gradient(self, rng, chain_adjacency):
        encoder = GAT(4, num_layers=2, num_heads=1, rng=rng)
        structure = Parameter(rng.normal(size=(6, 4)))
        encoder(structure, chain_adjacency).sum().backward()
        assert structure.grad is not None


class TestGCN:
    def test_layer_matches_manual_propagation(self, rng, chain_adjacency):
        layer = GCNLayer(4, 4, rng)
        normalised = normalized_adjacency(chain_adjacency)
        features = rng.normal(size=(6, 4))
        expected = normalised @ features @ layer.weight.numpy() + layer.bias.numpy()
        assert np.allclose(layer(Tensor(features), normalised).numpy(), expected)

    def test_stack_shapes_and_gradients(self, rng, chain_adjacency):
        encoder = GCN(4, num_layers=3, rng=rng)
        normalised = normalized_adjacency(chain_adjacency)
        features = Tensor(rng.normal(size=(6, 4)), requires_grad=True)
        out = encoder(features, normalised)
        assert out.shape == (6, 4)
        out.sum().backward()
        assert features.grad is not None

    def test_propagation_mixes_neighbour_information(self, rng, chain_adjacency):
        encoder = GCN(4, num_layers=1, rng=rng)
        normalised = normalized_adjacency(chain_adjacency)
        features = np.zeros((6, 4))
        features[0] = 1.0
        out = encoder(Tensor(features), normalised).numpy()
        # Node 1 is adjacent to node 0 and must receive a non-zero signal.
        assert np.abs(out[1]).sum() > 0
        # Node 5 is three hops away; one propagation step cannot reach it.
        assert np.allclose(out[5], encoder.layers[0].bias.numpy(), atol=1e-8)
