"""Tests for the baseline model zoo and its shared interface."""

import numpy as np
import pytest

from repro.baselines import (
    EVA,
    GCNAlign,
    MCLEA,
    MEAformer,
    MODEL_REGISTRY,
    PoE,
    TransE,
    BaselineConfig,
    build_model,
)
from repro.core import Trainer, TrainingConfig
from repro.eval import Evaluator


ALL_BASELINE_NAMES = ("TransE", "GCN-align", "PoE", "EVA", "MCLEA", "MEAformer")


class TestRegistry:
    def test_registry_contains_every_paper_row_we_implement(self):
        assert set(MODEL_REGISTRY) == {"TransE", "GCN-align", "PoE", "EVA",
                                       "MCLEA", "MEAformer", "DESAlign"}

    def test_build_model_unknown_name(self, tiny_task):
        with pytest.raises(KeyError):
            build_model("UnknownAligner", tiny_task)

    @pytest.mark.parametrize("name", ALL_BASELINE_NAMES)
    def test_build_every_registered_model(self, name, tiny_task):
        model = build_model(name, tiny_task)
        assert model.num_parameters() > 0


class TestBaselineConfig:
    def test_rejects_bad_gnn(self):
        with pytest.raises(ValueError):
            BaselineConfig(gnn="transformer")

    def test_rejects_unknown_modality(self):
        with pytest.raises(ValueError):
            BaselineConfig(modalities=("graph", "audio"))

    def test_rejects_non_positive_hidden(self):
        with pytest.raises(ValueError):
            BaselineConfig(hidden_dim=0)


class TestAlignerInterface:
    @pytest.mark.parametrize("name", ALL_BASELINE_NAMES)
    def test_loss_is_finite_scalar(self, name, tiny_task):
        model = build_model(name, tiny_task)
        seeds = tiny_task.seed_arrays()
        loss = model.loss(seeds[0], seeds[1])
        value = loss.total.item() if hasattr(loss, "total") else loss.item()
        assert np.isfinite(value)

    @pytest.mark.parametrize("name", ALL_BASELINE_NAMES)
    def test_similarity_shape_and_finiteness(self, name, tiny_task):
        model = build_model(name, tiny_task)
        similarity = model.similarity()
        assert similarity.shape == (tiny_task.source.num_entities,
                                    tiny_task.target.num_entities)
        assert np.isfinite(similarity).all()

    @pytest.mark.parametrize("name", ALL_BASELINE_NAMES)
    def test_gradients_flow_to_all_parameters(self, name, tiny_task):
        model = build_model(name, tiny_task)
        seeds = tiny_task.seed_arrays()
        loss = model.loss(seeds[0], seeds[1])
        total = loss.total if hasattr(loss, "total") else loss
        total.backward()
        missing = [param_name for param_name, param in model.named_parameters()
                   if param.grad is None]
        assert not missing, f"{name} has unused parameters: {missing}"


class TestModelSpecificBehaviour:
    def test_gcn_align_uses_structure_only(self, tiny_task):
        model = GCNAlign(tiny_task)
        assert model.config.modalities == ("graph",)

    def test_poe_has_no_gnn(self, tiny_task):
        model = PoE(tiny_task)
        assert model.gnn is None

    def test_eva_and_mclea_expose_global_modality_weights(self, tiny_task):
        for cls in (EVA, MCLEA):
            model = cls(tiny_task)
            weights = model.global_modality_weights().numpy()
            assert weights.shape == (4,)
            assert np.allclose(weights.sum(), 1.0)

    def test_meaformer_confidences_are_per_entity(self, tiny_task):
        model = MEAformer(tiny_task)
        _, _, confidences = model._encode("source")
        assert confidences.shape == (tiny_task.source.num_entities, 4)
        assert np.allclose(confidences.numpy().sum(axis=1), 1.0, atol=1e-8)

    def test_transe_embeds_relations_of_both_graphs(self, tiny_task):
        model = TransE(tiny_task, hidden_dim=16)
        assert model.source_relations.shape[0] == tiny_task.pair.source.num_relations
        assert model.target_relations.shape[0] == tiny_task.pair.target.num_relations

    def test_transe_triple_loss_respects_margin(self, tiny_task):
        model = TransE(tiny_task, hidden_dim=16, margin=1.0)
        loss = model._triple_loss(model.source_entities, model.source_relations,
                                  model._source_triples)
        assert loss.item() >= 0


class TestTrainingBehaviour:
    @pytest.mark.parametrize("name", ["EVA", "MCLEA", "MEAformer"])
    def test_short_training_improves_over_untrained(self, name, tiny_task):
        evaluator = Evaluator(tiny_task)
        untrained = build_model(name, tiny_task)
        before = evaluator.evaluate_model(untrained)
        model = build_model(name, tiny_task)
        Trainer(model, tiny_task, TrainingConfig(epochs=25, eval_every=0, seed=0)).fit()
        after = evaluator.evaluate_model(model)
        assert after.mrr > before.mrr

    def test_baselines_work_with_iterative_trainer(self, tiny_task):
        model = build_model("EVA", tiny_task)
        config = TrainingConfig(epochs=10, eval_every=0, iterative=True,
                                iterative_rounds=1, iterative_epochs=5, seed=0)
        result = Trainer(model, tiny_task, config).fit()
        assert len(result.history.pseudo_pairs) == 1


class TestNeighbourSampling:
    """GCN-based baselines share the neighbour-sampled encoder path."""

    @pytest.mark.parametrize("name", ["GCN-align", "EVA"])
    def test_full_fanout_sampled_encode_matches_full(self, name, tiny_task):
        model = build_model(name, tiny_task)
        for side in ("source", "target"):
            full = model.joint_embedding(side).numpy()
            sampled = model.encode_entities_sampled(side, batch_size=7)
            np.testing.assert_allclose(sampled, full, rtol=0, atol=1e-12)

    @pytest.mark.parametrize("name", ["GCN-align", "EVA"])
    def test_full_fanout_subgraph_loss_matches_full(self, name, tiny_task):
        model = build_model(name, tiny_task)
        source_index, target_index = tiny_task.seed_arrays()
        source_view = model.neighbour_sampler("source").sample(source_index)
        target_view = model.neighbour_sampler("target").sample(target_index)
        sampled = model.subgraph_loss(source_view, target_view,
                                      source_index, target_index)
        full = model.loss(source_index, target_index)
        np.testing.assert_allclose(sampled.item(), full.item(), rtol=0, atol=1e-12)

    @pytest.mark.parametrize("name", ["GCN-align", "EVA"])
    def test_sampled_decode_states_match_full(self, name, tiny_task):
        model = build_model(name, tiny_task)
        [full_src], [full_tgt] = model.decode_states()
        [src], [tgt] = model.decode_states(encode="sampled", encode_batch_size=9)
        np.testing.assert_allclose(src, full_src, rtol=0, atol=1e-12)
        np.testing.assert_allclose(tgt, full_tgt, rtol=0, atol=1e-12)

    @pytest.mark.parametrize("name", ["GCN-align", "EVA"])
    def test_neighbour_sampled_training_runs(self, name, tiny_task):
        model = build_model(name, tiny_task)
        config = TrainingConfig(epochs=2, eval_every=0, sampling="neighbour",
                                fanouts=(3, 3), batch_size=8, seed=0)
        result = Trainer(model, tiny_task, config).fit()
        assert np.isfinite(result.history.losses).all()

    def test_registry_capability_flags(self):
        from repro.core.registries import model_supports_sampling
        for name in ("GCN-align", "EVA", "DESAlign"):
            assert model_supports_sampling(name)
        for name in ("TransE", "PoE", "MCLEA", "MEAformer"):
            assert not model_supports_sampling(name)

    def test_entity_coupled_baselines_refuse_sampled_encode(self, tiny_task):
        model = build_model("MCLEA", tiny_task)
        with pytest.raises(NotImplementedError, match="joint_from_modal"):
            model.encode_entities_sampled("source")

    def test_gnn_free_baseline_refuses_sampler(self, tiny_task):
        model = PoE(tiny_task, BaselineConfig(gnn="none", modalities=("graph",)))
        with pytest.raises(ValueError, match="no structural GNN"):
            model.neighbour_sampler("source")
