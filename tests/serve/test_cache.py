"""ResultCache: LRU order, eviction accounting, admission, invalidation."""

import threading

import pytest

from repro.serve import FrequencySketch, ResultCache


class TestLRU:
    def test_eviction_follows_recency_order(self):
        cache = ResultCache(max_entries=3)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert cache.get("a") == 1          # refresh a: b is now least recent
        cache.put("d", 4)
        assert cache.keys() == ["c", "a", "d"]
        assert cache.get("b") is None
        assert cache.evictions == 1

    def test_put_refreshes_existing_key(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)                  # refresh, not insert
        cache.put("c", 3)                   # evicts b, not a
        assert cache.get("a") == 10
        assert cache.get("b") is None
        assert len(cache) == 2

    def test_counters_and_hit_rate(self):
        cache = ResultCache(max_entries=4)
        cache.put("x", 1)
        assert cache.get("x") == 1
        assert cache.get("y") is None
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        assert stats["entries"] == 1

    def test_clear_reports_dropped_entries(self):
        cache = ResultCache(max_entries=8)
        for index in range(5):
            cache.put(index, index)
        assert cache.clear() == 5
        assert len(cache) == 0
        assert cache.get(0) is None         # post-clear lookups miss

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError, match="positive"):
            ResultCache(max_entries=0)

    def test_rejects_unknown_admission_policy(self):
        with pytest.raises(ValueError, match="admission"):
            ResultCache(max_entries=4, admission="random")

    def test_concurrent_access_is_consistent(self):
        cache = ResultCache(max_entries=64)
        errors = []

        def worker(base):
            try:
                for index in range(200):
                    key = (base + index) % 100
                    cache.put(key, key)
                    value = cache.get(key)
                    assert value is None or value == key
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(base,))
                   for base in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 64


class TestFrequencySketch:
    def test_estimates_track_touch_counts(self):
        sketch = FrequencySketch(width=256, depth=4)
        for _ in range(7):
            sketch.touch("hot")
        sketch.touch("cold")
        assert sketch.estimate("hot") >= 7
        assert sketch.estimate("cold") >= 1
        assert sketch.estimate("hot") > sketch.estimate("cold")
        assert sketch.estimate("never-seen") == 0

    def test_aging_halves_counters(self):
        sketch = FrequencySketch(width=64, depth=2, sample_size=10)
        for _ in range(9):
            sketch.touch("key")
        assert sketch.estimate("key") == 9
        sketch.touch("key")                  # 10th touch triggers halving
        assert sketch.estimate("key") == 5

    def test_deterministic_under_seed(self):
        def estimates(seed):
            sketch = FrequencySketch(width=128, depth=4, seed=seed)
            for index in range(50):
                sketch.touch(index % 10)
            return [sketch.estimate(index) for index in range(10)]

        assert estimates(0) == estimates(0)

    def test_rejects_non_positive_dimensions(self):
        with pytest.raises(ValueError, match="positive"):
            FrequencySketch(width=0)


def _hot_hits_after_churn(admission: str) -> tuple[int, ResultCache]:
    """Warm 8 hot keys, churn 200 one-shot keys, count surviving hot keys."""
    cache = ResultCache(max_entries=8, admission=admission)
    hot = [f"hot-{index}" for index in range(8)]
    for _ in range(10):
        for key in hot:
            if cache.get(key) is None:
                cache.put(key, key)
    # Adversarial one-shot churn: every key is seen exactly once, the
    # access pattern a pure-LRU cache is worst at.
    for index in range(200):
        key = f"cold-{index}"
        cache.get(key)
        cache.put(key, index)
    return sum(cache.get(key) is not None for key in hot), cache


class TestFrequencyAdmission:
    def test_hot_keys_survive_one_shot_churn(self):
        """The regression this policy exists for: under adversarial
        one-shot churn the sketch-gated cache keeps the hot working set
        resident while the plain-LRU baseline loses all of it."""
        lru_hits, lru_cache = _hot_hits_after_churn("lru")
        sketch_hits, sketch_cache = _hot_hits_after_churn("frequency")
        assert lru_hits == 0                     # LRU washes the hot set out
        assert sketch_hits == 8                  # the gate keeps it resident
        assert sketch_cache.rejections > 0
        assert (sketch_cache.stats()["hit_rate"]
                > lru_cache.stats()["hit_rate"])

    def test_genuinely_popular_new_key_is_admitted(self):
        cache = ResultCache(max_entries=4, admission="frequency")
        for index in range(4):
            for _ in range(5):
                if cache.get(index) is None:
                    cache.put(index, index)
        # A key hotter than the LRU victim passes the gate...
        for _ in range(8):
            cache.get("riser")
        cache.put("riser", "value")
        assert cache.get("riser") == "value"
        assert len(cache) == 4                   # ...displacing the victim

    def test_refreshing_resident_keys_is_always_allowed(self):
        cache = ResultCache(max_entries=2, admission="frequency")
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)                       # refresh despite full cache
        assert cache.get("a") == 10
        assert cache.rejections == 0

    def test_admission_below_capacity_is_unconditional(self):
        cache = ResultCache(max_entries=16, admission="frequency")
        for index in range(10):
            cache.put(index, index)
        assert len(cache) == 10 and cache.rejections == 0

    def test_stats_report_policy_and_rejections(self):
        cache = ResultCache(max_entries=4, admission="frequency")
        stats = cache.stats()
        assert stats["admission"] == "frequency"
        assert stats["rejections"] == 0
