"""ResultCache: LRU order, eviction accounting, invalidation."""

import threading

import pytest

from repro.serve import ResultCache


class TestLRU:
    def test_eviction_follows_recency_order(self):
        cache = ResultCache(max_entries=3)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert cache.get("a") == 1          # refresh a: b is now least recent
        cache.put("d", 4)
        assert cache.keys() == ["c", "a", "d"]
        assert cache.get("b") is None
        assert cache.evictions == 1

    def test_put_refreshes_existing_key(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)                  # refresh, not insert
        cache.put("c", 3)                   # evicts b, not a
        assert cache.get("a") == 10
        assert cache.get("b") is None
        assert len(cache) == 2

    def test_counters_and_hit_rate(self):
        cache = ResultCache(max_entries=4)
        cache.put("x", 1)
        assert cache.get("x") == 1
        assert cache.get("y") is None
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        assert stats["entries"] == 1

    def test_clear_reports_dropped_entries(self):
        cache = ResultCache(max_entries=8)
        for index in range(5):
            cache.put(index, index)
        assert cache.clear() == 5
        assert len(cache) == 0
        assert cache.get(0) is None         # post-clear lookups miss

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError, match="positive"):
            ResultCache(max_entries=0)

    def test_concurrent_access_is_consistent(self):
        cache = ResultCache(max_entries=64)
        errors = []

        def worker(base):
            try:
                for index in range(200):
                    key = (base + index) % 100
                    cache.put(key, key)
                    value = cache.get(key)
                    assert value is None or value == key
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(base,))
                   for base in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 64
