"""Shared fixtures: one tiny fitted artifact pair for the serving tests.

Two artifacts are saved from differently-seeded fits of the same spec, so
hot-swap tests can tell exactly which artifact answered a request (their
decode outputs differ).  Both use IVF candidates — the serving fast path
the micro-batcher amortises.
"""

import numpy as np
import pytest

from repro.core.ann import AnnConfig
from repro.core.config import TrainingConfig
from repro.pipeline import (
    Aligner,
    AlignmentPipeline,
    DataSpec,
    DecodeSpec,
    ModelSpec,
    PipelineSpec,
)


def serving_spec(training_seed: int = 0, **decode_kwargs) -> PipelineSpec:
    decode_kwargs.setdefault("decode", "blockwise")
    decode_kwargs.setdefault("candidates", "ivf")
    decode_kwargs.setdefault("ann", AnnConfig(n_clusters=6, nprobe=1))
    return PipelineSpec(
        data=DataSpec(dataset="FBDB15K", num_entities=40, seed_ratio=0.3, seed=0),
        model=ModelSpec(name="DESAlign", hidden_dim=16,
                        options={"propagation_iters": 2}),
        training=TrainingConfig(epochs=2, eval_every=0, seed=training_seed),
        decode=DecodeSpec(k=5, **decode_kwargs),
    )


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    """(v1_dir, v2_dir, v1_expected, v2_expected) — expected = full align."""
    root = tmp_path_factory.mktemp("serving-artifacts")
    v1 = AlignmentPipeline.from_spec(serving_spec(training_seed=0)).fit()
    v2 = AlignmentPipeline.from_spec(serving_spec(training_seed=1)).fit()
    v1.save(root / "v1")
    v2.save(root / "v2")
    v1_expected = Aligner.load(root / "v1").align(k=5)
    v2_expected = Aligner.load(root / "v2").align(k=5)
    assert not np.array_equal(v1_expected.scores, v2_expected.scores), \
        "hot-swap tests need distinguishable artifacts"
    return root / "v1", root / "v2", v1_expected, v2_expected
