"""ServingEngine semantics: bit-identity, caching, timeouts, hot-swap."""

import threading
import time

import numpy as np
import pytest

from repro.pipeline import Aligner
from repro.serve import (
    MicroBatcher,
    ServingEngine,
    ServingError,
    ServingTimeout,
    WorkerPool,
)


@pytest.fixture()
def engine(artifacts):
    v1, _, _, _ = artifacts
    engine = ServingEngine.from_artifact(v1, mmap=True, batch_window=0.002,
                                         max_batch=64, pool_size=2,
                                         cache_size=256)
    yield engine
    engine.close()


class TestBitIdentity:
    def test_micro_batched_equals_sequential(self, artifacts, engine):
        v1, _, expected, _ = artifacts
        sequential = Aligner.load(v1)
        errors = []

        def client(index):
            try:
                ids = [(index * 5 + offset) % 40 for offset in range(3)]
                served = engine.rank(ids, 5, timeout=30)
                direct = sequential.rank(ids, 5)
                assert np.array_equal(served.target_ids, direct.target_ids)
                assert np.array_equal(served.scores, direct.scores)
                assert np.array_equal(served.target_ids, expected.target_ids[ids])
                assert np.array_equal(served.scores, expected.scores[ids])
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=client, args=(index,))
                   for index in range(32)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors[:3]
        stats = engine.stats()
        # coalescing actually happened: fewer batches than requests
        assert stats["batches"] < stats["requests"]

    def test_cache_served_results_are_bit_identical(self, artifacts, engine):
        _, _, expected, _ = artifacts
        ids = [4, 9, 21]
        first = engine.rank(ids, 5)
        before = engine.stats()
        second = engine.rank(ids, 5)
        after = engine.stats()
        assert np.array_equal(first.target_ids, second.target_ids)
        assert np.array_equal(first.scores, second.scores)
        assert np.array_equal(second.scores, expected.scores[ids])
        # the repeat was answered from the cache, without a decode
        assert after["cache_only_requests"] == before["cache_only_requests"] + 1
        assert after["decoded_rows"] == before["decoded_rows"]

    def test_mixed_k_requests_in_one_window(self, artifacts, engine):
        _, _, expected, _ = artifacts
        table3 = engine.rank([1, 2], 3)
        table5 = engine.rank([1, 2], 5)
        assert table3.k == 3 and table5.k == 5
        assert np.array_equal(table5.scores, expected.scores[[1, 2]])
        assert np.array_equal(table3.scores, expected.scores[[1, 2], :3])


class TestValidationAndErrors:
    def test_out_of_range_is_structured_bad_request(self, engine):
        with pytest.raises(ServingError) as info:
            engine.rank([10_000], 5)
        assert info.value.code == "bad_request"

    def test_empty_request_rejected(self, engine):
        with pytest.raises(ServingError, match="non-empty"):
            engine.rank([], 5)

    def test_non_positive_k_rejected(self, engine):
        with pytest.raises(ServingError, match="k must be positive"):
            engine.rank([1], 0)

    def test_timeout_is_structured_and_worker_survives(self, artifacts, engine):
        _, _, expected, _ = artifacts
        # Stall the decoder so the deadline passes while the batch waits.
        original = Aligner.rank_rows
        release = threading.Event()

        def stalled(self, entity_ids, k=None):
            release.wait(5.0)
            return original(self, entity_ids, k)

        Aligner.rank_rows = stalled
        try:
            with pytest.raises(ServingTimeout) as info:
                engine.rank([30], 5, timeout=0.05)
            assert info.value.code == "timeout"
        finally:
            release.set()
            Aligner.rank_rows = original
        # The worker survived the abandoned batch and still serves.
        table = engine.rank([31], 5, timeout=30)
        assert np.array_equal(table.scores, expected.scores[[31]])
        assert engine.stats()["timeouts"] == 1

    def test_decode_exception_fails_requests_not_workers(self, artifacts,
                                                         engine):
        _, _, expected, _ = artifacts
        original = Aligner.rank_rows

        def broken(self, entity_ids, k=None):
            raise RuntimeError("injected decode failure")

        Aligner.rank_rows = broken
        try:
            with pytest.raises(ServingError) as info:
                engine.rank([32], 5, timeout=30)
            assert info.value.code == "internal"
        finally:
            Aligner.rank_rows = original
        table = engine.rank([33], 5, timeout=30)
        assert np.array_equal(table.scores, expected.scores[[33]])

    def test_closed_engine_refuses_requests(self, artifacts):
        v1, _, _, _ = artifacts
        engine = ServingEngine.from_artifact(v1)
        engine.close()
        with pytest.raises(ServingError) as info:
            engine.rank([0], 5)
        assert info.value.code == "shutdown"
        engine.close()  # idempotent


class TestHotSwap:
    def test_swap_switches_results_and_evicts_cache(self, artifacts):
        v1, v2, expected1, expected2 = artifacts
        with ServingEngine.from_artifact(v1, batch_window=0.001) as engine:
            before = engine.rank([5, 6], 5)
            assert np.array_equal(before.scores, expected1.scores[[5, 6]])
            assert len(engine._cache) > 0
            info = engine.swap_artifact(v2)
            assert info["generation"] == 2
            assert info["evicted"] > 0
            assert len(engine._cache) == 0
            after = engine.rank([5, 6], 5)
            assert np.array_equal(after.scores, expected2.scores[[5, 6]])
            assert engine.stats()["swaps"] == 1

    def test_concurrent_swap_never_serves_torn_results(self, artifacts):
        v1, v2, expected1, expected2 = artifacts
        with ServingEngine.from_artifact(v1, batch_window=0.001,
                                         pool_size=4) as engine:
            stop = threading.Event()
            torn, errors = [], []
            ids = [1, 2, 3, 4]

            def hammer():
                while not stop.is_set():
                    try:
                        table = engine.rank(ids, 5, timeout=30)
                    except Exception as error:  # pragma: no cover
                        errors.append(error)
                        return
                    from_v1 = np.array_equal(table.scores, expected1.scores[ids])
                    from_v2 = np.array_equal(table.scores, expected2.scores[ids])
                    if not (from_v1 or from_v2):
                        torn.append(table.scores)

            threads = [threading.Thread(target=hammer) for _ in range(8)]
            for thread in threads:
                thread.start()
            time.sleep(0.03)
            engine.swap(Aligner.load(v2, mmap=True))
            time.sleep(0.03)
            engine.swap(Aligner.load(v1, mmap=True))
            time.sleep(0.03)
            stop.set()
            for thread in threads:
                thread.join()
            assert not errors, errors[:3]
            # every response came wholly from one artifact version
            assert not torn
            assert engine.generation == 3
            final = engine.rank(ids, 5)
            assert np.array_equal(final.scores, expected1.scores[ids])


class TestIngestPromotion:
    def test_ingest_promotes_atomically_under_load(self, artifacts):
        """Concurrent rank() during ingest never sees a mixed generation.

        Every response must come wholly from the pre-ingest artifact or
        wholly from the promoted one — the prewarm–drain–swap path builds
        the updated aligner off to the side and switches under the same
        barrier swap_artifact uses.
        """
        from repro.incremental import DeltaBatch, SideDelta

        v1, _, expected1, _ = artifacts
        with ServingEngine.from_artifact(v1, batch_window=0.001,
                                         pool_size=4) as engine:
            ids = [1, 2, 3, 4]
            before = engine.rank(ids, 5)
            assert np.array_equal(before.scores, expected1.scores[ids])
            assert len(engine._cache) > 0
            # pay the lazy IncrementalAligner warm-start (model rebuild +
            # quantiser re-derivation) before the load starts
            assert engine.ingest(DeltaBatch())["noop"]
            n_s, n_t = Aligner.load(v1).topk(5).shape

            stop = threading.Event()
            observed, errors = [], []

            def hammer():
                while not stop.is_set():
                    try:
                        observed.append(engine.rank(ids, 5, timeout=30).scores)
                    except Exception as error:  # pragma: no cover
                        errors.append(error)
                        return
                    time.sleep(0.001)

            threads = [threading.Thread(target=hammer) for _ in range(4)]
            for thread in threads:
                thread.start()
            time.sleep(0.03)
            info = engine.ingest(DeltaBatch(
                source=SideDelta(entity_names=["s-live"],
                                 relation_triples=[(n_s, 0, 1)]),
                target=SideDelta(entity_names=["t-live"],
                                 relation_triples=[(n_t, 0, 2)])))
            time.sleep(0.03)
            stop.set()
            for thread in threads:
                thread.join()
            assert not errors, errors[:3]
            assert info["generation"] == 2
            assert info["rows_decoded"] > 0

            after = engine.rank(ids, 5)
            torn = [scores for scores in observed
                    if not (np.array_equal(scores, expected1.scores[ids])
                            or np.array_equal(scores, after.scores))]
            assert not torn
            # the promoted artifact serves the extended id range
            grown = engine.rank([n_s], 5)
            assert grown.scores.shape == (1, 5)

    def test_empty_delta_ingest_is_a_noop(self, artifacts):
        from repro.incremental import DeltaBatch

        v1, _, expected1, _ = artifacts
        with ServingEngine.from_artifact(v1, batch_window=0.001) as engine:
            before = engine.rank([7, 8], 5)
            info = engine.ingest(DeltaBatch())
            assert info["generation"] == 1
            assert info["evicted"] == 0
            assert engine.stats()["swaps"] == 0
            after = engine.rank([7, 8], 5)
            assert np.array_equal(before.scores, after.scores)
            assert np.array_equal(after.scores, expected1.scores[[7, 8]])


class TestBackpressure:
    def test_full_queue_fails_fast_with_overloaded(self, artifacts):
        v1, _, _, _ = artifacts
        engine = ServingEngine.from_artifact(v1, batch_window=0.0,
                                             pool_size=1, queue_size=1)
        block = threading.Event()
        original = Aligner.rank_rows

        def stalled(self, entity_ids, k=None):
            block.wait(5.0)
            return original(self, entity_ids, k)

        Aligner.rank_rows = stalled
        try:
            # one executing batch + one queued batch, then overflow
            pending = [engine.submit([index], 5) for index in range(8)]
            deadline = time.monotonic() + 5.0
            overloaded = []
            while time.monotonic() < deadline and not overloaded:
                overloaded = [request for request in pending
                              if request.error is not None
                              and request.error.code == "overloaded"]
                time.sleep(0.005)
            assert overloaded, "expected overloaded failures with a full queue"
        finally:
            block.set()
            Aligner.rank_rows = original
            engine.close()


class TestBuildingBlocks:
    def test_micro_batcher_coalesces_within_window(self):
        batches = []

        class Item:
            num_entities = 1

        batcher = MicroBatcher(batches.append, window=0.05, max_batch=8)
        items = [Item() for _ in range(4)]
        for item in items:
            batcher.submit(item)
        batcher.close()
        assert sum(len(batch) for batch in batches) == 4
        assert len(batches) == 1  # all four arrived within one window

    def test_micro_batcher_respects_max_batch(self):
        batches = []

        class Item:
            num_entities = 3

        batcher = MicroBatcher(batches.append, window=0.05, max_batch=4)
        for _ in range(4):
            batcher.submit(Item())
        batcher.close()
        assert sum(len(batch) for batch in batches) == 4
        assert all(len(batch) <= 2 for batch in batches)  # 2 items hit 6 >= 4

    def test_worker_pool_survives_task_exceptions(self):
        pool = WorkerPool(num_workers=1, queue_size=4)
        done = threading.Event()

        def failing():
            raise RuntimeError("boom")

        assert pool.submit(failing)
        assert pool.submit(done.set)
        assert done.wait(5.0)
        pool.close()
        assert pool.task_failures == 1
        assert not pool.submit(done.set)  # closed pools refuse work
