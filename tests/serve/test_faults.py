"""Fault injection: isolation, structured codes, self-healing workers.

Every test drives faults through the *real* decode path via a seeded
:class:`FaultInjector` — no monkey-patching of the aligner — and checks
the engine's core guarantee: a client always observes either a complete,
bit-correct response or a structured error, never a torn batch and never
a hang.
"""

import threading

import numpy as np
import pytest

from repro.serve import (
    FaultInjector,
    ServingClient,
    ServingEngine,
    ServingError,
    ServingServer,
    ServingTimeout,
    WorkerDeath,
    WorkerPool,
)


class TestFaultInjector:
    def test_rejects_out_of_range_rates(self):
        with pytest.raises(ValueError, match="decode_failure_rate"):
            FaultInjector(decode_failure_rate=1.5)
        with pytest.raises(ValueError, match="worker_death_rate"):
            FaultInjector(worker_death_rate=-0.1)
        with pytest.raises(ValueError, match="latency"):
            FaultInjector(latency=-1.0)

    def test_fault_schedule_is_deterministic_under_seed(self):
        def schedule(seed):
            injector = FaultInjector(decode_failure_rate=0.5, seed=seed)
            outcomes = []
            for _ in range(32):
                try:
                    injector.before_decode()
                    outcomes.append(False)
                except ServingError:
                    outcomes.append(True)
            return outcomes

        assert schedule(7) == schedule(7)
        assert schedule(7) != schedule(8)
        assert any(schedule(7)) and not all(schedule(7))

    def test_injected_failure_carries_configured_code(self):
        injector = FaultInjector(decode_failure_rate=1.0,
                                 failure_code="overloaded")
        with pytest.raises(ServingError) as info:
            injector.before_decode()
        assert info.value.code == "overloaded"
        assert injector.stats()["injected_failures"] == 1

    def test_worker_death_is_not_an_ordinary_exception(self):
        injector = FaultInjector(worker_death_rate=1.0)
        with pytest.raises(WorkerDeath):
            injector.maybe_kill_worker()
        assert not isinstance(WorkerDeath("x"), Exception)


class TestWorkerPoolSelfHealing:
    def test_pool_respawns_dead_workers(self):
        pool = WorkerPool(num_workers=1, queue_size=8)
        done = threading.Event()

        def die():
            raise WorkerDeath("injected")

        assert pool.submit(die)
        assert pool.submit(done.set)  # only a respawned worker can run this
        assert done.wait(5.0)
        pool.close()
        assert pool.worker_deaths == 1
        assert pool.task_failures == 0


class TestEngineUnderFaults:
    def test_injected_decode_failure_is_isolated(self, artifacts):
        """A failed decode surfaces its code; the engine keeps serving."""
        v1, _, expected, _ = artifacts
        injector = FaultInjector(decode_failure_rate=1.0,
                                 failure_code="internal", seed=0)
        with ServingEngine.from_artifact(v1, batch_window=0.001,
                                         fault_injector=injector) as engine:
            with pytest.raises(ServingError) as info:
                engine.rank([3], 5, timeout=10)
            assert info.value.code == "internal"
            assert "injected" in info.value.message
            injector.decode_failure_rate = 0.0  # the outage clears
            table = engine.rank([3], 5, timeout=10)
            assert np.array_equal(table.scores, expected.scores[[3]])
            assert engine.stats()["faults"]["injected_failures"] >= 1

    def test_injected_latency_trips_the_deadline(self, artifacts):
        v1, _, expected, _ = artifacts
        injector = FaultInjector(latency=0.5, latency_rate=1.0)
        with ServingEngine.from_artifact(v1, batch_window=0.001,
                                         fault_injector=injector) as engine:
            with pytest.raises(ServingTimeout):
                engine.rank([4], 5, timeout=0.05)
            injector.latency = 0.0
            table = engine.rank([5], 5, timeout=10)
            assert np.array_equal(table.scores, expected.scores[[5]])
            assert engine.stats()["faults"]["injected_latencies"] >= 1

    def test_worker_death_fails_batch_and_respawns(self, artifacts):
        v1, _, expected, _ = artifacts
        injector = FaultInjector(worker_death_rate=1.0)
        with ServingEngine.from_artifact(v1, batch_window=0.001, pool_size=1,
                                         fault_injector=injector) as engine:
            with pytest.raises(ServingError) as info:
                engine.rank([6], 5, timeout=10)
            assert info.value.code == "worker_died"
            injector.worker_death_rate = 0.0
            # A respawned worker serves the next request correctly.
            table = engine.rank([6], 5, timeout=10)
            assert np.array_equal(table.scores, expected.scores[[6]])
            stats = engine.stats()
            assert stats["worker_deaths"] == 1
            assert stats["faults"]["injected_deaths"] == 1

    def test_never_a_torn_response_under_sustained_deaths(self, artifacts):
        """Sequential traffic under a 40% death rate: every response is
        either bit-correct or a structured ``worker_died`` error."""
        v1, _, expected, _ = artifacts
        injector = FaultInjector(worker_death_rate=0.4, seed=0)
        with ServingEngine.from_artifact(v1, batch_window=0.0, pool_size=2,
                                         fault_injector=injector) as engine:
            successes, failures = 0, 0
            for index in range(30):
                ids = [index % 40, (index + 13) % 40]
                try:
                    table = engine.rank(ids, 5, timeout=10)
                except ServingError as error:
                    assert error.code == "worker_died"
                    failures += 1
                else:
                    assert np.array_equal(table.scores, expected.scores[ids])
                    successes += 1
            assert successes > 0 and failures > 0, (successes, failures)
            stats = engine.stats()
            assert stats["worker_deaths"] == stats["faults"]["injected_deaths"]
            assert stats["worker_deaths"] >= failures

    def test_concurrent_clients_never_hang_on_dying_workers(self, artifacts):
        v1, _, expected, _ = artifacts
        injector = FaultInjector(worker_death_rate=0.3, seed=3)
        with ServingEngine.from_artifact(v1, batch_window=0.002, pool_size=2,
                                         fault_injector=injector) as engine:
            outcomes, hangs = [], []

            def client(index):
                ids = [(index * 7 + offset) % 40 for offset in range(3)]
                try:
                    table = engine.rank(ids, 5, timeout=10)
                except ServingTimeout:  # pragma: no cover
                    hangs.append(index)
                except ServingError as error:
                    outcomes.append(error.code)
                else:
                    assert np.array_equal(table.scores, expected.scores[ids])
                    outcomes.append("ok")

            threads = [threading.Thread(target=client, args=(index,))
                       for index in range(24)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not hangs, "a dying worker left clients hanging"
            assert len(outcomes) == 24
            assert set(outcomes) <= {"ok", "worker_died"}


class TestClientRetryAgainstInjectedFaults:
    def test_retry_rides_out_a_transient_overload(self, artifacts):
        """End to end: injected ``overloaded`` decode failures clear after
        the first backoff sleep, and the client's retry succeeds."""
        v1, _, expected, _ = artifacts
        injector = FaultInjector(decode_failure_rate=1.0,
                                 failure_code="overloaded")
        with ServingEngine.from_artifact(v1, batch_window=0.001,
                                         fault_injector=injector) as engine:
            def outage_clears(delay):
                injector.decode_failure_rate = 0.0

            client = ServingClient(ServingServer(engine), retries=3,
                                   backoff=0.01, sleep=outage_clears)
            result = client.rank([8, 9], k=5)
            assert result["attempts"] == 2
            assert client.retries_performed == 1
            assert np.array_equal(np.asarray(result["scores"]),
                                  expected.scores[[8, 9]])
