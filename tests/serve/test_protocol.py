"""JSON-lines protocol: round trips, error codes, retries, stream serving."""

import io
import json

import numpy as np
import pytest

from repro.serve import (
    RETRYABLE_CODES,
    ServingClient,
    ServingEngine,
    ServingError,
    ServingServer,
)


class FlakyServer:
    """Scripted stand-in: fail with ``code`` for ``failures`` requests,
    then answer every request successfully."""

    def __init__(self, code: str, failures: int):
        self.code = code
        self.failures = failures
        self.calls = 0

    def handle_line(self, line: str) -> str:
        self.calls += 1
        request_id = json.loads(line).get("id")
        if self.calls <= self.failures:
            return json.dumps({"id": request_id, "ok": False,
                               "error": {"code": self.code,
                                         "message": "injected"}})
        return json.dumps({"id": request_id, "ok": True,
                           "result": {"pong": True}})


@pytest.fixture()
def server(artifacts):
    v1, _, _, _ = artifacts
    engine = ServingEngine.from_artifact(v1, mmap=True, batch_window=0.001)
    yield ServingServer(engine)
    engine.close()


class TestRoundTrips:
    def test_rank_round_trip_matches_direct_decode(self, artifacts, server):
        _, _, expected, _ = artifacts
        client = ServingClient(server)
        result = client.rank([2, 7, 11], k=5)
        assert result["entities"] == [2, 7, 11]
        assert result["k"] == 5
        assert result["approximate"] is True
        assert np.array_equal(np.asarray(result["targets"]),
                              expected.target_ids[[2, 7, 11]])
        assert np.array_equal(np.asarray(result["scores"]),
                              expected.scores[[2, 7, 11]])

    def test_ping_and_stats(self, server):
        client = ServingClient(server)
        assert client.ping()["pong"] is True
        stats = client.stats()
        assert stats["generation"] == 1
        assert "cache" in stats and "hit_rate" in stats["cache"]

    def test_swap_op_switches_artifact(self, artifacts, server):
        _, v2, _, expected2 = artifacts
        client = ServingClient(server)
        info = client.swap(v2)
        assert info["generation"] == 2
        result = client.rank([3, 8], k=5)
        assert np.array_equal(np.asarray(result["scores"]),
                              expected2.scores[[3, 8]])

    def test_response_echoes_request_id(self, server):
        response = json.loads(server.handle_line(
            '{"op": "ping", "id": "abc-123"}'))
        assert response["id"] == "abc-123" and response["ok"]


class TestErrors:
    def test_invalid_json_is_bad_request(self, server):
        response = json.loads(server.handle_line("{not json"))
        assert not response["ok"]
        assert response["error"]["code"] == "bad_request"

    def test_non_object_payload_is_bad_request(self, server):
        response = json.loads(server.handle_line("[1, 2]"))
        assert response["error"]["code"] == "bad_request"

    def test_unknown_op_is_bad_request(self, server):
        response = json.loads(server.handle_line('{"op": "frobnicate"}'))
        assert response["error"]["code"] == "bad_request"
        assert "frobnicate" in response["error"]["message"]

    def test_rank_without_entities_is_bad_request(self, server):
        client = ServingClient(server)
        with pytest.raises(ServingError, match="non-empty"):
            client.request({"op": "rank", "entities": []})

    def test_out_of_range_entities_surface_their_code(self, server):
        client = ServingClient(server)
        with pytest.raises(ServingError) as info:
            client.rank([123456])
        assert info.value.code == "bad_request"

    def test_swap_with_bogus_artifact_keeps_serving(self, artifacts, server):
        _, _, expected, _ = artifacts
        client = ServingClient(server)
        with pytest.raises(ServingError):
            client.swap("/nonexistent/artifact")
        result = client.rank([1], k=5)  # the old artifact still serves
        assert np.array_equal(np.asarray(result["scores"]),
                              expected.scores[[1]])


class TestClientRetry:
    def test_default_client_never_retries(self):
        server = FlakyServer("overloaded", failures=1)
        client = ServingClient(server)
        with pytest.raises(ServingError) as info:
            client.ping()
        assert info.value.attempts == 1
        assert server.calls == 1

    def test_retries_transient_code_and_reports_attempts(self):
        sleeps = []
        server = FlakyServer("overloaded", failures=2)
        client = ServingClient(server, retries=3, backoff=0.01,
                               sleep=sleeps.append)
        result = client.ping()
        assert result["pong"] is True
        assert result["attempts"] == 3
        assert server.calls == 3
        assert client.retries_performed == 2
        assert len(sleeps) == 2

    def test_backoff_schedule_doubles_then_caps_with_jitter(self):
        sleeps = []
        server = FlakyServer("timeout", failures=4)
        client = ServingClient(server, retries=4, backoff=0.1,
                               max_backoff=0.25, jitter_seed=0,
                               sleep=sleeps.append)
        client.ping()
        # base delays 0.1, 0.2, 0.25 (capped), 0.25; jitter in [0, backoff)
        bases = [0.1, 0.2, 0.25, 0.25]
        for delay, base in zip(sleeps, bases):
            assert base <= delay < base + 0.1, (delay, base)
        # the jitter sequence is deterministic under the seed
        replay = []
        ServingClient(FlakyServer("timeout", failures=4), retries=4,
                      backoff=0.1, max_backoff=0.25, jitter_seed=0,
                      sleep=replay.append).ping()
        assert replay == sleeps

    def test_non_retryable_codes_fail_immediately(self):
        for code in ("bad_request", "internal", "shutdown"):
            assert code not in RETRYABLE_CODES
            sleeps = []
            server = FlakyServer(code, failures=1)
            client = ServingClient(server, retries=5, sleep=sleeps.append)
            with pytest.raises(ServingError) as info:
                client.ping()
            assert info.value.code == code
            assert server.calls == 1 and not sleeps

    def test_exhausted_retries_raise_with_attempt_count(self):
        server = FlakyServer("worker_died", failures=99)
        client = ServingClient(server, retries=2, backoff=0.0,
                               sleep=lambda delay: None)
        with pytest.raises(ServingError) as info:
            client.ping()
        assert info.value.code == "worker_died"
        assert info.value.attempts == 3       # retries + 1
        assert server.calls == 3

    def test_rejects_negative_retry_configuration(self):
        with pytest.raises(ValueError, match="retries"):
            ServingClient(FlakyServer("timeout", 0), retries=-1)
        with pytest.raises(ValueError, match="non-negative"):
            ServingClient(FlakyServer("timeout", 0), backoff=-0.1)


class TestStreamServing:
    def test_serve_forever_over_text_streams(self, artifacts):
        v1, _, expected, _ = artifacts
        engine = ServingEngine.from_artifact(v1, batch_window=0.001)
        server = ServingServer(engine)
        stdin = io.StringIO(
            '{"op": "ping", "id": 1}\n'
            '\n'
            '{"op": "rank", "id": 2, "entities": [0, 1], "k": 5}\n'
            '{"op": "shutdown", "id": 3}\n'
            '{"op": "ping", "id": 4}\n')  # never reached: shutdown stops first
        stdout = io.StringIO()
        server.serve_forever(stdin, stdout)
        responses = [json.loads(line) for line in
                     stdout.getvalue().strip().splitlines()]
        assert [response["id"] for response in responses] == [1, 2, 3]
        assert all(response["ok"] for response in responses)
        assert np.array_equal(np.asarray(responses[1]["result"]["scores"]),
                              expected.scores[[0, 1]])
        # the engine was closed on the way out
        with pytest.raises(ServingError):
            engine.rank([0], 5)
