"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import sys

import numpy as np
import pytest

# Make the shared brute-force oracles (tests/oracles.py) importable from
# every test module regardless of its subdirectory.
sys.path.insert(0, os.path.dirname(__file__))

from repro.core.task import prepare_task
from repro.data.synthetic import SyntheticPairConfig, generate_pair


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def tiny_pair():
    """A small but fully featured synthetic alignment task."""
    config = SyntheticPairConfig(num_entities=40, num_communities=4, seed=7,
                                 seed_ratio=0.3, name="tiny")
    return generate_pair(config)


@pytest.fixture(scope="session")
def tiny_task(tiny_pair):
    """The tiny pair prepared for model consumption."""
    return prepare_task(tiny_pair, relation_dim=16, attribute_dim=16,
                        structure_dim=16, seed=3)


@pytest.fixture(scope="session")
def missing_modality_pair():
    """A synthetic pair with aggressive missing-modality ratios."""
    config = SyntheticPairConfig(num_entities=40, num_communities=4, seed=11,
                                 image_coverage_source=0.3, image_coverage_target=0.3,
                                 attribute_coverage_source=0.4, attribute_coverage_target=0.4,
                                 seed_ratio=0.3, name="tiny-missing")
    return generate_pair(config)
