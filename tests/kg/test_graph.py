"""Tests for the MultiModalKG data structure."""

import numpy as np
import pytest

from repro.kg import AttributeTriple, MultiModalKG, RelationTriple


@pytest.fixture
def small_graph():
    return MultiModalKG.from_triples(
        num_entities=5,
        relation_triples=[(0, 0, 1), (1, 1, 2), (2, 0, 3), (0, 2, 4), (1, 1, 2)],
        attribute_triples=[(0, 0, "a"), (0, 1, "b"), (2, 1, "c")],
        image_features={0: [1.0, 0.0], 3: [0.5, 0.5]},
        name="toy",
    )


class TestConstruction:
    def test_counts(self, small_graph):
        assert small_graph.num_entities == 5
        assert small_graph.num_relation_triples == 5
        assert small_graph.num_attribute_triples == 3
        assert small_graph.num_images == 2
        assert small_graph.num_relations == 3
        assert small_graph.num_attributes == 2

    def test_rejects_unknown_entity_in_relation(self):
        with pytest.raises(ValueError):
            MultiModalKG.from_triples(num_entities=2, relation_triples=[(0, 0, 7)])

    def test_rejects_unknown_entity_in_attribute(self):
        with pytest.raises(ValueError):
            MultiModalKG.from_triples(num_entities=2, relation_triples=[],
                                      attribute_triples=[(5, 0, "x")])

    def test_rejects_unknown_image_entity(self):
        with pytest.raises(ValueError):
            MultiModalKG.from_triples(num_entities=2, relation_triples=[],
                                      image_features={9: [1.0]})

    def test_from_triples_infers_vocabularies(self, small_graph):
        assert small_graph.num_relations == 1 + max(t.relation
                                                    for t in small_graph.relation_triples)


class TestStructure:
    def test_adjacency_is_symmetric_binary(self, small_graph):
        adjacency = small_graph.adjacency_matrix()
        assert np.allclose(adjacency, adjacency.T)
        assert set(np.unique(adjacency)) <= {0.0, 1.0}
        assert np.all(np.diag(adjacency) == 0)

    def test_weighted_adjacency_counts_parallel_edges(self, small_graph):
        weighted = small_graph.adjacency_matrix(weighted=True)
        assert weighted[1, 2] == 2.0

    def test_neighbours(self, small_graph):
        assert small_graph.neighbours(0) == {1, 4}
        assert small_graph.neighbours(2) == {1, 3}

    def test_degree_matches_adjacency(self, small_graph):
        assert np.allclose(small_graph.degree(),
                           small_graph.adjacency_matrix().sum(axis=1))

    def test_self_loops_are_dropped(self):
        graph = MultiModalKG.from_triples(num_entities=2, relation_triples=[(0, 0, 0)])
        assert graph.adjacency_matrix().sum() == 0


class TestCoverageAndMasks:
    def test_coverage_fractions(self, small_graph):
        assert small_graph.image_coverage() == pytest.approx(2 / 5)
        assert small_graph.attribute_coverage() == pytest.approx(2 / 5)

    def test_statistics_keys_match_table1(self, small_graph):
        stats = small_graph.statistics()
        for key in ("entities", "relations", "attributes", "relation_triples",
                    "attribute_triples", "images"):
            assert key in stats

    def test_modality_mask_shapes_and_content(self, small_graph):
        masks = small_graph.modality_mask()
        assert masks["graph"].all()
        assert masks["attribute"].tolist() == [True, False, True, False, False]
        assert masks["vision"].tolist() == [True, False, False, True, False]


class TestInconsistencyManipulation:
    def test_with_image_ratio_keeps_requested_fraction(self, small_graph):
        rng = np.random.default_rng(0)
        reduced = small_graph.with_image_ratio(0.2, rng)
        assert reduced.num_images == 1
        # The original graph is untouched.
        assert small_graph.num_images == 2

    def test_with_image_ratio_one_keeps_all(self, small_graph):
        reduced = small_graph.with_image_ratio(1.0, np.random.default_rng(0))
        assert reduced.num_images == small_graph.num_images

    def test_with_image_ratio_validates_range(self, small_graph):
        with pytest.raises(ValueError):
            small_graph.with_image_ratio(1.5, np.random.default_rng(0))

    def test_with_attribute_ratio_drops_whole_entities(self, small_graph):
        reduced = small_graph.with_attribute_ratio(0.2, np.random.default_rng(0))
        remaining = reduced.entities_with_attributes()
        assert len(remaining) <= 1
        # Triples for dropped entities disappear entirely.
        for triple in reduced.attribute_triples:
            assert triple.entity in remaining

    def test_manipulations_preserve_structure(self, small_graph):
        reduced = small_graph.with_attribute_ratio(0.0, np.random.default_rng(0))
        assert np.allclose(reduced.adjacency_matrix(), small_graph.adjacency_matrix())


class TestTripleTypes:
    def test_relation_triple_is_frozen(self):
        triple = RelationTriple(0, 1, 2)
        with pytest.raises(AttributeError):
            triple.head = 5

    def test_attribute_triple_fields(self):
        triple = AttributeTriple(1, 2, "value")
        assert (triple.entity, triple.attribute, triple.value) == (1, 2, "value")
